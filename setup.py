"""Setuptools shim.

``pip install -e .`` uses pyproject.toml; this file additionally enables
``python setup.py develop`` for fully offline environments where pip
cannot build the PEP 660 editable wheel (no `wheel` package available).
"""

from setuptools import setup

setup()
