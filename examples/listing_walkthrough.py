#!/usr/bin/env python
"""The paper's running example, end to end.

Reproduces the transformation chain of the paper's Listings 4 -> 5 -> 6:

1. ``getValue`` is compiled to IR (Listing 4);
2. inlining brings in the Key constructor and the synchronized
   equals — the graph of Figure 2 / Listing 5;
3. Partial Escape Analysis sinks the allocation into the escaping
   branch and elides the monitor pair (Listing 6).

Run:  python examples/listing_walkthrough.py [--dump-ir] [--dot out.dot]
"""

import argparse

from repro import (CanonicalizerPhase, DeadCodeEliminationPhase,
                   GlobalValueNumberingPhase, InliningPhase,
                   PartialEscapePhase, build_graph, compile_source,
                   dump_graph, to_dot)
from repro.ir import nodes as N

LISTING_4 = """
class Key {
    int idx;
    Object ref;
    Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
    synchronized boolean equalsKey(Key other) {
        return this.idx == other.idx && this.ref == other.ref;
    }
}
class Main {
    static Key cacheKey;
    static Object cacheValue;
    static Object getValue(int idx, Object ref) {
        Key key = new Key(idx, ref);
        if (cacheKey != null && key.equalsKey(cacheKey)) {
            return cacheValue;
        } else {
            cacheKey = key;
            cacheValue = createValue(idx);
            return cacheValue;
        }
    }
    static native Object createValue(int idx);
}
"""


def census(graph):
    return {
        "allocations": len(list(graph.nodes_of(N.NewInstanceNode))),
        "monitor enters": len(list(graph.nodes_of(N.MonitorEnterNode))),
        "monitor exits": len(list(graph.nodes_of(N.MonitorExitNode))),
        "field loads": len(list(graph.nodes_of(N.LoadFieldNode))),
        "field stores": len(list(graph.nodes_of(N.StoreFieldNode))),
        "invokes": len(list(graph.nodes_of(N.InvokeNode))),
        "total nodes": graph.node_count(),
    }


def show(title, graph, dump):
    print(f"\n--- {title} ---")
    for key, value in census(graph).items():
        print(f"  {key:>15}: {value}")
    if dump:
        print()
        print(dump_graph(graph, include_floating=False))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dump-ir", action="store_true",
                        help="print the control-flow skeleton at each "
                             "stage (Figure 2 style)")
    parser.add_argument("--dot", metavar="FILE",
                        help="write the final graph as Graphviz dot")
    args = parser.parse_args()

    program = compile_source(
        LISTING_4,
        natives={"Main.createValue": lambda interp, a: a[0] * 1000})
    graph = build_graph(program, program.method("Main.getValue"))
    show("Listing 4: as built (calls not yet inlined)", graph,
         args.dump_ir)

    InliningPhase(program).run(graph)
    CanonicalizerPhase().run(graph)
    GlobalValueNumberingPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    show("Listing 5 / Figure 2: after inlining "
         "(constructor + synchronized equals)", graph, args.dump_ir)

    pea = PartialEscapePhase(program)
    pea.run(graph)
    CanonicalizerPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    show("Listing 6: after Partial Escape Analysis", graph, args.dump_ir)
    print(f"\nPEA: virtualized {pea.last_result.virtualized_allocations} "
          f"allocation(s), removed "
          f"{pea.last_result.removed_monitor_pairs} monitor pair(s), "
          f"materialized {pea.last_result.materializations} time(s) — "
          "the allocation now lives only in the cache-miss branch.")

    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(to_dot(graph))
        print(f"wrote {args.dot}")


if __name__ == "__main__":
    main()
