#!/usr/bin/env python
"""Section 6.2 in miniature: no EA vs flow-insensitive EA vs PEA.

The workload is the paper's motivating shape — a cache keyed by a
short-lived Key object that escapes only on cache misses.  The
flow-insensitive baseline (equi-escape sets, as in the HotSpot
compilers) sees the miss-path escape and gives up entirely; Partial
Escape Analysis keeps the hit path allocation- and lock-free.

Run:  python examples/three_config_benchmark.py
"""

from repro import api
from repro.api import CompilerConfig

SOURCE = """
class Key {
    int idx;
    Object ref;
    Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
    synchronized boolean sameAs(Key other) {
        return this.idx == other.idx && this.ref == other.ref;
    }
}
class Main {
    static Key cacheKey;
    static int cacheValue;
    static int getValue(int idx) {
        Key key = new Key(idx, null);
        if (cacheKey != null && key.sameAs(cacheKey)) {
            return cacheValue;                    // hit: key was virtual
        } else {
            cacheKey = key;                       // miss: key escapes
            cacheValue = idx * 31 + 7;
            return cacheValue;
        }
    }
    static int run(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            acc = acc + getValue((i / 8) % 16);   // 7 of 8 lookups hit
        }
        return acc;
    }
}
"""

CONFIGS = [
    ("no EA", CompilerConfig.no_ea),
    ("equi-escape EA", CompilerConfig.equi_escape),
    ("Partial EA", CompilerConfig.partial_escape),
]


def main():
    print("cache lookups, 87.5% hit rate, 16,000 operations:\n")
    print(f"{'configuration':>16} {'allocations':>12} {'monitors':>9} "
          f"{'sim. cycles':>12} {'speedup':>8}")
    baseline_cycles = None
    results = set()
    for label, factory in CONFIGS:
        prog = api.compile(SOURCE, config=factory())
        prog.warm_up("Main.run", 128, calls=30, reset_statics=False)
        prog.program.reset_statics()
        heap_before = prog.heap_stats()
        cycles_before = prog.vm.cycles_snapshot()
        results.add(prog.run("Main.run", 16_000))
        heap = prog.heap_stats().delta(heap_before)
        cycles = prog.vm.cycles_snapshot() - cycles_before
        if baseline_cycles is None:
            baseline_cycles = cycles
            speedup = ""
        else:
            speedup = f"{(baseline_cycles / cycles - 1) * 100:+.1f}%"
        print(f"{label:>16} {heap.allocations:>12} "
              f"{heap.monitor_enters:>9} {cycles:>12,.0f} {speedup:>8}")
    assert len(results) == 1, "configurations must agree"
    print("\nThe flow-insensitive analysis is all-or-nothing: one "
          "escaping branch\nforfeits everything.  PEA allocates only on "
          "actual cache misses and\nelides every monitor operation.")


if __name__ == "__main__":
    main()
