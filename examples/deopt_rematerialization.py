#!/usr/bin/env python
"""Speculation, deoptimization and rematerialization (Section 5.5).

The VM profiles ``work`` and sees that the ``i == 7777`` branch never
runs, so the compiler speculates it away entirely (a guard replaces the
branch) and Partial Escape Analysis scalar-replaces the Pair — the hot
loop becomes allocation-free.

When the "impossible" input finally arrives, the guard fails: execution
deoptimizes to the interpreter, which needs the Pair *object* — so the
runtime rematerializes it from the frame state's virtual-object mapping
(Figure 8) and the program continues as if nothing happened.

Run:  python examples/deopt_rematerialization.py
"""

from repro import api

SOURCE = """
class Pair {
    int a; int b;
    Pair(int a, int b) { this.a = a; this.b = b; }
}
class Main {
    static Object sink;
    static int work(int i) {
        Pair p = new Pair(i, i * 3);
        if (i == 7777) {
            sink = p;               // p escapes here -- but only here
            return p.a + p.b + 100;
        }
        return p.a + p.b;
    }
    static int run(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) { acc = acc + work(i); }
        return acc;
    }
}
"""


class DeoptTracer(api.VMListener):
    """Typed VM events: print each deoptimization as it happens."""

    def on_deopt(self, method, state):
        print(f"  ! deopt in {method.qualified_name} at bci {state.bci}")


def main():
    prog = api.compile(SOURCE)
    prog.add_listener(DeoptTracer())
    vm = prog.vm

    print("warming up on inputs where i == 7777 never happens ...")
    prog.warm_up("Main.run", 100, calls=40, reset_statics=False)
    print(f"  compiled methods: "
          f"{sorted(m.qualified_name for m in vm.compiled)}")

    before = prog.heap_stats()
    result = prog.run("Main.run", 10_000)
    delta = prog.heap_stats().delta(before)
    expected = sum(i + i * 3 + (100 if i == 7777 else 0)
                   for i in range(10_000))

    print(f"\nrun(10000) = {result} (expected {expected}) "
          f"{'OK' if result == expected else 'MISMATCH'}")
    print(f"  deoptimizations : {vm.exec_stats.deopts}")
    print(f"  allocations     : {delta.allocations} "
          "(one Pair in 10,000 iterations: the rematerialized one)")
    sink = prog.program.get_static("Main", "sink")
    print(f"  rematerialized  : {sink!r} with fields {sink.fields}")
    print("\nThe scalar-replaced Pair was rebuilt on the heap at the "
          "deoptimization\npoint with exactly the field values the "
          "compiled code had in registers.")


if __name__ == "__main__":
    main()
