#!/usr/bin/env python
"""A realistic application on the VM: an arithmetic-expression compiler
written *in MJ*, run under all three escape-analysis configurations.

The MJ program tokenizes ``3+x*x-2*x/4+7*x``, parses it into an AST of
node objects, and evaluates the AST — re-parsing every round so the
front-end churn is hot.  It is also an honest demonstration of what PEA
can and cannot do on real code shapes:

- the Parser cursor object is scalar-replaced (the per-round win);
- the AST nodes escape into the tree — they must exist (and do);
- the Tokens are allocated at *four different sites* inside
  ``Lexer.next`` whose returns merge: a phi over distinct allocations
  forces materialization ("a virtual object needs to be materialized
  before it can serve as an input to a Phi node", Section 5.3) — so
  tokens survive even under PEA, exactly as they would under Graal.

Run:  python examples/expression_compiler.py
"""

from repro import api
from repro.api import CompilerConfig, compile_source

MJ_SOURCE = """
class Token {
    int kind;       // 0 num, 1 ident, 2 op, 3 lparen, 4 rparen, 5 end
    int value;      // number value or operator char
    Token(int kind, int value) { this.kind = kind; this.value = value; }
}
class Lexer {
    int[] text;
    int position;
    Lexer(int[] text) { this.text = text; this.position = 0; }
    Token next() {
        while (position < text.length && text[position] == 32) {
            position = position + 1;
        }
        if (position >= text.length) { return new Token(5, 0); }
        int c = text[position];
        if (c >= 48 && c <= 57) {
            int v = 0;
            while (position < text.length && text[position] >= 48
                   && text[position] <= 57) {
                v = v * 10 + (text[position] - 48);
                position = position + 1;
            }
            return new Token(0, v);
        }
        position = position + 1;
        if (c == 120) { return new Token(1, 0); }      // 'x'
        if (c == 40) { return new Token(3, 0); }
        if (c == 41) { return new Token(4, 0); }
        return new Token(2, c);
    }
}
class Node {
    int kind;       // 0 literal, 1 variable, 2 binary
    int value;      // literal value or operator
    Node left; Node right;
    Node(int kind, int value) { this.kind = kind; this.value = value; }
    int eval(int x) {
        if (kind == 0) { return value; }
        if (kind == 1) { return x; }
        int a = left.eval(x);
        int b = right.eval(x);
        if (value == 43) { return a + b; }
        if (value == 45) { return a - b; }
        if (value == 42) { return a * b; }
        return a / ((b & 1023) + 1);
    }
}
class Parser {
    Lexer lexer;
    Token lookahead;
    Parser(Lexer lexer) { this.lexer = lexer; this.lookahead = lexer.next(); }
    Token take() {
        Token t = lookahead;
        lookahead = lexer.next();
        return t;
    }
    Node primary() {
        Token t = take();
        if (t.kind == 1) { return new Node(1, 0); }
        return new Node(0, t.value);
    }
    Node product() {
        Node node = primary();
        while (lookahead.kind == 2
               && (lookahead.value == 42 || lookahead.value == 47)) {
            Token op = take();
            Node rhs = primary();
            Node parent = new Node(2, op.value);
            parent.left = node;
            parent.right = rhs;
            node = parent;
        }
        return node;
    }
    Node sum() {
        Node node = product();
        while (lookahead.kind == 2
               && (lookahead.value == 43 || lookahead.value == 45)) {
            Token op = take();
            Node rhs = product();
            Node parent = new Node(2, op.value);
            parent.left = node;
            parent.right = rhs;
            node = parent;
        }
        return node;
    }
}
class Main {
    static int[] source;
    static void prepare() {
        // "3+x*x-2*x/4 + 7*x" as character codes.
        int[] s = new int[17];
        s[0] = 51; s[1] = 43; s[2] = 120; s[3] = 42; s[4] = 120;
        s[5] = 45; s[6] = 50; s[7] = 42; s[8] = 120; s[9] = 47;
        s[10] = 52; s[11] = 32; s[12] = 43; s[13] = 32; s[14] = 55;
        s[15] = 42; s[16] = 120;
        source = s;
    }
    static int run(int rounds) {
        prepare();
        int acc = 0;
        for (int r = 0; r < rounds; r = r + 1) {
            // Re-parse each round: lexer, parser and every token are
            // per-round temporaries; the AST nodes survive into eval.
            Lexer lexer = new Lexer(source);
            Parser parser = new Parser(lexer);
            Node tree = parser.sum();
            for (int x = 0; x < 4; x = x + 1) {
                acc = acc + tree.eval(r + x);
            }
        }
        return acc;
    }
}
"""


def main():
    reference = None
    print("parse + evaluate '3+x*x-2*x/4+7*x', 500 rounds:\n")
    print(f"{'configuration':>16} {'result':>12} {'allocations':>12} "
          f"{'sim. cycles':>14}")
    for label, factory in (("interpreter", None),
                           ("no EA", CompilerConfig.no_ea),
                           ("equi-escape EA", CompilerConfig.equi_escape),
                           ("Partial EA", CompilerConfig.partial_escape)):
        program = compile_source(MJ_SOURCE)
        if factory is None:
            from repro import Interpreter
            interp = Interpreter(program)
            result = interp.call("Main.run", 500)
            stats = interp.heap.stats
            cycles = ""
        else:
            prog = api.compile(program, config=factory())
            prog.warm_up("Main.run", 50, calls=25,
                         reset_statics=False)
            before = prog.heap_stats()
            cycles_before = prog.vm.cycles_snapshot()
            result = prog.run("Main.run", 500)
            stats = prog.heap_stats().delta(before)
            spent = prog.vm.cycles_snapshot() - cycles_before
            cycles = f"{spent:>14,.0f}"
        if reference is None:
            reference = result
        assert result == reference
        print(f"{label:>16} {result:>12} {stats.allocations:>12} {cycles}")
    print("\nPEA removed the per-round parser cursor; the AST must "
          "exist (it escapes\ninto the tree) and the tokens are "
          "phi-merged across Lexer.next's return\nsites, so they "
          "materialize — the Section 5.3 merge rule at work.")


if __name__ == "__main__":
    main()
