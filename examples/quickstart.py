#!/usr/bin/env python
"""Quickstart: compile a Java-like program, run it on the tiered JIT VM
with Partial Escape Analysis, and inspect the allocation statistics.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.api import CompilerConfig

SOURCE = """
class Point {
    int x; int y;
    Point(int x, int y) { this.x = x; this.y = y; }
    Point plus(Point other) {
        return new Point(x + other.x, y + other.y);
    }
    int norm1() {
        int ax = x; int ay = y;
        if (ax < 0) { ax = -ax; }
        if (ay < 0) { ay = -ay; }
        return ax + ay;
    }
}
class Main {
    static int walk(int steps) {
        int total = 0;
        for (int i = 0; i < steps; i = i + 1) {
            Point here = new Point(i, -i);
            Point delta = new Point(i % 3 - 1, i % 5 - 2);
            Point next = here.plus(delta);
            total = total + next.norm1();
        }
        return total;
    }
}
"""


def run(config, label):
    prog = api.compile(SOURCE, config=config)
    # Warm up so Main.walk gets compiled.
    prog.warm_up("Main.walk", 50, calls=30, reset_statics=False)
    before = prog.heap_stats()
    cycles_before = prog.vm.cycles_snapshot()
    result = prog.run("Main.walk", 10_000)
    stats = prog.heap_stats().delta(before)
    cycles = prog.vm.cycles_snapshot() - cycles_before
    print(f"{label:>12}: result={result}  allocations={stats.allocations}"
          f"  bytes={stats.allocated_bytes}  cycles={cycles:,.0f}")
    return result


def main():
    print("Summing 10,000 vector walks (3 Point temporaries per step):\n")
    a = run(CompilerConfig.no_ea(), "without EA")
    b = run(CompilerConfig.partial_escape(), "with PEA")
    assert a == b, "configurations must agree"
    print("\nPartial Escape Analysis scalar-replaced every temporary "
          "Point:\nthe loop runs allocation-free.")


if __name__ == "__main__":
    main()
