"""Command-line interface tests."""

import pytest

from repro.cli import main

SOURCE = """
class Pair {
    int a; int b;
    Pair(int a, int b) { this.a = a; this.b = b; }
}
class Main {
    static int main(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Pair p = new Pair(i, i * 2);
            acc = acc + p.a + p.b;
        }
        return acc;
    }
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.mj"
    path.write_text(SOURCE)
    return str(path)


def test_run_interpreted(program_file, capsys):
    assert main(["run", program_file, "--entry", "Main.main",
                 "--args", "10", "--config", "interp"]) == 0
    out = capsys.readouterr().out
    assert "result: 135" in out
    assert "allocations=10" in out


def test_run_with_pea(program_file, capsys):
    assert main(["run", program_file, "--entry", "Main.main",
                 "--args", "10", "--config", "pea"]) == 0
    out = capsys.readouterr().out
    assert "result: 135" in out
    assert "allocations=0" in out
    assert "cycles=" in out


def test_run_configs_agree(program_file, capsys):
    results = set()
    for config in ("interp", "no-ea", "equi", "pea"):
        main(["run", program_file, "--entry", "Main.main",
              "--args", "25", "--config", config])
        out = capsys.readouterr().out
        results.add(out.splitlines()[0])
    assert len(results) == 1


def test_compile_reports_ea_stats(program_file, capsys):
    assert main(["compile", program_file, "--method", "Main.main"]) == 0
    out = capsys.readouterr().out
    assert "IR nodes" in out
    assert "virtualized=1" in out


def test_compile_dump_ir(program_file, capsys):
    assert main(["compile", program_file, "--method", "Main.main",
                 "--dump-ir"]) == 0
    out = capsys.readouterr().out
    assert "LoopBegin" in out


def test_compile_dot_output(program_file, tmp_path, capsys):
    dot_path = str(tmp_path / "graph.dot")
    assert main(["compile", program_file, "--method", "Main.main",
                 "--dot", dot_path]) == 0
    content = open(dot_path).read()
    assert content.startswith("digraph")


def test_disasm(program_file, capsys):
    assert main(["disasm", program_file]) == 0
    out = capsys.readouterr().out
    assert "class Pair" in out
    assert "invokespecial" in out


def test_compile_timings(program_file, capsys):
    assert main(["compile", program_file, "--method", "Main.main",
                 "--timings"]) == 0
    out = capsys.readouterr().out
    assert "partial-escape-analysis" in out
    assert "ms" in out


def test_fuzz_smoke(capsys, tmp_path):
    assert main(["fuzz", "--programs", "3", "--seed", "7",
                 "--corpus-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "ran 3 programs" in out
    assert "0 failure(s)" in out
