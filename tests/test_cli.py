"""Command-line interface tests."""

import pytest

from repro.cli import main

SOURCE = """
class Pair {
    int a; int b;
    Pair(int a, int b) { this.a = a; this.b = b; }
}
class Main {
    static int main(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Pair p = new Pair(i, i * 2);
            acc = acc + p.a + p.b;
        }
        return acc;
    }
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.mj"
    path.write_text(SOURCE)
    return str(path)


def test_run_interpreted(program_file, capsys):
    assert main(["run", program_file, "--entry", "Main.main",
                 "--args", "10", "--config", "interp"]) == 0
    out = capsys.readouterr().out
    assert "result: 135" in out
    assert "allocations=10" in out


def test_run_with_pea(program_file, capsys):
    assert main(["run", program_file, "--entry", "Main.main",
                 "--args", "10", "--config", "pea"]) == 0
    out = capsys.readouterr().out
    assert "result: 135" in out
    assert "allocations=0" in out
    assert "cycles=" in out


def test_run_configs_agree(program_file, capsys):
    results = set()
    for config in ("interp", "no-ea", "equi", "pea"):
        main(["run", program_file, "--entry", "Main.main",
              "--args", "25", "--config", config])
        out = capsys.readouterr().out
        results.add(out.splitlines()[0])
    assert len(results) == 1


def test_compile_reports_ea_stats(program_file, capsys):
    assert main(["compile", program_file, "--method", "Main.main"]) == 0
    out = capsys.readouterr().out
    assert "IR nodes" in out
    assert "virtualized=1" in out


def test_compile_dump_ir(program_file, capsys):
    assert main(["compile", program_file, "--method", "Main.main",
                 "--dump-ir"]) == 0
    out = capsys.readouterr().out
    assert "LoopBegin" in out


def test_compile_dot_output(program_file, tmp_path, capsys):
    dot_path = str(tmp_path / "graph.dot")
    assert main(["compile", program_file, "--method", "Main.main",
                 "--dot", dot_path]) == 0
    content = open(dot_path).read()
    assert content.startswith("digraph")


def test_disasm(program_file, capsys):
    assert main(["disasm", program_file]) == 0
    out = capsys.readouterr().out
    assert "class Pair" in out
    assert "invokespecial" in out


def test_compile_timings(program_file, capsys):
    assert main(["compile", program_file, "--method", "Main.main",
                 "--timings"]) == 0
    out = capsys.readouterr().out
    assert "partial-escape-analysis" in out
    assert "ms" in out


def test_fuzz_smoke(capsys, tmp_path):
    assert main(["fuzz", "--programs", "3", "--seed", "7",
                 "--corpus-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "ran 3 programs" in out
    assert "0 failure(s)" in out


# -- analyze / lint (exit contract: 0 clean, 1 findings, 2 error) -------------

DEAD_STORE_JASM = """
class Data
  field int f0

class Main
  method dead() -> int static locals=1
    new Data
    store 0
    load 0
    const 1
    putfield Data.f0
    load 0
    const 2
    putfield Data.f0
    load 0
    getfield Data.f0
    return_value
"""


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.jasm"
    path.write_text(DEAD_STORE_JASM)
    return str(path)


def test_analyze_clean_program_exits_zero(program_file, capsys):
    assert main(["analyze", program_file]) == 0
    out = capsys.readouterr().out
    assert "lint: clean" in out
    assert "virtualized" in out


def test_lint_finding_exits_one(dirty_file, capsys):
    assert main(["lint", dirty_file]) == 1
    out = capsys.readouterr().out
    assert "dead-store-to-virtual" in out
    assert "Main.dead" in out


def test_analyze_missing_path_exits_two(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "nope.mj")]) == 2
    assert "nope.mj" in capsys.readouterr().err


def test_analyze_unparsable_file_exits_two(tmp_path, capsys):
    path = tmp_path / "broken.mj"
    path.write_text("class {{{")
    assert main(["analyze", str(path)]) == 2
    assert "broken.mj" in capsys.readouterr().err


def test_analyze_json_aggregates_per_path(program_file, dirty_file,
                                          capsys):
    import json

    assert main(["analyze", "--json", program_file, dirty_file]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {program_file, dirty_file}
    assert payload[program_file]["findings"] == []
    findings = payload[dirty_file]["findings"]
    assert findings and \
        findings[0]["pass"] == "dead-store-to-virtual"


def test_analyze_directory_recurses(tmp_path, program_file, capsys):
    nested = tmp_path / "sub"
    nested.mkdir()
    (nested / "clean.mj").write_text(SOURCE)
    assert main(["analyze", str(tmp_path)]) == 0
    assert "clean.mj" in capsys.readouterr().out


def test_analyze_reports_escape_sites(tmp_path, capsys):
    # A capturing helper: the allocation must be attributed to the
    # static store it flows into.
    path = tmp_path / "escape.mj"
    path.write_text("""
class Box { int v; }
class Sink {
    static Box kept;
    static int keep(Box b) { Sink.kept = b; return b.v; }
}
class Main {
    static int run(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Box b = new Box();
            b.v = i;
            acc = acc + Sink.keep(b);
        }
        return acc;
    }
}
""")
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "escape site" in out
    assert "materialized" in out
