"""The tiered VM: compile triggers, dispatch, configuration effects."""

import pytest

from repro.jit import VM, CompilerConfig, EscapeAnalysisKind
from repro.lang import compile_source

FIB = """
    class C {
        static int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
    }
"""


def test_compile_threshold_triggers_compilation():
    program = compile_source(FIB)
    config = CompilerConfig.partial_escape(compile_threshold=5)
    vm = VM(program, config)
    method = program.method("C.fib")
    vm.call("C.fib", 1)  # few invocations
    assert method not in vm.compiled
    vm.call("C.fib", 10)  # recursion blows past the threshold
    assert method in vm.compiled
    assert vm.call("C.fib", 12) == 144


def test_interpreted_methods_still_correct():
    program = compile_source(FIB)
    vm = VM(program, CompilerConfig.no_ea(compile_threshold=10 ** 9))
    assert vm.call("C.fib", 10) == 55
    assert not vm.compiled
    assert vm.exec_stats.interpreter_steps > 0


def test_compiled_callee_reached_from_interpreted_caller():
    source = """
        class C {
            static int hot(int x) { return x * 2; }
            static int cold(int x) { return hot(x) + 1; }
        }
    """
    program = compile_source(source)
    vm = VM(program, CompilerConfig.partial_escape(compile_threshold=5))
    for i in range(20):
        vm.call("C.hot", i)
    assert program.method("C.hot") in vm.compiled
    # cold is below threshold -> interpreted, but dispatches into the
    # compiled hot.
    compiled_before = vm.exec_stats.compiled_invocations
    assert vm.call("C.cold", 5) == 11
    assert vm.exec_stats.compiled_invocations > compiled_before


def test_compile_now_forces_compilation():
    program = compile_source(FIB)
    vm = VM(program, CompilerConfig.partial_escape())
    result = vm.compile_now("C.fib")
    assert result.node_count > 0
    assert program.method("C.fib") in vm.compiled


def test_cycles_accumulate_per_engine():
    program = compile_source(FIB)
    vm = VM(program, CompilerConfig.partial_escape(compile_threshold=3))
    vm.call("C.fib", 12)
    cycles_mid = vm.cycles_snapshot()
    assert cycles_mid > 0
    vm.call("C.fib", 12)
    assert vm.cycles_snapshot() > cycles_mid


def test_config_labels():
    assert CompilerConfig.no_ea().label() == "without EA"
    assert CompilerConfig.equi_escape().label() == "equi-escape EA"
    assert CompilerConfig.conngraph().label() == "conn-graph EA"
    assert CompilerConfig.partial_escape().label() == "with PEA"
    assert CompilerConfig.no_ea().escape_tier == "none"
    # The legacy enum still resolves through the deprecation shim.
    from repro.jit import options as jit_options
    jit_options._DEPRECATION_WARNED.clear()  # warning is once-per-knob
    with pytest.warns(DeprecationWarning):
        shimmed = CompilerConfig(escape_analysis=EscapeAnalysisKind.NONE)
    assert shimmed.escape_tier == "none"


def test_native_dispatch_through_vm():
    source = """
        class C {
            static native int host(int x);
            static int m(int x) { return host(x) + 1; }
        }
    """
    program = compile_source(
        source, natives={"C.host": lambda interp, args: args[0] * 10})
    vm = VM(program, CompilerConfig.partial_escape(compile_threshold=3))
    for _ in range(10):
        assert vm.call("C.m", 4) == 41


def test_virtual_dispatch_from_compiled_code():
    source = """
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class C {
            static int m(A a) { return a.f(); }
            static int run(int k) {
                A a = null;
                if (k > 0) { a = new B(); } else { a = new A(); }
                return m(a);
            }
        }
    """
    program = compile_source(source)
    vm = VM(program, CompilerConfig.partial_escape(compile_threshold=3))
    for _ in range(10):
        assert vm.call("C.run", 1) == 2
        assert vm.call("C.run", -1) == 1
    assert program.method("C.run") in vm.compiled


def test_three_configs_agree_and_pea_wins(run_shape=None):
    source = """
        class Temp { int a; int b; }
        class C {
            static int run(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) {
                    Temp t = new Temp();
                    t.a = i;
                    t.b = i * 2;
                    s = s + t.a + t.b;
                }
                return s;
            }
        }
    """
    results = {}
    for name, factory in (("no_ea", CompilerConfig.no_ea),
                          ("equi", CompilerConfig.equi_escape),
                          ("pea", CompilerConfig.partial_escape)):
        program = compile_source(source)
        vm = VM(program, factory())
        for _ in range(30):
            vm.call("C.run", 20)
        before = vm.heap_snapshot()
        value = vm.call("C.run", 1000)
        delta = vm.heap_snapshot().delta(before)
        results[name] = (value, delta.allocations)
    assert results["no_ea"][0] == results["pea"][0] == \
        results["equi"][0]
    # Equi-escape also wins here (never escapes at all)...
    assert results["equi"][1] == 0
    assert results["pea"][1] == 0
    assert results["no_ea"][1] == 1000


def test_compile_bailout_falls_back_to_interpreter(monkeypatch):
    from repro.jit.compiler import Compiler
    program = compile_source(FIB)
    vm = VM(program, CompilerConfig.partial_escape(
        compile_threshold=3, compile_bailout=True))

    def broken_compile(method):
        raise RuntimeError("injected compiler bug")

    monkeypatch.setattr(vm.compiler, "compile", broken_compile)
    # Execution keeps working, interpreted.
    assert vm.call("C.fib", 12) == 144
    assert not vm.compiled
    assert vm._uncompilable  # the failure was recorded


def test_compile_error_raises_by_default(monkeypatch):
    program = compile_source(FIB)
    vm = VM(program, CompilerConfig.partial_escape(compile_threshold=3))

    def broken_compile(method):
        raise RuntimeError("injected compiler bug")

    monkeypatch.setattr(vm.compiler, "compile", broken_compile)
    with pytest.raises(RuntimeError, match="injected"):
        vm.call("C.fib", 12)
