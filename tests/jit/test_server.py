"""The compile service: program transport, background tier-up, fleet
dedup (exactly one compilation per unique key), bit-identical metrics
against in-process compilation, interleavings with deoptimization and
invalidation, OSR tier-up through the service, and failure semantics
(clean shutdown with a non-empty queue, service death -> in-process
fallback, logged once)."""

import logging
import multiprocessing
import time
import traceback

import pytest

from repro.jit import VM, CompilationCache, CompilerConfig
from repro.jit.client import ServiceClient
from repro.jit.server import CompileService, dump_program, load_program

from vm_harness import compile_source

LOOP_SOURCE = """
    class Point { int x; int y; }
    class Main {
        static int iterate(int n) {
            int total = 0;
            for (int i = 0; i < n; i = i + 1) {
                Point p = new Point();
                p.x = i;
                p.y = i + 1;
                total = total + p.x + p.y;
            }
            return total;
        }
    }
"""

BRANCHY_SOURCE = """
    class Main {
        static int pick(int x) {
            if (x < 100) { return x + 1; }
            return x - 1;
        }
        static int run(int lo, int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + pick(lo + i);
            }
            return acc;
        }
    }
"""

ESCAPE_SOURCE = """
    class Box { int v; }
    class Main {
        static Box sink;
        static int work(int i) {
            Box box = new Box();
            box.v = i * 3;
            if (i == 31337) {
                sink = box;
                return box.v + 1;
            }
            return box.v;
        }
        static int run(int from, int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + work(from + i);
            }
            return acc;
        }
    }
"""


@pytest.fixture
def service(tmp_path):
    svc = CompileService(cache_dir=str(tmp_path / "svc-cache"),
                        workers=2)
    svc.start(("127.0.0.1", 0))
    yield svc
    svc.shutdown()


def connect(svc) -> ServiceClient:
    return ServiceClient(svc.address)


# -- program transport ---------------------------------------------------------


def test_program_skeleton_round_trip():
    """The shipped skeleton reproduces the content fingerprint — and
    therefore the cache keys — of the original program, so service-side
    compilations land under the keys the clients compute."""
    program = compile_source(ESCAPE_SOURCE)
    clone = load_program(dump_program(program))
    assert clone.content_fingerprint() == program.content_fingerprint()
    config = CompilerConfig.partial_escape()
    for qualified in ("Main.work", "Main.run"):
        assert CompilationCache.compilation_key(
            program, program.method(qualified), config, True) == \
            CompilationCache.compilation_key(
                clone, clone.method(qualified), config, True)
    # The clone is independently compilable (the service's actual job).
    from repro.jit import Compiler
    result = Compiler(clone, config).compile(clone.method("Main.work"))
    assert result.node_count > 0


# -- end-to-end background tier-up --------------------------------------------


@pytest.mark.parametrize("backend", ["legacy", "plan", "codegen"])
def test_background_tier_up_installs_service_replies(service, backend):
    program = compile_source(LOOP_SOURCE)
    config = CompilerConfig.partial_escape(compile_threshold=3,
                                           execution_backend=backend)
    vm = VM(program, config, service=connect(service))
    interpreted = [vm.call("Main.iterate", 40) for _ in range(12)]
    vm.finish_pending_compiles()
    assert len(set(interpreted)) == 1
    assert vm.service_installs >= 1
    assert vm.service_fallbacks == 0
    assert program.method("Main.iterate") in vm.compiled
    # The installed code computes the same value the interpreter did.
    assert vm.call("Main.iterate", 40) == interpreted[0]


@pytest.mark.parametrize("backend", ["plan", "codegen"])
def test_metrics_identical_service_vs_in_process(service, backend):
    """The deterministic Table-1 metrics — results, allocations,
    monitors, deopts, invalidations — are bit-identical whether methods
    compile in-process or through the service (blocking mode, so the
    compile points line up call-for-call)."""
    def run(client):
        program = compile_source(ESCAPE_SOURCE)
        config = CompilerConfig.partial_escape(
            compile_threshold=3, deopt_invalidate_threshold=2,
            execution_backend=backend, compile_service_wait=True)
        vm = VM(program, config, service=client)
        for _ in range(10):
            vm.call("Main.run", 0, 40)          # speculative warm-up
            program.reset_statics()
        for _ in range(6):
            vm.call("Main.run", 31330, 10)      # deopt + invalidate
            program.reset_statics()
        vm.finish_pending_compiles()
        before = vm.heap_snapshot()
        deopts_before = vm.exec_stats.deopts
        result = vm.call("Main.run", 31330, 10)
        delta = vm.heap_snapshot().delta(before)
        return (result, delta.allocations, delta.monitor_enters,
                delta.monitor_exits, vm.exec_stats.deopts - deopts_before,
                vm.invalidations)

    baseline = run(None)
    via_service = run(connect(service))
    assert via_service == baseline


# -- fleet dedup: N client processes, one service ------------------------------

_HAMMER_CASES = (
    ("loop", LOOP_SOURCE, "Main.iterate", (40,)),
    ("branchy", BRANCHY_SOURCE, "Main.run", (0, 30)),
)


def _hammer_worker(address, worker_id, result_queue):
    """One fleet member: its own process, programs, VMs and connection.
    Every worker runs the identical call sequence, so their profiles —
    and hence the speculation facts of their compile requests — agree,
    and the service can serve them all from single compilations."""
    try:
        from repro.lang import compile_source as compile_mj
        payload = {}
        for name, source, entry, args in _HAMMER_CASES:
            program = compile_mj(source)
            # Exactly-once needs stable speculation facts: OSR stays
            # off (whether a loop OSR'd before a method-entry compile
            # is service-latency dependent) and decisions must be
            # final at snapshot time (min_samples=1), else a decision
            # maturing while the reply is in flight goes stale at
            # install and legitimately recompiles a second variant.
            config = CompilerConfig.partial_escape(
                compile_threshold=3, osr_threshold=10 ** 9,
                speculation_min_samples=1)
            vm = VM(program, config,
                    service=ServiceClient(address))
            for _ in range(12):
                vm.call(entry, *args)
                program.reset_statics()
            vm.finish_pending_compiles()
            before = vm.heap_snapshot()
            result = vm.call(entry, *args)
            allocations = vm.heap_snapshot().delta(before).allocations
            payload[name] = {
                "result": result,
                "allocations": allocations,
                "fallbacks": vm.service_fallbacks,
                "service_alive": vm._service is not None,
            }
        result_queue.put(("ok", worker_id, payload))
    except Exception:  # noqa: BLE001 - report to the parent
        result_queue.put(("error", worker_id, traceback.format_exc()))


def test_fleet_hammer_compiles_each_key_exactly_once(service):
    """Six client processes hammer one service with overlapping
    methods: every unique cache key is compiled exactly once fleet-wide
    (in-flight dedup + shared-cache hits absorb the rest), every worker
    stays on the service (no in-process fallbacks), and the metrics all
    workers observe are identical."""
    clients = 6
    ctx = multiprocessing.get_context()
    result_queue = ctx.SimpleQueue()
    processes = [ctx.Process(target=_hammer_worker,
                             args=(service.address, wid, result_queue))
                 for wid in range(clients)]
    for process in processes:
        process.start()
    outcomes = {}
    deadline = time.monotonic() + 120
    while len(outcomes) < clients and time.monotonic() < deadline:
        status, worker_id, payload = result_queue.get()
        outcomes[worker_id] = (status, payload)
    for process in processes:
        process.join(timeout=30)
    errors = [f"worker {wid}:\n{payload}"
              for wid, (status, payload) in outcomes.items()
              if status != "ok"]
    assert not errors, "\n".join(errors)
    assert len(outcomes) == clients

    reference = outcomes[0][1]
    for worker_id, (__, payload) in outcomes.items():
        for name in reference:
            assert payload[name]["result"] == \
                reference[name]["result"], worker_id
            assert payload[name]["allocations"] == \
                reference[name]["allocations"], worker_id
            assert payload[name]["fallbacks"] == 0, worker_id
            assert payload[name]["service_alive"], worker_id

    stats = service.stats.snapshot()
    assert stats["compiles"] >= 1
    # The exactly-once property: no key was ever compiled twice.
    assert stats["max_compiles_per_key"] == 1
    # 6 identical workers: everything past the first compilation of a
    # key was answered by in-flight dedup or the shared cache.
    assert stats["requests"] > stats["compiles"]
    assert stats["dedup_joined"] + stats["cache_hits"] > 0


# -- clean shutdown with a non-empty queue -------------------------------------


def test_clean_shutdown_fails_queued_requests(tmp_path):
    """A service shut down with requests still queued (zero workers, so
    nothing ever drains) replies ``compile-error`` to every waiter —
    no hangs, no silently dropped requests — and shutdown is
    idempotent."""
    service = CompileService(cache_dir=str(tmp_path / "cache"),
                             workers=0)
    service.start(("127.0.0.1", 0))
    client = connect(service)
    program = compile_source(BRANCHY_SOURCE)
    client.register(program)
    config = CompilerConfig.partial_escape()
    rids = [client.submit(program, qualified, config, None)
            for qualified in ("Main.pick", "Main.run")]
    # Wait until the service has accepted (queued) both requests —
    # a request still in the socket buffer at shutdown surfaces as a
    # connection loss, not a reply.
    deadline = time.monotonic() + 30
    while service.stats.requests < len(rids) and \
            time.monotonic() < deadline:
        time.sleep(0.01)
    assert service.stats.requests == len(rids)

    service.shutdown()
    replies = []
    deadline = time.monotonic() + 30
    while len(replies) < len(rids) and time.monotonic() < deadline:
        try:
            replies.extend(client.wait_any(timeout=1.0))
        except (EOFError, OSError):
            break
    assert {reply.request_id for reply in replies} == set(rids)
    for reply in replies:
        assert reply.blob is None
        assert "shutting down" in reply.error
    service.shutdown()  # idempotent
    client.close()


# -- interleavings -------------------------------------------------------------


@pytest.mark.parametrize("backend", ["plan", "codegen"])
def test_stale_reply_revalidates_and_resubmits(service, backend):
    """Invalidation racing installation: the profile changes a branch
    decision after the snapshot was taken but before the reply lands.
    The stale payload must be discarded at install (fact validation),
    resubmitted once with a fresh snapshot, and the second reply
    installed."""
    program = compile_source(BRANCHY_SOURCE)
    # The VM never compiles on its own; the test drives the request
    # and holds the reply so the interleaving is deterministic.
    config = CompilerConfig.partial_escape(
        compile_threshold=10 ** 9, speculation_min_samples=8,
        execution_backend=backend)
    client = connect(service)
    vm = VM(program, config, service=client)
    method = program.method("Main.pick")
    for _ in range(20):
        vm.call("Main.pick", 5)         # branch always taken
    rid = client.submit(program, "Main.pick", config,
                        vm.profile.snapshot())
    vm._service_pending[method] = rid
    replies = client.wait_any(timeout=60)
    assert len(replies) == 1 and replies[0].error is None
    stale = replies[0]

    for _ in range(40):
        vm.call("Main.pick", 150)       # flip the branch decision
    vm._service_install(stale)
    assert method not in vm.compiled, \
        "stale speculative payload must not install"
    assert method in vm._service_pending, \
        "failed validation must resubmit with a fresh snapshot"

    vm.finish_pending_compiles()
    assert method in vm.compiled
    assert vm.service_installs == 1
    assert vm.call("Main.pick", 5) == 6
    assert vm.call("Main.pick", 150) == 149


@pytest.mark.parametrize("backend", ["plan", "codegen"])
def test_deopt_while_compile_in_flight(service, backend):
    """A deopt (and the invalidation it triggers) arriving while
    another compile request is in flight: the eviction is broadcast to
    the shared service cache, the in-flight request still resolves, and
    every subsequent result is correct."""
    program = compile_source(ESCAPE_SOURCE)
    config = CompilerConfig.partial_escape(
        compile_threshold=3, deopt_invalidate_threshold=1,
        speculation_min_samples=2, execution_backend=backend,
        compile_service_wait=True)
    client = connect(service)
    vm = VM(program, config, service=client)
    work = program.method("Main.work")
    run = program.method("Main.run")
    for i in range(8):
        vm.call("Main.work", 5)     # compiles speculatively (blocking)
    assert work in vm.compiled

    # Put a second compile in flight and do NOT drain it.
    rid = client.submit(program, "Main.run", config,
                        vm.profile.snapshot())
    vm._service_pending[run] = rid

    # Deopt fires while that request is pending: the speculative code
    # rematerializes the Box, the VM invalidates (threshold 1) and
    # broadcasts the eviction.
    assert vm.call("Main.work", 31337) == 31337 * 3 + 1
    assert vm.invalidations >= 1
    assert work not in vm.compiled
    deadline = time.monotonic() + 10
    while service.stats.evictions_received == 0 and \
            time.monotonic() < deadline:
        time.sleep(0.01)
    assert service.stats.evictions_received >= 1

    # The in-flight request resolves (installed, or recompiled against
    # the post-deopt profile if its facts went stale) and behaves.
    vm.finish_pending_compiles()
    assert run in vm.compiled
    assert vm.call("Main.run", 31330, 10) == \
        sum(i * 3 + (1 if i == 31337 else 0)
            for i in range(31330, 31340))


@pytest.mark.parametrize("backend", ["plan", "codegen"])
def test_osr_tier_up_through_service_blocking(service, backend):
    """OSR tier-up through the service (blocking mode): a hot loop in a
    cold method transfers mid-call exactly like in-process OSR, with
    identical results, OSR entry counts and allocations."""
    def run(client):
        program = compile_source(LOOP_SOURCE)
        config = CompilerConfig.partial_escape(
            compile_threshold=10 ** 9, osr_threshold=25,
            execution_backend=backend, compile_service_wait=True)
        vm = VM(program, config, service=client)
        before = vm.heap_snapshot()
        result = vm.call("Main.iterate", 4000)
        allocations = vm.heap_snapshot().delta(before).allocations
        return result, vm.osr_entries, allocations, vm.service_installs

    result, osr_entries, allocations, __ = run(None)
    s_result, s_osr_entries, s_allocations, s_installs = \
        run(connect(service))
    assert osr_entries == 1
    assert (s_result, s_osr_entries, s_allocations) == \
        (result, osr_entries, allocations)
    assert s_installs >= 1


@pytest.mark.parametrize("backend", ["plan", "codegen"])
def test_osr_tier_up_through_service_async(service, backend):
    """OSR tier-up with background compilation: the loop keeps
    interpreting past the threshold and transfers at a later backedge
    once the reply lands — every call computes the same value before,
    during and after the transfer."""
    from repro.bytecode import Interpreter
    program = compile_source(LOOP_SOURCE)
    config = CompilerConfig.partial_escape(
        compile_threshold=10 ** 9, osr_threshold=25,
        execution_backend=backend)
    vm = VM(program, config, service=connect(service))
    expected = Interpreter(
        compile_source(LOOP_SOURCE)).call("Main.iterate", 40)
    deadline = time.monotonic() + 60
    while vm.osr_entries == 0 and time.monotonic() < deadline:
        assert vm.call("Main.iterate", 40) == expected
    assert vm.osr_entries >= 1
    assert vm.service_installs >= 1
    assert vm.service_fallbacks == 0


# -- differential fuzzing through the service ----------------------------------


def test_fuzz_routes_engines_through_service(service):
    """`repro fuzz --service`: every differential engine compiles
    through one shared service and the oracle still holds."""
    from repro.jit.server import format_address
    from repro.verify.fuzz import fuzz
    report = fuzz(programs=2, seed=11, shrink=False,
                  service_address=format_address(service.address))
    assert report.programs_run == 2
    assert not report.failures, [
        (f.category, f.detail) for f in report.failures]
    assert service.stats.requests > 0


# -- failure semantics ---------------------------------------------------------


def test_service_death_falls_back_in_process(tmp_path, caplog):
    """Killing the service mid-run demotes the VM to in-process
    compilation: logged exactly once, every later compile happens
    locally, and results are unaffected."""
    service = CompileService(cache_dir=str(tmp_path / "cache"),
                             workers=1)
    service.start(("127.0.0.1", 0))
    program = compile_source(LOOP_SOURCE)
    config = CompilerConfig.partial_escape(compile_threshold=3)
    vm = VM(program, config, service=connect(service))
    first = vm.call("Main.iterate", 40)
    service.shutdown()

    with caplog.at_level(logging.WARNING, logger="repro.jit.service"):
        results = [vm.call("Main.iterate", 40) for _ in range(10)]
    assert set(results) == {first}
    assert vm._service is None
    assert program.method("Main.iterate") in vm.compiled  # in-process
    assert vm.service_fallbacks == 0  # demoted before any wait
    warnings = [record for record in caplog.records
                if "compile service unavailable" in record.message]
    assert len(warnings) == 1, "service loss must be logged exactly once"


def test_connect_storm_accepts_every_client(service):
    """A whole-fleet cold start opens many connections at once.  With
    the Listener's default backlog of 1 the kernel silently drops the
    overflow (the client sees ESTAB, the server never accepts, and the
    authkey handshake blocks forever); the service must listen with a
    backlog that absorbs the storm."""
    import threading

    clients = 24
    barrier = threading.Barrier(clients)
    failures = []

    def connect(index: int) -> None:
        try:
            barrier.wait()
            client = ServiceClient(service.address)
            assert client.stats()["connections"] >= 1
            client.close()
        except Exception:  # noqa: BLE001 - collected for the assert
            failures.append(f"client {index}: {traceback.format_exc()}")

    threads = [threading.Thread(target=connect, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + 60
    for thread in threads:
        thread.join(timeout=max(0.1, deadline - time.monotonic()))
    stuck = [t for t in threads if t.is_alive()]
    assert not stuck, f"{len(stuck)} clients never finished handshaking"
    assert not failures, failures[:3]
    assert service.stats.connections >= clients
