"""The per-method escape-tier policy API (ISSUE 9): token parsing,
legacy-knob shims, policy resolution, and cache-key isolation."""

import dataclasses

import pytest

from repro.jit import (AutoTierPolicy, CompilationCache, CompilerConfig,
                       EscapeAnalysisKind, TierRequest, TierSpec)
from repro.jit.cache import pipeline_fingerprint
from repro.jit.options import _DEPRECATION_WARNED
from repro.lang import compile_source

FIB = """
    class C {
        static int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
    }
"""


# -- TierSpec ---------------------------------------------------------------


def test_token_round_trip():
    for token in ("none", "equi", "pea", "pea+summaries", "pea+stack",
                  "pea+cgstack", "pea+summaries+cgstack", "equi+stack",
                  "none+stack", "conngraph"):
        assert TierSpec.parse(token).token() == token


def test_conngraph_base_implies_summaries_and_cgstack():
    spec = TierSpec.parse("conngraph")
    assert spec.summaries is True
    assert spec.stack_analysis == "conngraph"
    assert spec.token() == "conngraph"
    # Explicit construction normalizes identically.
    assert TierSpec("conngraph") == spec


def test_unknown_tokens_rejected():
    with pytest.raises(ValueError):
        TierSpec.parse("hotspot")
    with pytest.raises(ValueError):
        TierSpec.parse("pea+hotstack")
    with pytest.raises(ValueError):
        TierSpec(base="pea", stack_analysis="bogus")


# -- deprecation shims ------------------------------------------------------


def test_legacy_knobs_map_onto_the_tier():
    _DEPRECATION_WARNED.clear()
    with pytest.warns(DeprecationWarning):
        config = CompilerConfig(
            escape_analysis=EscapeAnalysisKind.NONE,
            stack_allocation=True)
    assert config.escape_tier == "none+stack"
    # Mirrors stay readable for legacy call sites.
    assert config.escape_analysis is EscapeAnalysisKind.NONE
    assert config.stack_allocation is True

    _DEPRECATION_WARNED.clear()
    with pytest.warns(DeprecationWarning):
        config = CompilerConfig.partial_escape(escape_summaries=True)
    assert config.escape_tier == "pea+summaries"
    assert config.escape_summaries is True


def test_legacy_warnings_fire_once_per_knob():
    import warnings

    _DEPRECATION_WARNED.clear()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        CompilerConfig(stack_allocation=True)
        CompilerConfig(stack_allocation=False)
        CompilerConfig(escape_summaries=True)
    knobs = [w for w in caught
             if issubclass(w.category, DeprecationWarning)
             and "CompilerConfig" in str(w.message)]
    assert len(knobs) == 2  # stack_allocation once, escape_summaries once


def test_legacy_knobs_reject_policy_tiers():
    with pytest.raises(ValueError):
        CompilerConfig(escape_tier="auto", stack_allocation=True)
    with pytest.raises(ValueError):
        CompilerConfig(escape_tier=AutoTierPolicy(),
                       escape_summaries=True)


def test_shimmed_config_survives_dataclasses_replace():
    _DEPRECATION_WARNED.clear()
    with pytest.warns(DeprecationWarning):
        config = CompilerConfig(stack_allocation=True)
    clone = dataclasses.replace(config)
    assert clone.escape_tier == config.escape_tier == "pea+stack"


# -- policy resolution ------------------------------------------------------


def test_static_tier_resolves_uniformly():
    config = CompilerConfig.conngraph()
    assert config.is_static_tier()
    assert config.static_tier_spec().token() == "conngraph"
    spec = config.resolve_tier("C.m", 10, 0)
    assert spec.token() == "conngraph"


def test_auto_policy_tiers_by_hotness_size_and_queue():
    policy = AutoTierPolicy(hot_invocations=40, large_method_size=300,
                            busy_queue_depth=4)
    hot_small = TierRequest("C.m", 50, 100)
    assert policy(hot_small) == "pea+summaries"
    cold = TierRequest("C.m", 50, 3)
    assert policy(cold) == "conngraph"
    huge = TierRequest("C.m", 1000, 100)
    assert policy(huge) == "conngraph"
    busy = TierRequest("C.m", 50, 100, queue_depth=8)
    assert policy(busy) == "conngraph"


def test_auto_config_resolves_per_method():
    config = CompilerConfig(escape_tier="auto")
    assert not config.is_static_tier()
    assert config.static_tier_spec() is None
    assert config.resolve_tier("C.m", 50, 100).token() == \
        "pea+summaries"
    assert config.resolve_tier("C.m", 50, 0).token() == "conngraph"


def test_custom_policy_callable():
    def policy(request):
        return "pea" if request.method_name.endswith("hot") else "none"

    config = CompilerConfig(escape_tier=policy)
    assert config.resolve_tier("C.hot", 10, 0).base == "pea"
    assert config.resolve_tier("C.cold", 10, 0).base == "none"
    assert config.label() == "tiered EA (policy)"


# -- fingerprints and cache isolation ---------------------------------------


def test_tier_changes_the_pipeline_fingerprint():
    tokens = ("none", "equi", "conngraph", "pea", "pea+summaries",
              "pea+summaries+cgstack", "auto")
    prints = {t: pipeline_fingerprint(CompilerConfig(escape_tier=t))
              for t in tokens}
    assert len(set(prints.values())) == len(tokens)


def test_policy_objects_fingerprint_by_parameters():
    default = CompilerConfig(escape_tier="auto")
    same = CompilerConfig(escape_tier=AutoTierPolicy())
    tuned = CompilerConfig(escape_tier=AutoTierPolicy(hot_invocations=5))
    assert pipeline_fingerprint(default) == pipeline_fingerprint(same)
    assert pipeline_fingerprint(default) != pipeline_fingerprint(tuned)


def test_no_cache_entry_crosses_escape_tier_values():
    """The resolved tier token is a compilation-key dimension: the same
    method under different tiers gets different keys, and a shared
    cache never serves one tier's artifact to another."""
    program = compile_source(FIB)
    method = program.method("C.fib")
    keys = set()
    for token in ("none", "equi", "conngraph", "pea", "pea+summaries"):
        config = CompilerConfig(escape_tier=token)
        keys.add(CompilationCache.compilation_key(
            program, method, config, profiled=False))
    assert len(keys) == 5
    # An explicit per-method resolution overrides the static spec —
    # what an "auto" policy does as a method gets hot.
    auto = CompilerConfig(escape_tier="auto")
    cold = CompilationCache.compilation_key(
        program, method, auto, profiled=False, tier="conngraph")
    hot = CompilationCache.compilation_key(
        program, method, auto, profiled=False, tier="pea+summaries")
    assert cold != hot


def test_shared_cache_isolates_tiers_end_to_end():
    from repro.jit import VM

    cache = CompilationCache()
    checks = {}
    for token in ("none", "conngraph", "pea"):
        program = compile_source(FIB)
        vm = VM(program, CompilerConfig(escape_tier=token,
                                        compile_threshold=3),
                cache=cache)
        for _ in range(5):
            checks[token] = vm.call("C.fib", 12)
        compiled = vm.compiled[program.method("C.fib")]
        assert compiled.cache_entry is not None
    assert len(set(checks.values())) == 1  # tiers agree on the result
    # Three distinct compilations were stored, none shared across tiers.
    assert cache.stats.misses >= 3
