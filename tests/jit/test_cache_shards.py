"""Property tests for the sharded on-disk cache (CACHE_FORMAT 5): a
store written lockfree by many concurrent writers must never let a
reader observe a torn, corrupted or cross-shard payload — the digest
echo rejects per-entry corruption, the key echo rejects files moved
between shards, and atomic publication makes every read some writer's
complete snapshot."""

import hashlib
import tempfile
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jit.cache import CacheEntry, CompilationCache


def _key(seed: int) -> str:
    return hashlib.sha256(b"shard-key-%d" % seed).hexdigest()


def _entries(key, blobs):
    return [CacheEntry(key, (("fact", index),), blob)
            for index, blob in enumerate(blobs)]


# -- round trip ----------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(blobs=st.lists(st.binary(min_size=1, max_size=128),
                      min_size=1, max_size=4),
       seed=st.integers(min_value=0, max_value=2 ** 32))
def test_disk_round_trip_is_exact(blobs, seed):
    with tempfile.TemporaryDirectory() as tmp:
        cache = CompilationCache(tmp)
        key = _key(seed)
        written = _entries(key, blobs)
        cache._write_disk(key, written)
        read = CompilationCache(tmp)._read_disk(key)
        assert [(e.key, e.facts, e.blob) for e in read] == \
            [(e.key, e.facts, e.blob) for e in written]


# -- corruption ----------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(blobs=st.lists(st.binary(min_size=1, max_size=128),
                      min_size=1, max_size=4),
       position=st.integers(min_value=0),
       bit=st.integers(min_value=0, max_value=7))
def test_injected_corruption_never_returns_a_wrong_payload(
        blobs, position, bit):
    """Flip any single bit anywhere in the shard file: every entry a
    reader still gets back must carry one of the exact blobs that were
    written — a corrupted payload is dropped (digest check), a
    corrupted file rejected (key echo / unpicklable), never returned
    as garbage."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = CompilationCache(tmp)
        key = _key(1)
        written = _entries(key, blobs)
        cache._write_disk(key, written)
        path = cache._graph_path(key)
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        data[position % len(data)] ^= (1 << bit)
        with open(path, "wb") as handle:
            handle.write(bytes(data))

        read = CompilationCache(tmp)._read_disk(key)
        valid_blobs = {entry.blob for entry in written}
        for entry in read:
            assert entry.key == key
            assert entry.blob in valid_blobs


def test_cross_shard_file_is_rejected_wholesale():
    """A shard file copied or renamed under a different key (even in
    another shard directory) fails the key echo and is ignored."""
    import os
    import shutil
    with tempfile.TemporaryDirectory() as tmp:
        cache = CompilationCache(tmp)
        key_a = _key(2)
        key_b = next(_key(seed) for seed in range(3, 1000)
                     if _key(seed)[:2] != key_a[:2])
        cache._write_disk(key_a, _entries(key_a, [b"payload-a"]))
        path_b = cache._graph_path(key_b)
        os.makedirs(os.path.dirname(path_b), exist_ok=True)
        shutil.copyfile(cache._graph_path(key_a), path_b)

        fresh = CompilationCache(tmp)
        assert fresh._read_disk(key_b) == []
        assert [e.blob for e in fresh._read_disk(key_a)] == [b"payload-a"]


# -- concurrent writers --------------------------------------------------------


def test_concurrent_writers_never_tear_reads():
    """Several cache instances (stand-ins for fleet service/VM
    processes) hammer the same key's shard file while readers poll it:
    every read is some writer's complete, digest-valid snapshot.  Lost
    updates are allowed (last atomic rename wins); torn or mixed
    payloads are not."""
    rounds = 40
    writers = 4
    with tempfile.TemporaryDirectory() as tmp:
        key = _key(5)
        all_blobs = set()
        for writer in range(writers):
            for round_ in range(rounds):
                all_blobs.add(b"w%d-r%d" % (writer, round_))
        failures = []
        stop = threading.Event()

        def write_loop(writer: int) -> None:
            cache = CompilationCache(tmp)
            for round_ in range(rounds):
                blob = b"w%d-r%d" % (writer, round_)
                cache._write_disk(key, [
                    CacheEntry(key, (("writer", writer),), blob),
                    CacheEntry(key, (("round", round_),), blob)])

        def read_loop() -> None:
            cache = CompilationCache(tmp)
            while not stop.is_set():
                for entry in cache._read_disk(key):
                    if entry.key != key:
                        failures.append(f"wrong key {entry.key}")
                    if entry.blob not in all_blobs:
                        failures.append(f"torn blob {entry.blob!r}")

        readers = [threading.Thread(target=read_loop) for _ in range(2)]
        for thread in readers:
            thread.start()
        write_threads = [threading.Thread(target=write_loop, args=(w,))
                         for w in range(writers)]
        for thread in write_threads:
            thread.start()
        for thread in write_threads:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not failures, failures[:5]
        # The final state is the last completed write of some writer.
        final = CompilationCache(tmp)._read_disk(key)
        assert len(final) == 2
        assert final[0].blob in all_blobs


def test_adopt_entry_publishes_variants_across_instances(tmp_path):
    """adopt_entry (the service's install path) round-trips through the
    shard file: a second instance sees every variant, validated."""
    cache_dir = str(tmp_path / "cache")
    key = _key(6)
    first = CompilationCache(cache_dir)
    first.adopt_entry(CacheEntry(key, (("f", 1),), b"one"))
    first.adopt_entry(CacheEntry(key, (("f", 2),), b"two"))

    second = CompilationCache(cache_dir)
    with second._lock:
        variants = {entry.facts: entry.blob
                    for entry in second._entries(key)}
    assert variants == {(("f", 1),): b"one", (("f", 2),): b"two"}
    assert second.stats.disk_hits == 2
