"""On-stack replacement: hot loops tier up mid-method.

Covers the second tiering axis (backedge counters next to invocation
counters): transfer on both execution backends, the threshold boundary,
PEA + deoptimization from inside OSR code, the entry-bci cache-key
dimension, and the shapes that must *not* OSR."""

import pytest

from repro.jit import (CompilationCache, CompilerConfig, VM, VMListener)
from repro.jit.cache import CompilationCache as Cache

from vm_harness import compile_source, run_interpreted

HOT_LOOP_SOURCE = """
    class Main {
        static int run(int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + i * 3 - (i & 7);
            }
            return acc;
        }
    }
"""

#: Hot loop allocating a per-iteration temporary that escapes on one
#: "impossible" iteration — impossible as far as the mid-loop OSR
#: profile is concerned, so the compiler speculates the branch away and
#: PEA scalar-replaces the Pair.  Iteration 900 then fails the guard
#: *inside the OSR'd loop* and the Pair must be rematerialized.
ESCAPE_LOOP_SOURCE = """
    class Pair {
        int a; int b;
        Pair(int a, int b) { this.a = a; this.b = b; }
    }
    class Main {
        static Pair sink;
        static int run(int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                Pair p = new Pair(i, i * 3);
                if (i == 900) { sink = p; }
                acc = acc + p.a + p.b;
            }
            return acc;
        }
        static int check() {
            if (sink == null) { return -1; }
            return sink.a * 100000 + sink.b;
        }
    }
"""

SYNCHRONIZED_SOURCE = """
    class Main {
        static int counter;
        static synchronized int run(int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                counter = counter + 1;
                acc = acc + counter;
            }
            return acc;
        }
    }
"""

BACKENDS = ["legacy", "plan"]


def fresh_vm(source, backend="plan", osr_threshold=60, cache=None,
             **kwargs):
    program = compile_source(source)
    config = CompilerConfig.partial_escape(
        osr_threshold=osr_threshold, execution_backend=backend, **kwargs)
    return VM(program, config, cache=cache), program


class Recorder(VMListener):
    def __init__(self):
        self.osr_compiles = []
        self.deopts = []

    def on_osr_compile(self, method, bci, result):
        self.osr_compiles.append((method.qualified_name, bci))

    def on_deopt(self, method, state):
        self.deopts.append((method.qualified_name, state.bci))


@pytest.mark.parametrize("backend", BACKENDS)
def test_hot_loop_in_cold_method_tiers_up_mid_call(backend):
    """One single invocation — far below the invocation threshold — of
    a method whose loop exceeds the backedge threshold must transfer to
    compiled code mid-call, without a normal-entry compilation."""
    n = 5_000
    vm, _ = fresh_vm(HOT_LOOP_SOURCE, backend=backend)
    listener = Recorder()
    vm.add_listener(listener)
    expected = run_interpreted(HOT_LOOP_SOURCE, "Main.run", (n,)).result
    assert vm.call("Main.run", n) == expected
    assert vm.osr_entries == 1
    assert len(vm.osr_compiled) == 1
    assert not vm.compiled, "invocation count 1 must not compile entry"
    assert listener.osr_compiles == [
        ("Main.run", bci) for (__, bci) in vm.osr_compiled]


def test_osr_threshold_boundary():
    """The loop OSRs on the backedge that reaches the threshold: a trip
    count of exactly ``osr_threshold`` transfers, one less does not."""
    threshold = 60
    for n, entries in ((threshold - 1, 0), (threshold, 1)):
        vm, _ = fresh_vm(HOT_LOOP_SOURCE, osr_threshold=threshold)
        vm.call("Main.run", n)
        assert vm.osr_entries == entries, f"trip count {n}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_deopt_inside_osr_loop_rematerializes(backend):
    """The OSR profile has never seen the escape branch, so the guard
    that replaces it fails mid-loop in OSR'd code: the scalar-replaced
    Pair is rematerialized with the right field values and execution
    resumes in the interpreter without disturbing the result."""
    n = 2_000
    vm, _ = fresh_vm(ESCAPE_LOOP_SOURCE, backend=backend)
    listener = Recorder()
    vm.add_listener(listener)
    interp = run_interpreted(ESCAPE_LOOP_SOURCE, "Main.run", (n,))
    assert vm.call("Main.run", n) == interp.result
    assert vm.osr_entries >= 1
    # The rematerialized Pair reached the static field intact.
    assert vm.call("Main.check") == 900 * 100000 + 2700
    if listener.deopts:
        assert vm.exec_stats.deopts == len(listener.deopts)


def test_osr_and_entry_variants_do_not_collide(tmp_path):
    """An OSR graph enters at a loop header with the loop's live locals
    as parameters — reusing it for a normal call (or vice versa) would
    be catastrophic.  The cache keys them apart via ``entry_bci``."""
    cache = CompilationCache(cache_dir=str(tmp_path))
    vm, program = fresh_vm(HOT_LOOP_SOURCE, cache=cache)
    method = program.method("Main.run")

    # Key inequality is structural, not incidental.
    normal_key = Cache.compilation_key(program, method, vm.config, True,
                                       entry_bci=None)
    assert len({normal_key} | {
        Cache.compilation_key(program, method, vm.config, True,
                              entry_bci=bci)
        for bci in (0, 3, 17)}) == 4

    # Populate the cache with the OSR variant only ...
    vm.call("Main.run", 2_000)
    [(_, osr_bci)] = list(vm.osr_compiled)
    assert cache.lookup(program, method, vm.config, vm.profile,
                        entry_bci=osr_bci) is not None
    # ... and the normal-entry lookup must still miss.
    assert cache.lookup(program, method, vm.config, vm.profile,
                        entry_bci=None) is None


def test_warm_vm_reuses_cached_osr_variant(tmp_path):
    """A second VM over the same cache directory gets the OSR graph
    from the cache instead of recompiling it."""
    cache_dir = str(tmp_path)
    results = []
    for round_ in range(2):
        vm, _ = fresh_vm(HOT_LOOP_SOURCE,
                         cache=CompilationCache(cache_dir=cache_dir))
        results.append(vm.call("Main.run", 5_000))
        assert vm.osr_entries == 1
        hits = vm.cache.stats.hits
        assert (hits > 0) == (round_ == 1)
    assert results[0] == results[1]


def test_synchronized_method_never_osr():
    """OSR entry would re-acquire the monitor the interpreter already
    holds; synchronized methods stay on the first tier until the
    invocation counter promotes them whole."""
    vm, _ = fresh_vm(SYNCHRONIZED_SOURCE, compile_threshold=10_000)
    expected = run_interpreted(SYNCHRONIZED_SOURCE, "Main.run",
                               (500,)).result
    assert vm.call("Main.run", 500) == expected
    assert vm.osr_entries == 0
    assert not vm.osr_compiled


@pytest.mark.parametrize("backend", BACKENDS)
def test_stale_osr_variant_does_not_deopt_cycle(backend):
    """Regression: after a deopt inside OSR'd loop code, the stale OSR
    variant must not be re-entered verbatim on the very next backedge.
    It used to be: re-enter, guard fails on the next iteration, deopt,
    repeat — a remat+deopt cycle per iteration until the invalidate
    threshold tripped.  Now the variant is re-validated against the
    live profile (which just recorded the falsifying branch), retired,
    and rebuilt unspeculated on the same backedge — so the whole run
    costs exactly one deopt and no invalidation."""
    vm, _ = fresh_vm(ESCAPE_LOOP_SOURCE, backend=backend)
    listener = Recorder()
    vm.add_listener(listener)
    interp = run_interpreted(ESCAPE_LOOP_SOURCE, "Main.run", (2_000,))
    assert vm.call("Main.run", 2_000) == interp.result
    assert vm.exec_stats.deopts == 1
    assert vm.invalidations == 0
    # Original speculated variant + the post-deopt unspeculated rebuild.
    assert len(listener.osr_compiles) == 2
    # The retired variant is gone; the rebuilt one is installed.
    assert len(vm.osr_compiled) == 1


def test_invalidation_drops_osr_variants():
    """Deopt-triggered invalidation of a method discards its OSR
    variants along with the normal-entry code."""
    vm, program = fresh_vm(ESCAPE_LOOP_SOURCE)
    vm.call("Main.run", 2_000)
    method = program.method("Main.run")
    assert any(m is method for (m, __) in vm.osr_compiled)
    vm._invalidate(method, "test")
    assert not any(m is method for (m, __) in vm.osr_compiled)
