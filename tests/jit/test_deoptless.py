"""Deoptless: dispatched OSR with specialized continuations.

A falsified speculation normally bridges through the interpreter and
eventually invalidates — the deopt latency cliff.  With
``config.deoptless`` the deopt becomes a dispatch point: the VM derives
a context from the observed failing state, compiles a continuation
entering at the deopt bci specialized against it, and later deopts at
the same site transfer straight into a matching variant.  Covers:
continuation-entry rematerialization (including cyclic virtual pairs),
dispatch hit vs miss on all three execution backends, the per-site
variant cap with LRU retirement, the cross-process cache round-trip of
context-keyed variants, and background tier-up through the compile
service."""

import pytest

from repro.bytecode import Interpreter
from repro.jit import VM, CompilationCache, CompilerConfig, VMListener
from repro.jit.deoptless import is_continuation_entry

from vm_harness import compile_source

#: Branch-flip shape: the phase check sits *before* the loop, so its
#: deopt site is straight-line code a continuation can enter.
FLIP_SOURCE = """
    class Main {
        static int step(int phase, int n) {
            int acc = 0;
            if (phase == 1) { acc = 7; } else { acc = 3; }
            for (int i = 0; i < n; i = i + 1) {
                acc = (acc * 31 + i) & 1048575;
            }
            return acc;
        }
    }
"""

#: The guard lives *inside* the hot loop: its continuation would need a
#: backedge into an unmaterialized loop header, so the graph builder
#: declines and the site keeps plain deopt-to-interpreter semantics.
MIDLOOP_SOURCE = """
    class Main {
        static int run(int flip, int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                if (flip == 1) { acc = acc + i * 3; }
                else { acc = acc + i; }
            }
            return acc;
        }
    }
"""

#: Two mutually-linked scalar-replaced objects alive across the guard:
#: the dispatch must rematerialize the cycle before the continuation
#: entry consumes it (and the continuation publishes it to a static).
CYCLE_SOURCE = """
    class Node { int v; Node link; }
    class Main {
        static Node sink;
        static int run(int flip, int a, int b) {
            Node x = new Node();
            Node y = new Node();
            x.v = a;
            y.v = b;
            x.link = y;
            y.link = x;
            int acc = 0;
            if (flip == 1) { sink = x; acc = 100; }
            return acc + x.v * 10 + y.link.v;
        }
        static int check() {
            if (sink == null) { return -1; }
            int cyclic = 0;
            if (sink.link.link == sink) { cyclic = 1; }
            return sink.v * 1000 + sink.link.v * 10 + cyclic;
        }
    }
"""

#: Receiver rotation: each unseen class is a new dispatch context, so
#: the per-site variant table fills up and must retire by LRU.
MEGA_SOURCE = """
    class Shape { int weight() { return 1; } }
    class C1 extends Shape { int weight() { return 3; } }
    class C2 extends Shape { int weight() { return 5; } }
    class C3 extends Shape { int weight() { return 7; } }
    class C4 extends Shape { int weight() { return 11; } }
    class Main {
        static int run(Shape s, int n) {
            int acc = s.weight();
            for (int i = 0; i < n; i = i + 1) {
                acc = (acc * 31 + i) & 1048575;
            }
            return acc;
        }
    }
"""

BACKENDS = ["legacy", "plan", "codegen"]


def fresh_vm(source, backend="plan", cache=None, service=None, **kwargs):
    """A deoptless VM tuned so speculation forms during a short warm-up
    and invalidation stays out of the way (the dispatch behavior under
    test is the pre-invalidation transition window)."""
    program = compile_source(source)
    kwargs.setdefault("compile_threshold", 5)
    kwargs.setdefault("speculation_min_samples", 3)
    kwargs.setdefault("deopt_invalidate_threshold", 100)
    kwargs.setdefault("osr_threshold", 100_000)
    config = CompilerConfig.partial_escape(
        deoptless=True, execution_backend=backend, **kwargs)
    return VM(program, config, cache=cache, service=service), program


class Recorder(VMListener):
    def __init__(self):
        self.continuations = []
        self.dispatches = []
        self.cache_hits = []

    def on_continuation_compile(self, method, bci, context, result):
        self.continuations.append((method.qualified_name, bci, context))

    def on_dispatch(self, method, bci, context, hit):
        self.dispatches.append((method.qualified_name, bci, context,
                                hit))

    def on_cache_hit(self, method, entry):
        self.cache_hits.append(entry)


def interp_result(source, entry, *args):
    return Interpreter(compile_source(source)).call(entry, *args)


@pytest.mark.parametrize("backend", BACKENDS)
def test_dispatch_hit_after_branch_flip(backend):
    """First flipped call: the deopt derives a branch context, compiles
    a continuation on the miss, and transfers into it — one dispatch,
    one continuation compile, no interpreter bridge."""
    vm, _ = fresh_vm(FLIP_SOURCE, backend=backend)
    listener = Recorder()
    vm.add_listener(listener)
    expected_warm = interp_result(FLIP_SOURCE, "Main.step", 0, 40)
    expected_flip = interp_result(FLIP_SOURCE, "Main.step", 1, 40)
    for _ in range(8):
        assert vm.call("Main.step", 0, 40) == expected_warm
    assert vm.exec_stats.deopts == 0, "warm-up must not deopt"

    assert vm.call("Main.step", 1, 40) == expected_flip
    assert vm.exec_stats.deopts == 1
    assert vm.deoptless.dispatches == 1
    assert vm.deoptless.continuation_compiles == 1
    assert vm.deoptless.dispatch_misses == 0
    [(name, bci, context)] = listener.continuations
    assert name == "Main.step"
    # The flipped call falsified the speculation, so the observed
    # direction is the *opposite* of the trained one — which concrete
    # boolean that is depends on the branch encoding.
    assert context[0] == "branch" and context[1] == bci
    assert listener.dispatches == [("Main.step", bci, context, True)]

    # Later flips keep dispatching into (re)validated variants.
    for _ in range(3):
        assert vm.call("Main.step", 1, 40) == expected_flip
    assert vm.deoptless.dispatches == 4
    assert all(hit for (*_, hit) in listener.dispatches)


@pytest.mark.parametrize("backend", BACKENDS)
def test_midloop_deopt_site_misses_and_bridges(backend):
    """A deopt site inside a hot loop cannot host a continuation entry
    (its backedge would target an unmaterialized header): the dispatch
    misses, the site is recorded uncompilable, and execution falls back
    to the plain interpreter bridge with the right result."""
    vm, program = fresh_vm(MIDLOOP_SOURCE, backend=backend)
    listener = Recorder()
    vm.add_listener(listener)
    expected_warm = interp_result(MIDLOOP_SOURCE, "Main.run", 0, 50)
    expected_flip = interp_result(MIDLOOP_SOURCE, "Main.run", 1, 50)
    for _ in range(8):
        assert vm.call("Main.run", 0, 50) == expected_warm
    assert vm.call("Main.run", 1, 50) == expected_flip
    assert vm.exec_stats.deopts >= 1
    assert vm.deoptless.dispatches == 0
    assert vm.deoptless.dispatch_misses >= 1
    assert not listener.continuations
    assert listener.dispatches and \
        not any(hit for (*_, hit) in listener.dispatches)
    method = program.method("Main.run")
    assert any(m is method
               for (m, __) in vm._continuation_uncompilable)


@pytest.mark.parametrize("backend", BACKENDS)
def test_cyclic_virtual_pair_rematerializes_at_entry(backend):
    """The guard's frame state holds two scalar-replaced objects linked
    in a cycle; the dispatched continuation receives the rematerialized
    pair, publishes one to a static, and the cycle survives intact."""
    vm, _ = fresh_vm(CYCLE_SOURCE, backend=backend)
    expected_warm = interp_result(CYCLE_SOURCE, "Main.run", 0, 5, 9)
    for _ in range(8):
        assert vm.call("Main.run", 0, 5, 9) == expected_warm
    assert vm.exec_stats.deopts == 0
    # Compiled warm calls never materialize Node: a post-warm-up call
    # allocates nothing (both nodes stay scalar-replaced).
    before = vm.heap_snapshot()
    assert vm.call("Main.run", 0, 5, 9) == expected_warm
    assert vm.heap_snapshot().delta(before).allocations == 0

    assert vm.call("Main.run", 1, 5, 9) == \
        interp_result(CYCLE_SOURCE, "Main.run", 1, 5, 9)
    assert vm.deoptless.dispatches == 1
    # sink.v == 5, sink.link.v == 9, and sink.link.link is sink again.
    assert vm.call("Main.check") == 5 * 1000 + 9 * 10 + 1


def test_variant_cap_retires_lru():
    """Rotating receivers mint one variant per unseen class; with the
    cap at two, the least recently dispatched variant is retired and
    the site never holds more than the cap."""
    vm, program = fresh_vm(MEGA_SOURCE, deoptless_max_variants=2)
    listener = Recorder()
    vm.add_listener(listener)

    iprog = compile_source(MEGA_SOURCE)
    interp = Interpreter(iprog)
    expected = {name: interp.call("Main.run",
                                  interp.heap.new_instance(name), 40)
                for name in ("C1", "C2", "C3", "C4")}

    shapes = {name: vm.heap.new_instance(name)
              for name in ("C1", "C2", "C3", "C4")}
    for _ in range(8):  # monomorphic warm-up: speculate receiver C1
        assert vm.call("Main.run", shapes["C1"], 40) == expected["C1"]
    for _ in range(3):  # three distinct falsifying contexts, twice over
        for name in ("C2", "C3", "C4"):
            assert vm.call("Main.run", shapes[name], 40) == \
                expected[name]

    contexts = {ctx for (__, __, ctx) in listener.continuations}
    assert {cls for (kind, __, cls) in contexts
            if kind == "receiver"} >= {"C2", "C3", "C4"}
    assert vm.deoptless.retirements >= 1
    method = program.method("Main.run")
    sites = {bci for (__, bci, __) in listener.continuations}
    for bci in sites:
        assert vm._variants.site_count(method, bci) <= 2
    assert vm.deoptless.dispatches >= 3


def test_continuation_round_trips_through_shared_cache(tmp_path):
    """A second VM over the same cache directory (a fresh in-memory
    cache, so every entry comes off disk) serves the context-keyed
    continuation from the cache instead of recompiling it."""
    cache_dir = str(tmp_path)
    for round_ in range(2):
        vm, _ = fresh_vm(FLIP_SOURCE,
                         cache=CompilationCache(cache_dir=cache_dir))
        listener = Recorder()
        vm.add_listener(listener)
        for _ in range(8):
            vm.call("Main.step", 0, 40)
        assert vm.call("Main.step", 1, 40) == \
            interp_result(FLIP_SOURCE, "Main.step", 1, 40)
        assert vm.deoptless.dispatches == 1
        assert vm.deoptless.continuation_compiles == 1
        continuation_hits = [
            e for e in listener.cache_hits
            if is_continuation_entry(e.meta.get("entry_bci"))]
        if round_ == 0:
            assert not continuation_hits
            assert vm.cache.stats.continuation_stores == 1
        else:
            assert len(continuation_hits) == 1


def test_background_service_misses_then_dispatches():
    """Through the compile service without blocking, the first flip's
    dispatch misses (the request is in flight; the interpreter bridges
    it) and a later flip dispatches into the installed reply."""
    from repro.jit.client import ServiceClient
    from repro.jit.server import CompileService
    service = CompileService(workers=2)
    service.start(("127.0.0.1", 0))
    try:
        vm, _ = fresh_vm(FLIP_SOURCE,
                         service=ServiceClient(service.address),
                         compile_service_wait=False)
        expected_warm = interp_result(FLIP_SOURCE, "Main.step", 0, 40)
        expected_flip = interp_result(FLIP_SOURCE, "Main.step", 1, 40)
        for _ in range(8):
            assert vm.call("Main.step", 0, 40) == expected_warm
        vm.finish_pending_compiles()
        assert vm.call("Main.step", 1, 40) == expected_flip
        assert vm.deoptless.dispatch_misses >= 1
        vm.finish_pending_compiles()
        for _ in range(3):
            assert vm.call("Main.step", 1, 40) == expected_flip
        assert vm.deoptless.dispatches >= 1
        assert vm.service_fallbacks == 0
        stats = service.stats.snapshot()
        assert stats["continuation_requests"] >= 1
    finally:
        service.shutdown()


def test_blocking_service_dispatches_first_flip():
    """With ``compile_service_wait`` the reply is awaited at the miss,
    so even the first flip transfers into the service-compiled
    continuation — call-for-call identical to in-process compilation."""
    from repro.jit.client import ServiceClient
    from repro.jit.server import CompileService
    service = CompileService(workers=2)
    service.start(("127.0.0.1", 0))
    try:
        vm, _ = fresh_vm(FLIP_SOURCE,
                         service=ServiceClient(service.address),
                         compile_service_wait=True)
        for _ in range(8):
            vm.call("Main.step", 0, 40)
        assert vm.call("Main.step", 1, 40) == \
            interp_result(FLIP_SOURCE, "Main.step", 1, 40)
        assert vm.deoptless.dispatches == 1
        assert vm.deoptless.dispatch_misses == 0
        assert service.stats.snapshot()["continuation_requests"] >= 1
    finally:
        service.shutdown()
