"""Profile-guided speculative inlining (type speculation)."""

import pytest

from repro.ir import nodes as N
from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

SOURCE = """
class Shape {
    int area() { return 0; }
}
class Square extends Shape {
    int side;
    Square(int side) { this.side = side; }
    int area() { return side * side; }
}
class Circle extends Shape {
    int radius;
    Circle(int radius) { this.radius = radius; }
    int area() { return 3 * radius * radius; }
}
class Main {
    static Shape current;
    static Shape make(int kind, int v) {
        if (kind == 0) { return new Square(v); }
        return new Circle(v);
    }
    static int total(Shape s, int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            acc = acc + s.area();
        }
        return acc;
    }
    static int run(int kind, int n) {
        // The receiver's provenance is opaque (a static field), so the
        // exact type cannot be proven -- only speculated from the
        // profile.
        current = make(kind, 3);
        return total(current, n);
    }
}
"""


def warmed(kind=0, calls=40):
    program = compile_source(SOURCE)
    vm = VM(program, CompilerConfig.partial_escape())
    for _ in range(calls):
        vm.call("Main.run", kind, 20)
    return program, vm


def test_monomorphic_profile_inlines_with_guard():
    program, vm = warmed(kind=0)
    compiled = vm.compiled[program.method("Main.run")]
    # The polymorphic s.area() was speculatively inlined (through the
    # inlined total()): no invoke, type_speculation guard(s) present.
    assert not list(compiled.graph.nodes_of(N.InvokeNode))
    guards = [g for g in compiled.graph.nodes_of(N.FixedGuardNode)
              if g.reason == "type_speculation"]
    assert guards


def test_wrong_type_deopts_and_stays_correct():
    program, vm = warmed(kind=0)
    # Now feed Circles through the Square-specialized code.
    result = vm.call("Main.run", 1, 10)
    assert result == 10 * 3 * 3 * 3
    assert vm.exec_stats.deopts >= 1
    # Repeats invalidate and recompile against the now-poly profile.
    for _ in range(6):
        assert vm.call("Main.run", 1, 10) == 270
    assert vm.invalidations >= 1
    deopts = vm.exec_stats.deopts
    assert vm.call("Main.run", 1, 10) == 270
    assert vm.call("Main.run", 0, 10) == 90
    assert vm.exec_stats.deopts == deopts  # speculation retired


def test_polymorphic_profile_not_speculated():
    program = compile_source(SOURCE)
    vm = VM(program, CompilerConfig.partial_escape())
    for i in range(40):
        vm.call("Main.run", i % 2, 20)  # both types seen
    compiled = vm.compiled[program.method("Main.run")]
    assert list(compiled.graph.nodes_of(N.InvokeNode))
    guards = [g for g in compiled.graph.nodes_of(N.FixedGuardNode)
              if g.reason == "type_speculation"]
    assert not guards


def test_speculation_disabled_by_config():
    program = compile_source(SOURCE)
    vm = VM(program, CompilerConfig.partial_escape(
        speculate_types=False))
    for _ in range(40):
        vm.call("Main.run", 0, 20)
    compiled = vm.compiled[program.method("Main.run")]
    assert list(compiled.graph.nodes_of(N.InvokeNode))


def test_speculative_inlining_enables_pea():
    """With the call inlined, a receiver allocated at the call site can
    be scalar-replaced across the (formerly opaque) polymorphic call."""
    source = SOURCE + """
class Driver {
    static int hot(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Square s = new Square(i & 7);
            acc = acc + use(s);
        }
        return acc;
    }
    static int use(Shape s) { return s.area() + 1; }
}
"""
    program = compile_source(source)
    vm = VM(program, CompilerConfig.partial_escape())
    for _ in range(40):
        vm.call("Driver.hot", 30)
    before = vm.heap_snapshot()
    result = vm.call("Driver.hot", 1000)
    delta = vm.heap_snapshot().delta(before)
    assert result == sum((i & 7) ** 2 + 1 for i in range(1000))
    # area() is speculatively inlined through use(); the Square never
    # escapes and vanishes.
    assert delta.allocations == 0
