"""The content-addressed compilation cache: sharing, key sensitivity,
speculation-fact validation, deopt eviction, disk persistence, and
warm-up elision in the benchmark harness."""

import copy
import glob
import os

import pytest

from repro.benchsuite import by_name
from repro.benchsuite.harness import run_workload
from repro.jit import VM, CompilationCache, CompilerConfig
from repro.verify.fuzz import replay_corpus_entry

from vm_harness import compile_source

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.jasm")))

LOOP_SOURCE = """
    class Point { int x; int y; }
    class Main {
        static int iterate(int n) {
            int total = 0;
            for (int i = 0; i < n; i = i + 1) {
                Point p = new Point();
                p.x = i;
                p.y = i + 1;
                total = total + p.x + p.y;
            }
            return total;
        }
    }
"""

BRANCHY_SOURCE = """
    class Main {
        static int pick(int x) {
            if (x < 100) { return x + 1; }
            return x - 1;
        }
        static int run(int lo, int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + pick(lo + i);
            }
            return acc;
        }
    }
"""

ESCAPE_SOURCE = """
    class Box { int v; }
    class Main {
        static Box sink;
        static int work(int i) {
            Box box = new Box();
            box.v = i * 3;
            if (i == 31337) {
                sink = box;
                return box.v + 1;
            }
            return box.v;
        }
        static int run(int from, int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + work(from + i);
            }
            return acc;
        }
    }
"""


def run_vm(source, cache=None, calls=30, backend="legacy"):
    program = compile_source(source)
    config = CompilerConfig.partial_escape(compile_threshold=3,
                                           execution_backend=backend)
    vm = VM(program, config, cache=cache)
    for _ in range(calls):
        vm.call("Main.iterate", 40)
        program.reset_statics()
    before = vm.cycles_snapshot()
    result = vm.call("Main.iterate", 40)
    return vm, result, vm.cycles_snapshot() - before


# -- sharing across VMs --------------------------------------------------------


@pytest.mark.parametrize("backend", ["legacy", "plan", "codegen"])
def test_shared_cache_preserves_metrics(backend):
    cache = CompilationCache()
    _, cold_result, cold_cycles = run_vm(LOOP_SOURCE, backend=backend)
    vm1, r1, c1 = run_vm(LOOP_SOURCE, cache=cache, backend=backend)
    vm2, r2, c2 = run_vm(LOOP_SOURCE, cache=cache, backend=backend)
    assert r1 == r2 == cold_result
    assert c1 == c2 == cold_cycles
    assert cache.stats.stores >= 1
    # The second VM compiled nothing from scratch.
    assert vm2.compiler.compile_count == vm2.compiler.cache_hit_count
    assert cache.stats.hits >= vm2.compiler.cache_hit_count > 0


def test_legacy_and_plan_share_one_cache():
    """The pipeline fingerprint excludes the execution backend, so both
    VM engines hit the same entries (the plan backend just rebuilds its
    threaded plan from the cached linearization)."""
    cache = CompilationCache()
    _, r1, c_legacy = run_vm(LOOP_SOURCE, cache=cache, backend="legacy")
    misses_before = cache.stats.misses
    vm2, r2, c_plan = run_vm(LOOP_SOURCE, cache=cache, backend="plan")
    assert r1 == r2
    assert cache.stats.misses == misses_before
    assert vm2.compiler.cache_hit_count == vm2.compiler.compile_count > 0


# -- key sensitivity -----------------------------------------------------------


def test_key_changes_with_pipeline_config():
    program = compile_source(LOOP_SOURCE)
    method = program.method("Main.iterate")
    key = CompilationCache.compilation_key(
        program, method, CompilerConfig.partial_escape(), True)
    for changed in (CompilerConfig.partial_escape(inline=False),
                    CompilerConfig.partial_escape(pea_iterations=1),
                    CompilerConfig.partial_escape(
                        speculation_min_samples=10 ** 6),
                    CompilerConfig.no_ea()):
        assert CompilationCache.compilation_key(
            program, method, changed, True) != key
    # Backend and tier thresholds are execution details, not pipeline
    # inputs: they share the key.
    for same in (CompilerConfig.partial_escape(execution_backend="plan"),
                 CompilerConfig.partial_escape(compile_threshold=999)):
        assert CompilationCache.compilation_key(
            program, method, same, True) == key
    # Profiled and profile-free compilations never share entries.
    assert CompilationCache.compilation_key(
        program, method, CompilerConfig.partial_escape(), False) != key


def test_key_changes_with_bytecode():
    program = compile_source(LOOP_SOURCE)
    other = compile_source(LOOP_SOURCE.replace("i + 1", "i + 2"))
    config = CompilerConfig.partial_escape()
    assert (CompilationCache.compilation_key(
                program, program.method("Main.iterate"), config, True)
            != CompilationCache.compilation_key(
                other, other.method("Main.iterate"), config, True))


def test_changed_branch_profile_invalidates_entry():
    """A VM whose profile decides a speculated branch differently must
    not import the other VM's speculative graph."""
    cache = CompilationCache()
    # Methods must out-invoke speculation_min_samples before compiling,
    # else the branch decision is still None and both profiles agree.
    config = CompilerConfig.partial_escape(compile_threshold=20,
                                           speculation_min_samples=16)

    program_a = compile_source(BRANCHY_SOURCE)
    vm_a = VM(program_a, config, cache=cache)
    for _ in range(30):
        vm_a.call("Main.run", 0, 50)  # x < 100 always true
    assert cache.stats.stores >= 1
    assert vm_a.call("Main.pick", 7) == 8

    failures_before = cache.stats.validation_failures
    program_b = compile_source(BRANCHY_SOURCE)
    vm_b = VM(program_b, config, cache=cache)
    for _ in range(30):
        vm_b.call("Main.run", 60, 80)  # branch goes both ways
    assert vm_b.call("Main.pick", 7) == 8
    assert vm_b.call("Main.pick", 150) == 149
    assert cache.stats.validation_failures > failures_before

    # A third VM replaying profile A's behaviour still hits A's entries.
    program_c = compile_source(BRANCHY_SOURCE)
    vm_c = VM(program_c, config, cache=cache)
    for _ in range(30):
        vm_c.call("Main.run", 0, 50)
    assert vm_c.compiler.cache_hit_count > 0


# -- deopt invalidation --------------------------------------------------------


def test_deopt_invalidation_evicts_and_recompiles():
    cache = CompilationCache()
    program = compile_source(ESCAPE_SOURCE)
    config = CompilerConfig.partial_escape(deopt_invalidate_threshold=2)
    vm = VM(program, config, cache=cache)
    for _ in range(30):
        vm.call("Main.run", 0, 40)
        program.reset_statics()
    stores_cold = cache.stats.stores
    assert stores_cold >= 1 and cache.stats.evictions == 0

    # Drive the cold path until the speculative code is invalidated.
    for _ in range(10):
        vm.call("Main.run", 31330, 10)
        program.reset_statics()
    assert vm.invalidations >= 1
    assert cache.stats.evictions >= 1
    # The invalidated method recompiled against the updated profile and
    # the new (non-speculative) graph was stored as a fresh variant.
    assert cache.stats.stores > stores_cold
    assert vm.call("Main.run", 31330, 10) == \
        sum(i * 3 + (1 if i == 31337 else 0) for i in range(31330, 31340))


# -- disk persistence ----------------------------------------------------------


def test_disk_round_trip(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cache_a = CompilationCache(cache_dir)
    _, r1, c1 = run_vm(LOOP_SOURCE, cache=cache_a)
    assert cache_a.stats.disk_writes >= 1

    # A fresh cache instance (a new process, in effect) starts warm.
    cache_b = CompilationCache(cache_dir)
    vm_b, r2, c2 = run_vm(LOOP_SOURCE, cache=cache_b)
    assert (r1, c1) == (r2, c2)
    assert cache_b.stats.disk_hits >= 1
    assert vm_b.compiler.cache_hit_count == vm_b.compiler.compile_count


def test_corrupt_disk_entry_is_ignored(tmp_path):
    cache_dir = str(tmp_path / "cache")
    _, r1, c1 = run_vm(LOOP_SOURCE, cache=CompilationCache(cache_dir))
    for path in glob.glob(os.path.join(cache_dir, "graphs", "*", "*.pkl")):
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
    vm, r2, c2 = run_vm(LOOP_SOURCE, cache=CompilationCache(cache_dir))
    assert (r1, c1) == (r2, c2)
    assert vm.compiler.cache_hit_count == 0


# -- codegen payloads ----------------------------------------------------------


def test_codegen_shares_cache_with_plan():
    """The pipeline fingerprint excludes the execution backend: a VM on
    the codegen backend hits entries a plan-backend VM stored, relinking
    the generated source from the cached payload."""
    cache = CompilationCache()
    _, r1, __ = run_vm(LOOP_SOURCE, cache=cache, backend="codegen")
    misses_before = cache.stats.misses
    vm2, r2, __ = run_vm(LOOP_SOURCE, cache=cache, backend="plan")
    assert r1 == r2
    assert cache.stats.misses == misses_before
    assert vm2.compiler.cache_hit_count == vm2.compiler.compile_count > 0


def test_codegen_disk_round_trip_reexecs_source(tmp_path):
    """Warm loads skip the emission pass: the persisted source is
    digest-checked, re-``exec``-ed, and behaves identically."""
    cache_dir = str(tmp_path / "cache")
    vm_a, r1, c1 = run_vm(LOOP_SOURCE,
                          cache=CompilationCache(cache_dir),
                          backend="codegen")
    digests_cold = {m.qualified_name: result.codegen.digest
                    for m, result in vm_a.compiled.items()
                    if result.codegen is not None}
    assert digests_cold

    cache_b = CompilationCache(cache_dir)
    vm_b, r2, c2 = run_vm(LOOP_SOURCE, cache=cache_b, backend="codegen")
    assert (r1, c1) == (r2, c2)
    assert cache_b.stats.disk_hits >= 1
    assert vm_b.compiler.cache_hit_count == vm_b.compiler.compile_count
    digests_warm = {m.qualified_name: result.codegen.digest
                    for m, result in vm_b.compiled.items()
                    if result.codegen is not None}
    assert digests_warm == digests_cold
    assert vm_b._bound_codegen, "warm load did not re-exec the source"


def _compiled_codegen(backend="codegen"):
    program = compile_source(LOOP_SOURCE)
    config = CompilerConfig.partial_escape(compile_threshold=3,
                                           execution_backend=backend)
    vm = VM(program, config, cache=None)
    for _ in range(10):
        vm.call("Main.iterate", 40)
        program.reset_statics()
    return program, config, vm.compiled[program.method("Main.iterate")]


def test_codegen_payload_digest_guard():
    """Tampered source or unresolvable node ids must raise, never
    silently execute the wrong code."""
    from repro.runtime.codegen import CodegenError, CodegenPlan
    program, config, result = _compiled_codegen()
    payload = result.codegen.payload()
    rebuilt = CodegenPlan.from_payload(result.graph, program,
                                       config.cost_model, payload)
    assert rebuilt.digest == result.codegen.digest
    assert rebuilt.source == result.codegen.source

    tampered = dict(payload)
    tampered["source"] = payload["source"] + "\n# tampered"
    with pytest.raises(CodegenError):
        CodegenPlan.from_payload(result.graph, program,
                                 config.cost_model, tampered)

    stale = dict(payload)
    stale["deopt_states"] = [10 ** 9]  # node id not in the graph
    with pytest.raises(CodegenError):
        CodegenPlan.from_payload(result.graph, program,
                                 config.cost_model, stale)


def test_corrupt_codegen_payload_regenerates():
    """The compiler treats a bad payload as a clean miss and emits
    fresh source from the cached graph."""
    program, config, result = _compiled_codegen()
    tampered = dict(result.codegen.payload())
    tampered["digest"] = "0" * 64
    vm = VM(program, config)
    regenerated = vm.compiler._codegen_from_payload(
        result.graph, tampered, program.method("Main.iterate"), None)
    assert regenerated is not None
    assert regenerated.digest == result.codegen.digest


# -- corpus replay under a shared cache ----------------------------------------


@pytest.mark.parametrize("jasm_path", CORPUS_FILES,
                         ids=[os.path.basename(p)[:-len(".jasm")]
                              for p in CORPUS_FILES])
def test_corpus_replays_clean_with_shared_cache(jasm_path):
    """Every persisted reproducer behaves identically on all three
    engines whether or not legacy and plan share a compilation cache."""
    assert replay_corpus_entry(jasm_path) is None
    cache = CompilationCache()
    assert replay_corpus_entry(jasm_path, cache=cache) is None
    assert cache.stats.hits > 0


# -- benchmark harness ---------------------------------------------------------


def quick_workload():
    workload = copy.copy(by_name("fop"))
    workload.warmup_iterations = 12
    workload.measure_iterations = 2
    return workload


@pytest.mark.parametrize("backend", ["legacy", "plan", "codegen"])
def test_workload_measurement_identical_cache_on_off(backend):
    workload = quick_workload()
    config = CompilerConfig.partial_escape(execution_backend=backend)
    baseline = run_workload(workload, config)
    cached = run_workload(workload, config, cache=CompilationCache())
    # Measurement equality ignores wall-clock/observability fields, so
    # this compares exactly the Table-1 metrics.
    assert cached == baseline


def test_harness_warm_run_elides_warmup(tmp_path):
    workload = quick_workload()
    config = CompilerConfig.partial_escape()
    cache_dir = str(tmp_path / "cache")
    cold = run_workload(workload, config,
                        cache=CompilationCache(cache_dir))
    assert cold.warmup_iterations_elided == 0
    warm = run_workload(workload, config,
                        cache=CompilationCache(cache_dir))
    assert warm == cold
    assert warm.warmup_iterations_elided > 0
    assert warm.warmup_iterations_run < cold.warmup_iterations_run
