"""Shared test harness: compile-and-run under every VM configuration and
check that results agree (the semantic-preservation invariant).

Importable from any test directory (tests/conftest.py puts this
directory on sys.path)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.bytecode import Heap, HeapStats, Interpreter
from repro.jit import VM, CompilerConfig
from repro.lang import compile_source


@dataclass
class ConfigRun:
    """Result of running one configuration."""

    result: Any
    heap: HeapStats
    cycles: float
    vm: Optional[VM] = None


def run_interpreted(source: str, entry: str, args: Tuple,
                    natives: Optional[Dict[str, Callable]] = None
                    ) -> ConfigRun:
    program = compile_source(source, natives=natives)
    interp = Interpreter(program)
    before = interp.heap.stats.copy()
    result = interp.call(entry, *args)
    return ConfigRun(result, interp.heap.stats.delta(before), 0.0)


def run_config(source: str, entry: str, args: Tuple,
               config: CompilerConfig,
               natives: Optional[Dict[str, Callable]] = None,
               warmup: int = 25,
               warmup_args: Optional[Tuple] = None) -> ConfigRun:
    """Compile under *config*, warm up (so the entry really compiles),
    reset statics, then measure one call."""
    program = compile_source(source, natives=natives)
    vm = VM(program, config)
    wargs = warmup_args if warmup_args is not None else args
    for _ in range(warmup):
        vm.call(entry, *wargs)
    program.reset_statics()
    heap_before = vm.heap_snapshot()
    cycles_before = vm.cycles_snapshot()
    result = vm.call(entry, *args)
    heap_delta = vm.heap_snapshot().delta(heap_before)
    cycles = vm.cycles_snapshot() - cycles_before
    return ConfigRun(result, heap_delta, cycles, vm)


ALL_CONFIGS = {
    "interp": None,
    "no_ea": CompilerConfig.no_ea,
    "equi": CompilerConfig.equi_escape,
    "pea": CompilerConfig.partial_escape,
}


def run_everywhere(source: str, entry: str, args: Tuple,
                   natives: Optional[Dict[str, Callable]] = None,
                   warmup: int = 25,
                   warmup_args: Optional[Tuple] = None
                   ) -> Dict[str, ConfigRun]:
    """Run under the pure interpreter and all three compiled
    configurations; assert all results agree, monitors stay balanced and
    PEA never allocates more than the no-EA configuration."""
    runs: Dict[str, ConfigRun] = {
        "interp": run_interpreted(source, entry, args, natives)}
    for name, factory in ALL_CONFIGS.items():
        if factory is None:
            continue
        runs[name] = run_config(source, entry, args, factory(), natives,
                                warmup, warmup_args)
    reference = runs["interp"].result
    for name, run in runs.items():
        assert run.result == reference, (
            f"{name} returned {run.result!r}, interpreter returned "
            f"{reference!r}")
        assert run.heap.monitor_enters == run.heap.monitor_exits, (
            f"{name}: unbalanced monitors {run.heap}")
    assert runs["pea"].heap.allocations <= \
        runs["no_ea"].heap.allocations, (
            "PEA increased dynamic allocations: "
            f"{runs['pea'].heap.allocations} > "
            f"{runs['no_ea'].heap.allocations}")
    assert runs["equi"].heap.allocations <= \
        runs["no_ea"].heap.allocations
    return runs
