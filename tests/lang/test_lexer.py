"""Lexer tests."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)
            if t.kind is not TokenKind.EOF]


def test_keywords_vs_identifiers():
    tokens = kinds("class Foo extends Bar classy")
    assert tokens == [
        (TokenKind.KEYWORD, "class"), (TokenKind.IDENT, "Foo"),
        (TokenKind.KEYWORD, "extends"), (TokenKind.IDENT, "Bar"),
        (TokenKind.IDENT, "classy")]


def test_numbers():
    assert kinds("0 42 123456") == [
        (TokenKind.INT, "0"), (TokenKind.INT, "42"),
        (TokenKind.INT, "123456")]


def test_maximal_munch_operators():
    tokens = [t.text for t in tokenize("a<=b<<c==d&&e")
              if t.kind is TokenKind.PUNCT]
    assert tokens == ["<=", "<<", "==", "&&"]


def test_string_literals_with_escapes():
    tokens = tokenize(r'"hello\nworld" "tab\there"')
    assert tokens[0].value if hasattr(tokens[0], "value") else \
        tokens[0].text == "hello\nworld"
    assert tokens[1].text == "tab\there"


def test_unterminated_string():
    with pytest.raises(LexError, match="unterminated"):
        tokenize('"no end')


def test_line_comment_skipped():
    assert kinds("a // comment\nb") == [
        (TokenKind.IDENT, "a"), (TokenKind.IDENT, "b")]


def test_block_comment_skipped_and_lines_counted():
    tokens = tokenize("a /* multi\nline */ b")
    idents = [t for t in tokens if t.kind is TokenKind.IDENT]
    assert [t.text for t in idents] == ["a", "b"]
    assert idents[1].line == 2


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_unexpected_character():
    with pytest.raises(LexError, match="unexpected"):
        tokenize("a $ b")


def test_positions():
    tokens = tokenize("ab\n  cd")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)
