"""Type checker: acceptance and rejection cases."""

import pytest

from repro.lang import TypeError_, parse, typecheck


def check(source):
    return typecheck(parse(source))


def reject(source, match):
    with pytest.raises(TypeError_, match=match):
        check(source)


def test_valid_program():
    check("""
        class Box { int v; Box(int v) { this.v = v; } }
        class Main {
            static int get(Box b) {
                if (b == null) { return 0; }
                return b.v;
            }
        }
    """)


def test_unknown_type():
    reject("class C { Unknown f; }", "unknown type")


def test_unknown_variable():
    reject("class C { static void m() { x = 1; } }", "unknown variable")


def test_arithmetic_needs_ints():
    reject("class C { static void m() { int x = true + 1; } }",
           "needs ints")


def test_condition_must_be_boolean():
    reject("class C { static void m() { if (1) { } } }", "boolean")


def test_assignment_compatibility():
    reject("class C { static void m() { int x = null; } }",
           "cannot assign")
    check("""
        class A {}
        class B extends A {}
        class C { static void m() { A a = new B(); } }
    """)
    reject("""
        class A {}
        class B extends A {}
        class C { static void m() { B b = new A(); } }
    """, "cannot assign")


def test_return_type_checked():
    reject("class C { static int m() { return null; } }", "cannot return")
    reject("class C { static void m() { return 1; } }", "returns a value")
    reject("class C { static int m() { return; } }", "missing return")


def test_this_in_static_context():
    reject("class C { int f; static int m() { return this.f; } }",
           "static context")


def test_instance_field_in_static_context():
    reject("class C { int f; static int m() { return f; } }",
           "static context")


def test_implicit_this_field_access():
    check("class C { int f; int m() { return f; } }")


def test_duplicate_local():
    reject("class C { static void m() { int x = 1; int x = 2; } }",
           "duplicate local")


def test_call_arity_and_types():
    reject("""
        class C {
            static int f(int a) { return a; }
            static void m() { f(1, 2); }
        }
    """, "arguments")
    reject("""
        class C {
            static int f(int a) { return a; }
            static void m() { f(null); }
        }
    """, "not assignable")


def test_no_overloading():
    reject("""
        class C {
            static int f(int a) { return a; }
            static int f(boolean b) { return 0; }
        }
    """, "no overloading")


def test_constructor_checking():
    reject("""
        class Box { Box(int v) { } }
        class C { static void m() { Box b = new Box(); } }
    """, "arguments")
    check("""
        class Box { }
        class C { static void m() { Box b = new Box(); } }
    """)


def test_break_outside_loop():
    reject("class C { static void m() { break; } }", "outside a loop")


def test_array_rules():
    check("""
        class C {
            static int m() {
                int[] a = new int[4];
                a[0] = 1;
                return a[0] + a.length;
            }
        }
    """)
    reject("class C { static void m() { int x = 1; int y = x[0]; } }",
           "non-array")
    reject("""
        class C { static void m() { int[] a = new int[2]; a.length = 3; } }
    """, "array length")


def test_reference_equality_mixing_rejected():
    reject("""
        class C { static boolean m(Object o) { return o == 1; } }
    """, "cannot compare")


def test_synchronized_needs_reference():
    reject("class C { static void m() { synchronized (1) { } } }",
           "reference")


def test_static_call_on_instance_rejected():
    reject("""
        class A { static int f() { return 1; } }
        class C { static int m(A a) { return a.f(); } }
    """, "static method")


def test_instance_method_call_resolution():
    checker = check("""
        class A { int f() { return 1; } }
        class B extends A { }
        class C { static int m(B b) { return b.f(); } }
    """)
    assert checker.resolve_method("B", "f").declaring_class == "A"


def test_string_literals_are_objects():
    check("""
        class C {
            static Object m() { Object s = "hello"; return s; }
        }
    """)


def test_inheritance_cycle_detected():
    reject("""
        class A extends B { }
        class B extends A { }
    """, "cycle")


def test_expression_statement_must_have_effect():
    reject("class C { static void m() { 1 + 2; } }", "no effect")


def test_ternary_types():
    check("""
        class A {}
        class B extends A {}
        class C { static A m(boolean b) {
            return b ? new B() : new A();
        } }
    """)
    reject("class C { static void m(boolean b) { int x = b ? 1 : null; } }",
           "incompatible ternary")
    reject("class C { static void m() { int x = 1 ? 2 : 3; } }",
           "boolean")
