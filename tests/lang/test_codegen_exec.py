"""Language semantics: compiled programs executed on the interpreter."""

import pytest

from repro.bytecode import Interpreter, ThrownException
from repro.lang import compile_source


def run(source, entry, *args, natives=None):
    program = compile_source(source, natives=natives)
    return Interpreter(program).call(entry, *args)


def test_arithmetic_and_locals():
    assert run("""
        class C { static int m(int a, int b) {
            int c = a * b + a % b - (a / b);
            return c << 1 >> 1;
        } }
    """, "C.m", 17, 5) == (17 * 5 + 17 % 5 - 17 // 5)


def test_boolean_short_circuit():
    source = """
        class C {
            static int calls;
            static boolean bump() { calls = calls + 1; return true; }
            static int m(boolean b) {
                if (b && bump()) { }
                if (b || bump()) { }
                return calls;
            }
        }
    """
    assert run(source, "C.m", False) == 1  # only the || side calls bump
    assert run(source, "C.m", True) == 1  # only the && side calls bump


def test_boolean_as_value():
    assert run("""
        class C { static boolean m(int a, int b) { return a < b; } }
    """, "C.m", 1, 2) == 1
    assert run("""
        class C { static boolean m(boolean x) { return !x; } }
    """, "C.m", 1) == 0


def test_while_and_for_loops():
    assert run("""
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) { s = s + i; }
            int j = 0;
            while (j < n) { s = s + 1; j = j + 1; }
            return s;
        } }
    """, "C.m", 10) == 45 + 10


def test_break_continue():
    assert run("""
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 6) { break; }
                s = s + i;
            }
            return s;
        } }
    """, "C.m", 100) == 1 + 3 + 5


def test_constructor_and_fields():
    assert run("""
        class Point {
            int x; int y;
            Point(int x, int y) { this.x = x; this.y = y; }
            int manhattan() { return x + y; }
        }
        class C { static int m() {
            Point p = new Point(3, 4);
            p.x = p.x + 10;
            return p.manhattan();
        } }
    """, "C.m") == 17


def test_default_constructor_and_field_defaults():
    assert run("""
        class Box { int v; Object o; }
        class C { static int m() {
            Box b = new Box();
            if (b.o == null) { return b.v + 1; }
            return -1;
        } }
    """, "C.m") == 1


def test_inheritance_and_dispatch():
    assert run("""
        class Animal { int speak() { return 1; } }
        class Dog extends Animal { int speak() { return 2; } }
        class C { static int m(boolean dog) {
            Animal a = null;
            if (dog) { a = new Dog(); } else { a = new Animal(); }
            return a.speak();
        } }
    """, "C.m", 1) == 2


def test_instanceof_and_cast():
    assert run("""
        class Animal { }
        class Dog extends Animal { int tricks; }
        class C { static int m() {
            Animal a = new Dog();
            if (a instanceof Dog) {
                Dog d = (Dog) a;
                d.tricks = 5;
                return d.tricks;
            }
            return 0;
        } }
    """, "C.m") == 5


def test_arrays_of_refs():
    assert run("""
        class Box { int v; Box(int v) { this.v = v; } }
        class C { static int m(int n) {
            Box[] boxes = new Box[n];
            for (int i = 0; i < n; i = i + 1) { boxes[i] = new Box(i); }
            int s = 0;
            for (int i = 0; i < n; i = i + 1) { s = s + boxes[i].v; }
            return s + boxes.length;
        } }
    """, "C.m", 5) == 10 + 5


def test_statics():
    assert run("""
        class C {
            static int counter;
            static int m(int n) {
                for (int i = 0; i < n; i = i + 1) { counter = counter + 2; }
                return counter;
            }
        }
    """, "C.m", 4) == 8


def test_synchronized_block_and_method():
    source = """
        class Lock {
            synchronized int locked() { return 1; }
        }
        class C { static int m() {
            Lock lock = new Lock();
            int r = 0;
            synchronized (lock) { r = lock.locked(); }
            return r;
        } }
    """
    program = compile_source(source)
    interp = Interpreter(program)
    assert interp.call("C.m") == 1
    assert interp.heap.stats.monitor_enters == 2
    assert interp.heap.stats.monitor_exits == 2


def test_return_inside_synchronized_releases_monitor():
    source = """
        class C {
            static Object lock;
            static int m() {
                synchronized (lock) { return 42; }
            }
            static int go() {
                lock = new Object();
                return m();
            }
        }
    """
    program = compile_source(source)
    interp = Interpreter(program)
    assert interp.call("C.go") == 42
    assert interp.heap.stats.monitor_enters == \
        interp.heap.stats.monitor_exits == 1


def test_break_inside_synchronized_releases_monitor():
    source = """
        class C {
            static int m(Object lock) {
                int n = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    synchronized (lock) {
                        n = n + 1;
                        if (i == 3) { break; }
                    }
                }
                return n;
            }
            static int go() { return m(new Object()); }
        }
    """
    program = compile_source(source)
    interp = Interpreter(program)
    assert interp.call("C.go") == 4
    assert interp.heap.stats.monitor_enters == \
        interp.heap.stats.monitor_exits == 4


def test_throw_uncaught():
    with pytest.raises(ThrownException):
        run("""
            class Err { }
            class C { static void m() { throw new Err(); } }
        """, "C.m")


def test_native_binding():
    assert run("""
        class C {
            static native int host(int x);
            static int m() { return host(4); }
        }
    """, "C.m", natives={"C.host": lambda interp, args: args[0] ** 2}) \
        == 16


def test_native_must_be_declared():
    with pytest.raises(ValueError, match="not declared native"):
        compile_source("class C { static int m() { return 1; } }",
                       natives={"C.m": lambda i, a: 0})


def test_string_literal_values():
    assert run("""
        class C { static Object m(boolean b) {
            String s = "yes";
            if (b) { return s; }
            return "no";
        } }
    """, "C.m", 1) == "yes"


def test_string_reference_equality():
    # Identical literals are the same interned constant.
    assert run("""
        class C { static boolean m() {
            String a = "x";
            String b = "x";
            return a == b;
        } }
    """, "C.m") == 1


def test_deep_expression_nesting():
    assert run("""
        class C { static int m(int x) {
            return ((x + 1) * (x + 2) - (x + 3)) % ((x & 7) + 1);
        } }
    """, "C.m", 11) == ((12 * 13) - 14) % ((11 & 7) + 1)


def test_uninitialized_local_defaults_to_null():
    assert run("""
        class C { static boolean m() {
            Object o;
            o = null;
            return o == null;
        } }
    """, "C.m") == 1


def test_ternary_operator():
    assert run("""
        class C { static int m(int a, int b) {
            return (a > b ? a : b) - (a < b ? a : b);
        } }
    """, "C.m", 3, 9) == 6
    assert run("""
        class C { static Object m(boolean b) {
            return b ? "yes" : null;
        } }
    """, "C.m", 1) == "yes"


def test_ternary_nesting_right_associative():
    assert run("""
        class C { static int m(int a) {
            return a < 0 ? -1 : a == 0 ? 0 : 1;
        } }
    """, "C.m", -5) == -1


def test_ternary_short_circuits_side_effects():
    source = """
        class C {
            static int calls;
            static int bump(int v) { calls = calls + 1; return v; }
            static int m(boolean b) {
                int r = b ? bump(1) : bump(2);
                return r * 10 + calls;
            }
        }
    """
    assert run(source, "C.m", 1) == 11
    assert run(source, "C.m", 0) == 21
