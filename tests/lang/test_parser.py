"""Parser tests on AST shapes."""

import pytest

from repro.lang import ParseError, parse
from repro.lang import ast_nodes as ast


def parse_one(source):
    unit = parse(source)
    assert len(unit.classes) == 1
    return unit.classes[0]


def first_stmt(source_body):
    decl = parse_one(
        "class C { static void m() { " + source_body + " } }")
    return decl.methods[0].body.statements[0]


def parse_expr(text):
    stmt = first_stmt(f"int x = {text};")
    return stmt.init


def test_class_with_members():
    decl = parse_one("""
        class Point extends Base {
            int x;
            static Point origin;
            Point(int x) { this.x = x; }
            synchronized int getX() { return x; }
            static native int now();
        }
    """)
    assert decl.name == "Point"
    assert decl.superclass == "Base"
    assert [f.name for f in decl.fields] == ["x", "origin"]
    assert decl.fields[1].is_static
    names = [m.name for m in decl.methods]
    assert names == ["<init>", "getX", "now"]
    assert decl.methods[0].is_constructor
    assert decl.methods[1].is_synchronized
    assert decl.methods[2].is_native and decl.methods[2].is_static


def test_precedence():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_left_associativity():
    expr = parse_expr("10 - 3 - 2")
    assert expr.op == "-"
    assert isinstance(expr.left, ast.Binary) and expr.left.op == "-"
    assert expr.right.value == 2


def test_logical_precedence():
    stmt = first_stmt("boolean b = x < 1 && y > 2 || z == 3;")
    expr = stmt.init
    assert expr.op == "||"
    assert expr.left.op == "&&"


def test_unary_and_negative_literal_folding():
    assert parse_expr("-5").value == -5
    expr = parse_expr("-x")
    assert isinstance(expr, ast.Unary) and expr.op == "-"


def test_cast_vs_parenthesized():
    cast = parse_expr("(Point) p")
    assert isinstance(cast, ast.Cast) and cast.class_name == "Point"
    paren = parse_expr("(p)")
    assert isinstance(paren, ast.VarRef)


def test_postfix_chains():
    expr = parse_expr("a.b.c(1)[2].d")
    assert isinstance(expr, ast.FieldAccess) and expr.name == "d"
    assert isinstance(expr.receiver, ast.ArrayIndex)
    call = expr.receiver.array
    assert isinstance(call, ast.Call) and call.method_name == "c"


def test_new_object_and_array():
    obj = parse_expr("new Point(1, 2)")
    assert isinstance(obj, ast.NewObject) and len(obj.args) == 2
    arr = parse_expr("new int[10]")
    assert isinstance(arr, ast.NewArray)
    ref_arr = parse_expr("new Point[3]")
    assert isinstance(ref_arr, ast.NewArray)
    assert ref_arr.elem_type.name == "Point"


def test_instanceof():
    expr = parse_expr("p instanceof Point")
    assert isinstance(expr, ast.InstanceOf)


def test_statements():
    body = """
        int i = 0;
        while (i < 10) { i = i + 1; }
        for (int j = 0; j < 5; j = j + 1) { break; }
        if (i == 10) { return; } else { throw null; }
    """
    decl = parse_one("class C { static void m() { " + body + " } }")
    stmts = decl.methods[0].body.statements
    assert isinstance(stmts[0], ast.LocalDecl)
    assert isinstance(stmts[1], ast.While)
    assert isinstance(stmts[2], ast.For)
    assert isinstance(stmts[3], ast.If)


def test_synchronized_block():
    stmt = first_stmt("synchronized (lock) { lock = null; }")
    assert isinstance(stmt, ast.Synchronized)


def test_declaration_vs_expression_disambiguation():
    decl = first_stmt("Point p = null;")
    assert isinstance(decl, ast.LocalDecl)
    arr_decl = first_stmt("Point[] ps = null;")
    assert isinstance(arr_decl, ast.LocalDecl)
    assert arr_decl.decl_type.is_array
    assign = first_stmt("p = q;")
    assert isinstance(assign, ast.Assign)


def test_invalid_assignment_target():
    with pytest.raises(ParseError, match="assignment target"):
        parse("class C { static void m() { 1 + 2 = 3; } }")


def test_missing_semicolon():
    with pytest.raises(ParseError):
        parse("class C { static void m() { int x = 1 } }")


def test_unbalanced_braces():
    with pytest.raises(ParseError):
        parse("class C { static void m() {")
