"""Pytest configuration: make the shared harness importable from any
test directory (see vm_harness.py for the actual helpers)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
