"""Pytest configuration: make the shared harness importable from any
test directory (see vm_harness.py for the actual helpers), force the
full IR invariant verifier on for every compilation, and print the
fuzz seed when a randomized test fails."""

import os
import sys

# Every CompilerConfig built under pytest defaults to verify_ir=True:
# the GraphVerifier runs after every phase of every compilation (see
# src/repro/verify/verifier.py).  Must be set before repro.jit.options
# is imported by a test module.
os.environ.setdefault("REPRO_VERIFY_IR", "1")

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-seed", type=int, default=None,
        help="pin the session seed for randomized/fuzz tests "
             "(equivalent to FUZZ_SEED=<n> in the environment)")


def pytest_configure(config):
    seed = config.getoption("--fuzz-seed")
    if seed is not None:
        # Runs before test modules import fuzz_seed, so the pin wins.
        os.environ["FUZZ_SEED"] = str(seed)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Attach the session fuzz seed to failures of randomized tests so
    they can be reproduced with FUZZ_SEED=<seed> (see fuzz_seed.py)."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        try:
            from fuzz_seed import SEED, seed_was_forced
        except Exception:  # pragma: no cover - helper always importable
            return
        origin = "FUZZ_SEED (already pinned)" if seed_was_forced() \
            else "this session's random seed"
        report.sections.append((
            "fuzz seed",
            f"randomized tests ran with seed {SEED} ({origin}); "
            f"reproduce with: FUZZ_SEED={SEED} python -m pytest "
            f"{item.nodeid!r}"))
