"""IR-level control-flow graph: blocks, RPO, loop membership."""

import pytest

from repro.frontend import build_graph
from repro.ir import nodes as N
from repro.lang import compile_source
from repro.scheduler import ControlFlowGraph


def cfg_for(source, qualified="C.m"):
    program = compile_source(source)
    graph = build_graph(program, program.method(qualified))
    return graph, ControlFlowGraph(graph)


def test_straight_line_single_block():
    graph, cfg = cfg_for(
        "class C { static int m(int a) { return a * 2 + 1; } }")
    assert len(cfg.blocks) == 1
    assert isinstance(cfg.blocks[0].first, N.StartNode)
    assert isinstance(cfg.blocks[0].last, N.ReturnNode)


def test_diamond_blocks_and_rpo():
    graph, cfg = cfg_for("""
        class C { static int m(int a) {
            int r = 0;
            if (a > 0) { r = 1; } else { r = 2; }
            return r;
        } }
    """)
    merges = [b for b in cfg.blocks if isinstance(b.first, N.MergeNode)]
    assert len(merges) == 1
    order = {block: index for index, block in enumerate(cfg.rpo)}
    for block in cfg.blocks:
        for succ in block.successors:
            if isinstance(block.last, N.LoopEndNode):
                continue
            assert order[block] < order[succ], (block, succ)


def test_every_fixed_node_assigned_to_one_block():
    graph, cfg = cfg_for("""
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { s = s + i; }
            }
            return s;
        } }
    """)
    fixed = [n for n in graph.nodes() if n.is_fixed]
    for node in fixed:
        assert cfg.block_containing(node) is not None
    total = sum(len(b.nodes) for b in cfg.blocks)
    assert total == len(fixed)


def test_loop_membership():
    graph, cfg = cfg_for("""
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < i; j = j + 1) { s = s + 1; }
            }
            return s;
        } }
    """)
    headers = [b for b in cfg.blocks if b.is_loop_header]
    assert len(headers) == 2
    sizes = sorted(len(cfg.loop_members(h)) for h in headers)
    assert sizes[0] < sizes[1]  # inner loop strictly inside outer
    inner = min(headers, key=lambda h: len(cfg.loop_members(h)))
    outer = max(headers, key=lambda h: len(cfg.loop_members(h)))
    assert cfg.loop_members(inner) < cfg.loop_members(outer)


def test_blocks_end_at_control_transfers():
    graph, cfg = cfg_for("""
        class C { static int m(int a) {
            if (a > 0) { return 1; }
            return 0;
        } }
    """)
    for block in cfg.blocks:
        for node in block.nodes[:-1]:
            assert not isinstance(
                node, (N.IfNode, N.EndNode, N.LoopEndNode, N.ReturnNode,
                       N.DeoptimizeNode))
