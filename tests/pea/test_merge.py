"""Figure 6: MergeProcessor behavior at control-flow joins."""

import pytest

from repro.ir import nodes as N

from pea_helpers import execute, optimize, reference


def count(graph, node_type):
    return len(list(graph.nodes_of(node_type)))


def test_field_values_merge_through_phi():
    # Fig 6: all-virtual merge with differing field values -> Phi.
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            if (a > 0) { b.v = 1; } else { b.v = 2; }
            return b.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [5])[0] == 1
    assert execute(program, graph, [-5])[0] == 2


def test_identical_field_values_need_no_phi():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            b.v = 9;
            if (a > 0) { a = a + 1; }
            return b.v + a;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [1])[0] == 11


def test_mixed_escape_materializes_virtual_predecessor():
    # Fig 6 (b): escaped on one path, virtual on the other -> the
    # virtual side materializes at its End; merged state is escaped.
    source = """
        class Box { int v; }
        class C {
            static Box global;
            static int m(int a) {
                Box b = new Box();
                b.v = a;
                if (a > 0) { global = b; }
                b.v = b.v + 1;
                return b.v;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) >= 1
    assert execute(program, graph, [5])[0] == 6
    program2, graph2, __ = optimize(source, "C.m")
    assert execute(program2, graph2, [-5])[0] == -4
    # The escaping branch is rare: on the non-escaping input no
    # allocation should happen... but the merge forces materialization
    # on both paths here because b is used (loaded) after the merge.
    __, heap, __ = execute(program2, graph2, [-5])
    assert heap.allocations <= 1


def test_allocation_in_both_branches_merges_virtually():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = null;
            if (a > 0) { b = new Box(); b.v = 1; }
            else { b = new Box(); b.v = 2; }
            return b.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    # Two different Ids merge through the builder phi: both must
    # materialize (a phi needs runtime values).
    assert execute(program, graph, [3])[0] == 1
    assert execute(program, graph, [-3])[0] == 2


def test_phi_aliasing_same_id_on_both_inputs():
    # Fig 6 (c): a phi whose inputs all alias the same Id becomes an
    # alias itself; the object stays virtual.
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            Box c = null;
            if (a > 0) { c = b; } else { c = b; }
            c.v = a;
            return c.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [7])[0] == 7


def test_allocation_in_one_branch_only():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            int r = 0;
            if (a > 0) {
                Box b = new Box();
                b.v = a;
                r = b.v;
            }
            return r + 1;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [5])[0] == 6
    assert execute(program, graph, [-5])[0] == 1


def test_virtual_object_entry_same_across_merge_stays_virtual():
    # "if all predecessor VirtualStates reference the same Id, then so
    # does the new one."
    source = """
        class Inner { int v; }
        class Outer { Inner inner; }
        class C { static int m(int a) {
            Inner i = new Inner();
            Outer o = new Outer();
            o.inner = i;
            if (a > 0) { i.v = 1; } else { i.v = 2; }
            return o.inner.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [1])[0] == 1


def test_differing_virtual_entries_materialize_for_phi():
    # "A virtual object needs to be materialized before it can serve as
    # an input to a Phi node."
    source = """
        class Inner { int v; }
        class Outer { Inner inner; }
        class C { static int m(int a) {
            Outer o = new Outer();
            if (a > 0) {
                Inner x = new Inner();
                x.v = 1;
                o.inner = x;
            } else {
                Inner y = new Inner();
                y.v = 2;
                o.inner = y;
            }
            return o.inner.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert execute(program, graph, [1])[0] == 1
    assert execute(program, graph, [-1])[0] == 2
    # Outer itself can stay virtual even though the Inners materialized.
    news = [n for n in graph.nodes_of(N.NewInstanceNode)]
    assert all(n.class_name == "Inner" for n in news)


def test_lock_count_mismatch_forces_materialization():
    source = """
        class Box { int v; }
        class C {
            static native int consume(Box b);
            static int m(int a) {
                Box b = new Box();
                if (a > 0) {
                    synchronized (b) {
                        b.v = consume(b);
                    }
                }
                return b.v;
            }
        }
    """
    natives = {"C.consume": lambda interp, args: 5}
    # b escapes via consume() while locked; on the else path it is
    # virtual and unlocked. Semantics must survive.
    program, graph, __ = optimize(source, "C.m", natives=natives)
    assert execute(program, graph, [1])[0] == 5
    assert execute(program, graph, [-1])[0] == 0
    ref_result, __ = reference(source, "C.m", [1], natives=natives)
    assert ref_result == 5


def test_three_way_join():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            if (a > 10) { b.v = 1; }
            else {
                if (a > 0) { b.v = 2; } else { b.v = 3; }
            }
            return b.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [11])[0] == 1
    assert execute(program, graph, [5])[0] == 2
    assert execute(program, graph, [-5])[0] == 3


def test_partial_escape_listing4_shape():
    """The paper's core claim: allocation moves into the escaping branch;
    the non-escaping branch allocates nothing at runtime."""
    source = """
        class Key {
            int idx;
            Object ref;
            Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
            synchronized boolean equalsKey(Key other) {
                return this.idx == other.idx && this.ref == other.ref;
            }
        }
        class C {
            static Key cacheKey;
            static Object cacheValue;
            static Object m(int idx, Object ref) {
                Key key = new Key(idx, ref);
                if (cacheKey != null && key.equalsKey(cacheKey)) {
                    return cacheValue;
                } else {
                    cacheKey = key;
                    cacheValue = null;
                    return cacheValue;
                }
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    # The allocation site still exists (escaping branch), but the
    # monitor operations are gone entirely.
    assert count(graph, N.NewInstanceNode) == 1
    assert count(graph, N.MonitorEnterNode) == 0

    # Runtime: miss path allocates once...
    __, heap, __ = execute(program, graph, [1, None])
    assert heap.allocations == 1
    # ...then a hit path allocates nothing.
    program.reset_statics()
    program2, graph2, __ = optimize(source, "C.m")
    __, h1, __ = execute(program2, graph2, [1, None])  # miss: 1 alloc
    assert h1.allocations == 1
    # Statics persist on program2: the second call hits the cache.
    __, h2, __ = execute(program2, graph2, [1, None])  # hit: 0 allocs
    assert h2.allocations == 0
