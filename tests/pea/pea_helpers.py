"""Helpers to run the full pipeline up to (and including) PEA and
execute the optimized graph."""

from __future__ import annotations

from typing import Optional, Tuple

import pytest

from repro.bytecode import Heap, Interpreter
from repro.frontend import build_graph
from repro.lang import compile_source
from repro.opt import (CanonicalizerPhase, DeadCodeEliminationPhase,
                       GlobalValueNumberingPhase, InliningPhase)
from repro.pea import PartialEscapePhase
from repro.runtime import Deoptimizer, GraphInterpreter


def optimize(source, qualified, natives=None, inline=True,
             pea_iterations=2):
    """source -> (program, optimized graph, PEAResult)."""
    program = compile_source(source, natives=natives)
    graph = build_graph(program, program.method(qualified))
    if inline:
        InliningPhase(program).run(graph)
    CanonicalizerPhase().run(graph)
    GlobalValueNumberingPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    pea = PartialEscapePhase(program, pea_iterations)
    pea.run(graph)
    CanonicalizerPhase().run(graph)
    GlobalValueNumberingPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    graph.verify()
    return program, graph, pea.last_result


def execute(program, graph, args, natives_dispatch=True):
    """Run the optimized graph; returns (result, heap stats)."""
    heap = Heap(program)
    interp = Interpreter(program, heap)
    deopt = Deoptimizer(program, heap, interp)

    def invoke(kind, ref, call_args):
        if kind == "virtual":
            callee = program.resolve_virtual(call_args[0].class_name,
                                             ref.method_name)
        else:
            callee = program.resolve_method(ref.class_name,
                                            ref.method_name)
        return interp.invoke(callee, call_args)

    gi = GraphInterpreter(program, heap, invoke, deopt)
    result = gi.execute(graph, list(args))
    return result, heap.stats, gi.stats


def reference(source, qualified, args, natives=None):
    program = compile_source(source, natives=natives)
    interp = Interpreter(program)
    result = interp.call(qualified, *args)
    return result, interp.heap.stats
