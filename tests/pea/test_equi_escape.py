"""The flow-insensitive equi-escape-sets baseline (Section 6.2)."""

import pytest

from repro.frontend import build_graph
from repro.ir import nodes as N
from repro.lang import compile_source
from repro.opt import (CanonicalizerPhase, DeadCodeEliminationPhase,
                       InliningPhase)
from repro.pea import EquiEscapePhase, EquiEscapeSets, PartialEscapePhase


def prepare(source, qualified, natives=None):
    program = compile_source(source, natives=natives)
    graph = build_graph(program, program.method(qualified))
    InliningPhase(program).run(graph)
    CanonicalizerPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    return program, graph


def count(graph, node_type):
    return len(list(graph.nodes_of(node_type)))


def test_non_escaping_object_approved_and_replaced():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            b.v = a;
            return b.v;
        } }
    """
    program, graph = prepare(source, "C.m")
    approved = EquiEscapeSets(graph).analyze()
    assert len(approved) == 1
    EquiEscapePhase(program).run(graph)
    assert count(graph, N.NewInstanceNode) == 0


def test_returned_object_escapes():
    source = """
        class Box { int v; }
        class C { static Box m(int a) {
            Box b = new Box();
            b.v = a;
            return b;
        } }
    """
    program, graph = prepare(source, "C.m")
    assert not EquiEscapeSets(graph).analyze()


def test_global_store_escapes():
    source = """
        class Box { int v; }
        class C {
            static Box g;
            static void m() { g = new Box(); }
        }
    """
    program, graph = prepare(source, "C.m")
    assert not EquiEscapeSets(graph).analyze()


def test_call_argument_escapes():
    source = """
        class Box { int v; }
        class C {
            static native void sink(Box b);
            static void m() { sink(new Box()); }
        }
    """
    program, graph = prepare(source, "C.m",
                             natives={"C.sink": lambda i, a: None})
    assert not EquiEscapeSets(graph).analyze()


def test_equi_escape_transitivity_through_stores():
    # inner is stored into outer; outer escapes -> inner escapes too.
    source = """
        class Box { Object o; }
        class C {
            static Box g;
            static void m() {
                Box inner = new Box();
                Box outer = new Box();
                outer.o = inner;
                g = outer;
            }
        }
    """
    program, graph = prepare(source, "C.m")
    assert not EquiEscapeSets(graph).analyze()


def test_store_into_non_escaping_object_is_fine():
    source = """
        class Box { Object o; }
        class C {
            static int m() {
                Box inner = new Box();
                Box outer = new Box();
                outer.o = inner;
                if (outer.o == inner) { return 1; }
                return 0;
            }
        }
    """
    program, graph = prepare(source, "C.m")
    assert len(EquiEscapeSets(graph).analyze()) == 2


def test_all_or_nothing_the_key_difference_from_pea():
    """The paper's motivating case: one escaping branch poisons the
    whole allocation for flow-insensitive EA, while PEA still wins."""
    source = """
        class Box { int v; }
        class C {
            static Box g;
            static int m(int a) {
                Box b = new Box();
                b.v = a;
                if (a == 123456) { g = b; }
                return b.v;
            }
        }
    """
    # Baseline: nothing approved, graph untouched.
    program, graph = prepare(source, "C.m")
    phase = EquiEscapePhase(program)
    phase.run(graph)
    assert count(graph, N.NewInstanceNode) == 1
    assert phase.last_result.virtualized_allocations == 0

    # PEA: allocation virtualized; materialization only on the rare
    # branch.
    program2, graph2 = prepare(source, "C.m")
    pea = PartialEscapePhase(program2, 1)
    pea.run(graph2)
    assert pea.last_result.virtualized_allocations == 1


def test_synchronized_use_does_not_escape():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            synchronized (b) { b.v = a; }
            return b.v;
        } }
    """
    program, graph = prepare(source, "C.m")
    assert len(EquiEscapeSets(graph).analyze()) == 1
    EquiEscapePhase(program).run(graph)
    assert count(graph, N.MonitorEnterNode) == 0


def test_frame_state_reference_does_not_escape():
    # Kotzmann's insight: deopt metadata alone doesn't force escape.
    source = """
        class Box { int v; }
        class C {
            static int sink;
            static int m(int a) {
                Box b = new Box();
                b.v = a;
                sink = a;
                return b.v;
            }
        }
    """
    program, graph = prepare(source, "C.m")
    assert len(EquiEscapeSets(graph).analyze()) == 1


def test_baseline_result_semantics():
    from pea_helpers import execute
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            b.v = a * 2;
            synchronized (b) { b.v = b.v + 1; }
            return b.v;
        } }
    """
    program, graph = prepare(source, "C.m")
    EquiEscapePhase(program).run(graph)
    CanonicalizerPhase().run(graph)
    result, heap, __ = execute(program, graph, [10])
    assert result == 21
    assert heap.allocations == 0
    assert heap.monitor_enters == 0


def test_phi_merged_allocations():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = null;
            if (a > 0) { b = new Box(); } else { b = new Box(); }
            b.v = a;
            return b.v;
        } }
    """
    program, graph = prepare(source, "C.m")
    approved = EquiEscapeSets(graph).analyze()
    # Both allocations are non-escaping by the set analysis...
    assert len(approved) == 2
    # ...and applying the phase keeps semantics (the phi forces
    # materialization, matching HotSpot's behavior on merged allocations).
    from pea_helpers import execute
    EquiEscapePhase(program).run(graph)
    result, __, __ = execute(program, graph, [5])
    assert result == 5
