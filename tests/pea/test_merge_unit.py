"""MergeProcessor unit tests over hand-constructed graphs and states —
the Figure 6 cases exercised directly, without the frontend."""

import pytest

from repro.bytecode import JField, Program
from repro.ir import Graph, nodes as N
from repro.pea import Effects, MergeProcessor, ObjectState, PEAState
from repro.pea.virtualization import PEATool


@pytest.fixture
def setup():
    program = Program()
    box = program.define_class("Box")
    box.add_field(JField("v", "int"))

    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    # Two branches feeding a merge.
    if_node = graph.add(N.IfNode(condition=graph.constant(1)))
    start.next = if_node
    left = graph.add(N.BeginNode())
    right = graph.add(N.BeginNode())
    if_node.true_successor = left
    if_node.false_successor = right
    end_left = graph.add(N.EndNode())
    end_right = graph.add(N.EndNode())
    left.next = end_left
    right.next = end_right
    merge = graph.add(N.MergeNode())
    merge.add_end(end_left)
    merge.add_end(end_right)
    ret = graph.add(N.ReturnNode())
    merge.next = ret

    effects = Effects(graph)
    tool = PEATool(program, effects)
    processor = MergeProcessor(tool)
    return (program, graph, merge, end_left, end_right, effects, tool,
            processor)


def make_virtual(graph, tool, state, value):
    virtual = N.VirtualInstanceNode("Box", ["v"])
    tool.effects.track_created(virtual)
    state.add_object(ObjectState(virtual, [graph.constant(value)]))
    return virtual


def test_identical_virtual_states_merge_without_effects(setup):
    program, graph, merge, el, er, effects, tool, processor = setup
    virtual = N.VirtualInstanceNode("Box", ["v"])
    left_state, right_state = PEAState(), PEAState()
    shared_value = graph.constant(5)
    left_state.add_object(ObjectState(virtual, [shared_value]))
    right_state.add_object(ObjectState(virtual, [shared_value]))
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    assert virtual in merged.object_states
    assert merged.get_state(virtual).is_virtual
    assert merged.get_state(virtual).entries[0] is shared_value


def test_differing_entries_create_phi(setup):
    program, graph, merge, el, er, effects, tool, processor = setup
    virtual = N.VirtualInstanceNode("Box", ["v"])
    left_state, right_state = PEAState(), PEAState()
    left_state.add_object(ObjectState(virtual, [graph.constant(1)]))
    right_state.add_object(ObjectState(virtual, [graph.constant(2)]))
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    entry = merged.get_state(virtual).entries[0]
    assert isinstance(entry, N.PhiNode)
    # Give the phi a consumer (in real pipelines a later load/state
    # references it; unused phis are correctly swept).
    ret = merge.next
    ret.value = entry
    effects.apply()
    assert entry.graph is graph
    assert entry.merge is merge
    assert [v.value for v in entry.values] == [1, 2]


def test_mixed_escape_materializes_virtual_side(setup):
    program, graph, merge, el, er, effects, tool, processor = setup
    virtual = N.VirtualInstanceNode("Box", ["v"])
    left_state, right_state = PEAState(), PEAState()
    left_state.add_object(ObjectState(virtual, [graph.constant(7)]))
    escaped_value = graph.add(N.NewInstanceNode("Box"))
    right_state.add_object(ObjectState(
        virtual, None, materialized_value=escaped_value))
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    assert not merged.get_state(virtual).is_virtual
    assert tool.materializations == 1
    effects.apply()
    # A New + its initializing store landed before the left End.
    assert isinstance(el.predecessor, N.StoreFieldNode)
    assert isinstance(el.predecessor.predecessor, N.NewInstanceNode)
    # Merged materialized value is a phi of the two real objects.
    assert isinstance(merged.get_state(virtual).materialized_value,
                      N.PhiNode)


def test_lock_count_mismatch_materializes_everywhere(setup):
    program, graph, merge, el, er, effects, tool, processor = setup
    virtual = N.VirtualInstanceNode("Box", ["v"])
    left_state, right_state = PEAState(), PEAState()
    left_state.add_object(ObjectState(virtual, [graph.constant(1)],
                                      lock_count=1))
    right_state.add_object(ObjectState(virtual, [graph.constant(1)],
                                       lock_count=0))
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    assert not merged.get_state(virtual).is_virtual
    assert tool.materializations == 2
    effects.apply()
    # The locked side re-enters its monitor during materialization.
    enters = list(graph.nodes_of(N.MonitorEnterNode))
    assert len(enters) == 1


def test_id_missing_on_one_side_is_dropped(setup):
    program, graph, merge, el, er, effects, tool, processor = setup
    virtual = N.VirtualInstanceNode("Box", ["v"])
    left_state, right_state = PEAState(), PEAState()
    left_state.add_object(ObjectState(virtual, [graph.constant(1)]))
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    assert virtual not in merged.object_states


def test_alias_intersection(setup):
    program, graph, merge, el, er, effects, tool, processor = setup
    virtual = N.VirtualInstanceNode("Box", ["v"])
    carrier = graph.constant("carrier")
    other = graph.constant("other")
    left_state, right_state = PEAState(), PEAState()
    for state in (left_state, right_state):
        state.add_object(ObjectState(virtual, [graph.constant(0)]))
    left_state.add_alias(carrier, virtual)
    right_state.add_alias(carrier, virtual)
    left_state.add_alias(other, virtual)  # one side only: dropped
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    assert merged.get_alias(carrier) is virtual
    assert merged.get_alias(other) is None


def test_existing_phi_aliasing_same_id(setup):
    # Figure 6 (c): a builder phi whose inputs both alias the same Id.
    program, graph, merge, el, er, effects, tool, processor = setup
    virtual = N.VirtualInstanceNode("Box", ["v"])
    new_node = graph.add(N.NewInstanceNode("Box"))
    phi = graph.add(N.PhiNode(merge=merge))
    phi.values.extend([new_node, new_node])
    left_state, right_state = PEAState(), PEAState()
    for state in (left_state, right_state):
        state.add_object(ObjectState(virtual, [graph.constant(0)]))
        state.add_alias(new_node, virtual)
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    assert merged.get_alias(phi) is virtual
    assert merged.get_state(virtual).is_virtual
