"""Property-based tests for PEA state merging (Figure 6).

The merge operator is a lattice join over per-object states; three
algebraic properties must hold for *any* pair of predecessor states:

- **idempotence** — merging a state with itself changes nothing: every
  object keeps its virtuality, entries and lock count;
- **commutativity** — predecessor order cannot affect *what* survives
  the merge (which objects, virtual or materialized, which aliases);
  only phi input order may differ;
- **materialized-wins** — virtual ⊔ materialized = materialized: one
  escaped predecessor forces the merged object to be materialized,
  regardless of order.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.bytecode import JField, Program
from repro.ir import Graph, nodes as N
from repro.pea import Effects, MergeProcessor, ObjectState, PEAState
from repro.pea.virtualization import PEATool

from fuzz_seed import hypothesis_seed

_SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


def build_setup():
    """Fresh program + diamond graph + merge machinery (a plain
    function, not a fixture, so hypothesis can call it per example)."""
    program = Program()
    box = program.define_class("Box")
    box.add_field(JField("v", "int"))
    box.add_field(JField("w", "int"))

    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    if_node = graph.add(N.IfNode(condition=graph.constant(1)))
    start.next = if_node
    left = graph.add(N.BeginNode())
    right = graph.add(N.BeginNode())
    if_node.true_successor = left
    if_node.false_successor = right
    end_left = graph.add(N.EndNode())
    end_right = graph.add(N.EndNode())
    left.next = end_left
    right.next = end_right
    merge = graph.add(N.MergeNode())
    merge.add_end(end_left)
    merge.add_end(end_right)
    ret = graph.add(N.ReturnNode())
    merge.next = ret

    effects = Effects(graph)
    tool = PEATool(program, effects)
    return graph, merge, end_left, end_right, MergeProcessor(tool), tool


def draw_spec(draw):
    """A symbolic description of one merge input pair: per object, the
    left/right status and field values."""
    object_count = draw(st.integers(min_value=1, max_value=3))
    spec = []
    for _ in range(object_count):
        status = draw(st.sampled_from(
            ["both-same", "both-diff", "left-materialized",
             "right-materialized", "both-materialized", "left-only"]))
        spec.append({
            "status": status,
            "left_values": [draw(st.integers(-8, 8)) for _ in range(2)],
            "right_values": [draw(st.integers(-8, 8)) for _ in range(2)],
            "lock_count": draw(st.integers(0, 1)),
            "alias": draw(st.booleans()),
        })
    return spec


def build_states(graph, spec):
    """Materialize the symbolic spec into two fresh PEAStates sharing
    node identities (virtuals, constants, carriers)."""
    left_state, right_state = PEAState(), PEAState()
    objects = []
    for index, entry in enumerate(spec):
        virtual = N.VirtualInstanceNode("Box", ["v", "w"])
        graph.add(virtual)
        carrier = graph.add(N.ParameterNode(index))
        objects.append((virtual, carrier, entry))
        status = entry["status"]
        left_values = [graph.constant(v) for v in entry["left_values"]]
        right_values = [graph.constant(v)
                        for v in (entry["left_values"]
                                  if status == "both-same"
                                  else entry["right_values"])]
        lock = entry["lock_count"]
        if status == "left-materialized":
            left_obj = ObjectState(
                virtual, None,
                materialized_value=graph.add(N.NewInstanceNode("Box")))
            right_obj = ObjectState(virtual, right_values,
                                    lock_count=lock)
        elif status == "right-materialized":
            left_obj = ObjectState(virtual, left_values,
                                   lock_count=lock)
            right_obj = ObjectState(
                virtual, None,
                materialized_value=graph.add(N.NewInstanceNode("Box")))
        elif status == "both-materialized":
            left_obj = ObjectState(
                virtual, None,
                materialized_value=graph.add(N.NewInstanceNode("Box")))
            right_obj = ObjectState(
                virtual, None,
                materialized_value=graph.add(N.NewInstanceNode("Box")))
        elif status == "left-only":
            left_obj = ObjectState(virtual, left_values,
                                   lock_count=lock)
            right_obj = None
        else:
            left_obj = ObjectState(virtual, left_values,
                                   lock_count=lock)
            right_obj = ObjectState(virtual, right_values,
                                    lock_count=lock)
        left_state.add_object(left_obj)
        if right_obj is not None:
            right_state.add_object(right_obj)
            if entry["alias"]:
                left_state.add_alias(carrier, virtual)
                right_state.add_alias(carrier, virtual)
    return left_state, right_state, objects


def entry_summary(value):
    """Order-insensitive summary of one merged field entry."""
    if isinstance(value, N.PhiNode):
        return ("phi", tuple(sorted(
            getattr(v, "value", repr(v)) for v in value.values)))
    if isinstance(value, N.ConstantNode):
        return ("const", value.value)
    return ("node", type(value).__name__)


def merged_summary(merged, objects):
    """What the merge decided, per object, independent of predecessor
    order: presence, virtuality, entry summaries, lock, alias."""
    summary = {}
    for index, (virtual, carrier, _spec) in enumerate(objects):
        state = merged.object_states.get(virtual)
        if state is None:
            summary[index] = None
        elif state.is_virtual:
            summary[index] = ("virtual",
                              tuple(entry_summary(e)
                                    for e in state.entries),
                              state.lock_count,
                              merged.get_alias(carrier) is virtual)
        else:
            summary[index] = ("materialized",
                              merged.get_alias(carrier) is virtual)
    return summary


@hypothesis_seed
@_SETTINGS
@given(data=st.data())
def test_merge_idempotent(data):
    """state ⊔ state = state (up to node identity)."""
    graph, merge, el, er, processor, tool = build_setup()
    spec = draw_spec(data.draw)
    for entry in spec:  # self-merge: both sides identical by design
        entry["status"] = "both-same"
    left_state, right_state, objects = build_states(graph, spec)
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    assert tool.materializations == 0
    for virtual, carrier, entry in objects:
        state = merged.get_state(virtual)
        assert state is not None and state.is_virtual
        assert [e.value for e in state.entries] == entry["left_values"]
        assert state.lock_count == entry["lock_count"]
        if entry["alias"]:
            assert merged.get_alias(carrier) is virtual


@hypothesis_seed
@_SETTINGS
@given(data=st.data())
def test_merge_commutative(data):
    """Swapping predecessor order never changes which objects survive,
    their virtuality, their (order-normalized) entries or aliases."""
    graph, merge, el, er, processor, tool = build_setup()
    spec = draw_spec(data.draw)
    left_a, right_a, objects_a = build_states(graph, spec)
    forward = processor.merge(merge, [left_a, right_a], [el, er])
    forward_summary = merged_summary(forward, objects_a)

    graph2, merge2, el2, er2, processor2, tool2 = build_setup()
    left_b, right_b, objects_b = build_states(graph2, spec)
    backward = processor2.merge(merge2, [right_b, left_b], [el2, er2])
    backward_summary = merged_summary(backward, objects_b)

    assert forward_summary == backward_summary
    assert tool.materializations == tool2.materializations


@hypothesis_seed
@_SETTINGS
@given(data=st.data(),
       materialized_side=st.sampled_from(["left-materialized",
                                          "right-materialized"]))
def test_materialized_wins(data, materialized_side):
    """virtual ⊔ materialized = materialized (the lattice absorbs
    escapes), whichever side escaped."""
    graph, merge, el, er, processor, tool = build_setup()
    spec = draw_spec(data.draw)
    spec[0]["status"] = materialized_side
    left_state, right_state, objects = build_states(graph, spec)
    merged = processor.merge(merge, [left_state, right_state], [el, er])
    virtual = objects[0][0]
    state = merged.get_state(virtual)
    assert state is not None
    assert not state.is_virtual
    # The virtual side had to be materialized on its incoming branch.
    assert tool.materializations >= 1
