"""Graph-level invariants that must hold after Partial Escape Analysis,
checked across a corpus of shapes (DESIGN.md "Key invariants" #6)."""

import pytest

from repro.ir import nodes as N

from pea_helpers import optimize

CORPUS = {
    "straight": """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box(); b.v = a; return b.v;
        } }
    """,
    "partial": """
        class Box { int v; }
        class C {
            static Box g;
            static int m(int a) {
                Box b = new Box(); b.v = a;
                if (a > 0) { g = b; }
                return a;
            }
        }
    """,
    "loop": """
        class Box { int v; }
        class C {
            static Box g;
            static int m(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) {
                    Box b = new Box(); b.v = i;
                    s = s + b.v;
                    if (i == 123456) { g = b; }
                }
                return s;
            }
        }
    """,
    "nested": """
        class Inner { int v; }
        class Outer { Inner inner; }
        class C {
            static Outer g;
            static int m(int a) {
                Inner i = new Inner(); i.v = a;
                Outer o = new Outer(); o.inner = i;
                if (a > 100) { g = o; }
                return o.inner.v;
            }
        }
    """,
    "locked": """
        class Box { int v; }
        class C {
            static int sink;
            static int m(int a) {
                Box b = new Box();
                synchronized (b) { sink = a; b.v = a; }
                return b.v;
            }
        }
    """,
}


@pytest.fixture(params=sorted(CORPUS))
def optimized(request):
    return optimize(CORPUS[request.param], "C.m")


def test_virtual_objects_only_in_state_contexts(optimized):
    """VirtualObjectNodes may only be referenced by frame states and
    escape-object snapshots — never by executable nodes."""
    __, graph, __ = optimized
    for node in graph.nodes_of(N.VirtualObjectNode):
        for user in node.usages:
            assert isinstance(user, (N.FrameStateNode,
                                     N.EscapeObjectStateNode)), (
                node, user)


def test_escape_states_hang_off_frame_states(optimized):
    __, graph, __ = optimized
    for node in graph.nodes_of(N.EscapeObjectStateNode):
        assert node.virtual_object is not None
        assert len(node.entries) == node.virtual_object.entry_count
        for user in node.usages:
            assert isinstance(user, N.FrameStateNode)


def test_every_mapping_covers_its_nested_virtuals(optimized):
    """If a frame state references a virtual object, its chain must also
    carry mappings for every virtual object reachable from it."""
    __, graph, __ = optimized
    for state in graph.nodes_of(N.FrameStateNode):
        referenced = [v for v in state.locals_values
                      if isinstance(v, N.VirtualObjectNode)]
        referenced += [v for v in state.stack_values
                       if isinstance(v, N.VirtualObjectNode)]
        worklist = list(referenced)
        seen = set()
        while worklist:
            virtual = worklist.pop()
            if virtual in seen:
                continue
            seen.add(virtual)
            mapping = state.find_mapping(virtual)
            assert mapping is not None, (state, virtual)
            for entry in mapping.entries:
                if isinstance(entry, N.VirtualObjectNode):
                    worklist.append(entry)


def test_no_dangling_guard_states(optimized):
    __, graph, __ = optimized
    for guard in graph.nodes_of(N.FixedGuardNode):
        assert guard.state is not None
        assert guard.state.graph is graph
    for deopt in graph.nodes_of(N.DeoptimizeNode):
        assert deopt.state is not None


def test_monitor_nodes_reference_real_objects(optimized):
    """Any surviving monitor node's object must be executable (not a
    virtual Id)."""
    __, graph, __ = optimized
    for node in list(graph.nodes_of(N.MonitorEnterNode)) + \
            list(graph.nodes_of(N.MonitorExitNode)):
        assert not isinstance(node.object, N.VirtualObjectNode)
        assert node.object is not None
