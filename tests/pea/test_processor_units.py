"""Processor-level behaviors not covered by the end-to-end tests."""

import pytest

from repro.ir import nodes as N

from pea_helpers import execute, optimize, reference


def count(graph, node_type):
    return len(list(graph.nodes_of(node_type)))


def test_loop_convergence_is_bounded():
    """A pathological nest must converge well under the retry cap."""
    source = """
        class Box { int v; }
        class C {
            static Box g;
            static int m(int n) {
                Box a = new Box();
                Box b = new Box();
                int s = 0;
                for (int i = 0; i < n; i = i + 1) {
                    for (int j = 0; j < 3; j = j + 1) {
                        a.v = a.v + b.v + j;
                        if (i + j == 1000000) { g = a; }
                        Box t = a;
                        a = b;
                        b = t;
                    }
                    s = s + a.v;
                }
                return s;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    got = execute(program, graph, [6])[0]
    want, __ = reference(source, "C.m", [6])
    assert got == want


def test_state_copies_isolate_branches():
    """Writes on one branch must not leak into the sibling's state."""
    source = """
        class Box { int v; }
        class C { static int m(int k) {
            Box b = new Box();
            b.v = 1;
            if (k > 0) { b.v = 100; } else { }
            // On the else path b.v must still be 1.
            return b.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert execute(program, graph, [5])[0] == 100
    assert execute(program, graph, [-5])[0] == 1
    assert count(graph, N.NewInstanceNode) == 0


def test_if_both_successors_same_merge():
    source = """
        class Box { int v; }
        class C { static int m(int k) {
            Box b = new Box();
            if (k > 0) { } else { }
            b.v = k;
            return b.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [9])[0] == 9


def test_deeply_nested_branching_states():
    source = """
        class Box { int v; }
        class C {
            static Box g;
            static int m(int k) {
                Box b = new Box();
                if (k > 8) {
                    if (k > 16) {
                        if (k > 32) { g = b; b.v = 3; }
                        else { b.v = 2; }
                    } else { b.v = 1; }
                } else { b.v = 0; }
                return b.v;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    for k, expected in ((40, 3), (20, 2), (10, 1), (1, 0)):
        assert execute(program, graph, [k])[0] == expected, k
    ref_allocs = reference(source, "C.m", [1])[1].allocations
    __, heap, __ = execute(program, graph, [1])
    assert heap.allocations <= ref_allocs


def test_escape_through_array_of_objects():
    source = """
        class Box { int v; }
        class C {
            static Object[] keep;
            static int m(int k) {
                Box b = new Box();
                b.v = k;
                int result = b.v;       // last read before the branch
                Object[] slots = new Object[2];
                if (k > 0) {
                    slots[0] = b;
                    keep = slots;       // the array escapes with b in it
                }
                return result;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    assert execute(program, graph, [7])[0] == 7
    ref7 = reference(source, "C.m", [7])
    assert ref7[0] == 7
    # Escaping path really stores the object.
    program2, graph2, __ = optimize(source, "C.m")
    execute(program2, graph2, [7])
    kept = program2.get_static("C", "keep")
    assert kept is not None and kept.elements[0].fields["v"] == 7
    # Clean path allocates nothing.
    program3, graph3, __ = optimize(source, "C.m")
    __, heap, __ = execute(program3, graph3, [-7])
    assert heap.allocations == 0


def test_invoke_state_before_rewritten_for_tracked_receiver():
    """state_before of a virtual invoke referencing a tracked (escaped)
    object must be rewritten to the materialized value."""
    source = """
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class C {
            static A g;
            static int m(int k) {
                A a = new A();
                g = a;                 // escapes: materialized
                return a.f();          // polymorphic per CHA: stays an
                                       // invoke with a state_before
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    invokes = list(graph.nodes_of(N.InvokeNode))
    assert len(invokes) == 1
    state = invokes[0].state_before
    assert state is not None
    values = list(state.stack_values) + list(state.locals_values)
    # No reference to a deleted New: the materialized node is live.
    for value in values:
        if value is not None:
            assert value.graph is graph
    assert execute(program, graph, [0])[0] == 1


def test_merge_of_three_plus_predecessors():
    source = """
        class Box { int v; }
        class C { static int m(int k) {
            Box b = new Box();
            if (k == 0) { b.v = 10; }
            else { if (k == 1) { b.v = 20; } else {
                if (k == 2) { b.v = 30; } else { b.v = 40; } } }
            return b.v + k;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    for k, expected in ((0, 10), (1, 21), (2, 32), (3, 43)):
        assert execute(program, graph, [k])[0] == expected
