"""PEAState / ObjectState unit behavior (paper Listing 7)."""

import pytest

from repro.ir import Graph, nodes as N
from repro.pea import Effects, ObjectState, PEAState
from repro.pea.materialize import ensure_materialized
from repro.bytecode import JField, Program


def make_vo(graph, class_name="Box", fields=("v",)):
    vo = N.VirtualInstanceNode(class_name, list(fields))
    return vo


def test_object_state_virtual_to_escaped():
    graph = Graph()
    vo = make_vo(graph)
    state = ObjectState(vo, [graph.constant(0)])
    assert state.is_virtual
    materialized = graph.add(N.NewInstanceNode("Box"))
    state.escape(materialized)
    assert not state.is_virtual
    assert state.materialized_value is materialized
    assert state.entries is None


def test_state_copy_is_deep_for_object_states():
    graph = Graph()
    vo = make_vo(graph)
    state = PEAState()
    state.add_object(ObjectState(vo, [graph.constant(0)]))
    copy_state = state.copy()
    copy_state.get_state(vo).entries[0] = graph.constant(9)
    assert state.get_state(vo).entries[0].value == 0


def test_aliases_resolution():
    graph = Graph()
    vo = make_vo(graph)
    state = PEAState()
    state.add_object(ObjectState(vo, [graph.constant(0)]))
    load = graph.add(N.LoadStaticNode.__mro__[0].__new__(
        N.LoadStaticNode)) if False else graph.constant(7)
    state.add_alias(load, vo)
    assert state.get_alias(load) is vo
    assert state.get_alias(vo) is vo  # VirtualObjectNode maps to itself
    assert state.get_alias(graph.constant(5)) is None


def test_untracked_virtual_object_node_not_aliased():
    graph = Graph()
    vo = make_vo(graph)
    state = PEAState()
    # vo not registered in object_states -> unknown
    assert state.get_alias(vo) is None


def test_equivalence():
    graph = Graph()
    vo = make_vo(graph)
    a = PEAState()
    a.add_object(ObjectState(vo, [graph.constant(0)], lock_count=1))
    b = a.copy()
    assert a.equivalent(b)
    b.get_state(vo).lock_count = 2
    assert not a.equivalent(b)
    c = a.copy()
    c.get_state(vo).entries[0] = graph.constant(1)
    assert not a.equivalent(c)


class TestMaterialize:
    def setup_method(self):
        self.program = Program()
        box = self.program.define_class("Box")
        box.add_field(JField("v", "int"))
        box.add_field(JField("o", "Object"))

    def build_graph_skeleton(self):
        graph = Graph()
        start = graph.add(N.StartNode())
        graph.start = start
        ret = graph.add(N.ReturnNode())
        start.next = ret
        return graph, ret

    def test_materialization_inserts_new_and_stores(self):
        graph, anchor = self.build_graph_skeleton()
        effects = Effects(graph)
        vo = N.VirtualInstanceNode("Box", ["v", "o"])
        state = PEAState()
        state.add_object(ObjectState(
            vo, [graph.constant(42), graph.null]))
        value = ensure_materialized(self.program, state, vo, anchor,
                                    effects)
        assert isinstance(value, N.NewInstanceNode)
        assert not state.get_state(vo).is_virtual
        effects.apply()
        # New + one store (null default store skipped).
        news = list(graph.nodes_of(N.NewInstanceNode))
        stores = list(graph.nodes_of(N.StoreFieldNode))
        assert len(news) == 1 and len(stores) == 1
        assert stores[0].value.value == 42

    def test_default_values_skip_stores(self):
        graph, anchor = self.build_graph_skeleton()
        effects = Effects(graph)
        vo = N.VirtualInstanceNode("Box", ["v", "o"])
        state = PEAState()
        state.add_object(ObjectState(vo, [graph.constant(0), graph.null]))
        ensure_materialized(self.program, state, vo, anchor, effects)
        effects.apply()
        assert not list(graph.nodes_of(N.StoreFieldNode))

    def test_lock_count_emits_monitor_enters(self):
        graph, anchor = self.build_graph_skeleton()
        effects = Effects(graph)
        vo = N.VirtualInstanceNode("Box", ["v", "o"])
        state = PEAState()
        state.add_object(ObjectState(
            vo, [graph.constant(0), graph.null], lock_count=2))
        ensure_materialized(self.program, state, vo, anchor, effects)
        effects.apply()
        enters = list(graph.nodes_of(N.MonitorEnterNode))
        assert len(enters) == 2

    def test_cyclic_virtual_objects_terminate(self):
        graph, anchor = self.build_graph_skeleton()
        effects = Effects(graph)
        vo_a = N.VirtualInstanceNode("Box", ["v", "o"])
        vo_b = N.VirtualInstanceNode("Box", ["v", "o"])
        state = PEAState()
        state.add_object(ObjectState(vo_a, [graph.constant(1), vo_b]))
        state.add_object(ObjectState(vo_b, [graph.constant(2), vo_a]))
        value = ensure_materialized(self.program, state, vo_a, anchor,
                                    effects)
        effects.apply()
        news = list(graph.nodes_of(N.NewInstanceNode))
        assert len(news) == 2
        stores = list(graph.nodes_of(N.StoreFieldNode))
        # v=1, v=2, and two cross-links.
        assert len(stores) == 4

    def test_idempotent_when_already_escaped(self):
        graph, anchor = self.build_graph_skeleton()
        effects = Effects(graph)
        vo = N.VirtualInstanceNode("Box", ["v", "o"])
        state = PEAState()
        state.add_object(ObjectState(vo, [graph.constant(5), graph.null]))
        first = ensure_materialized(self.program, state, vo, anchor,
                                    effects)
        second = ensure_materialized(self.program, state, vo, anchor,
                                     effects)
        assert first is second


class TestEffects:
    def test_rollback_discards_and_disconnects(self):
        graph = Graph()
        start = graph.add(N.StartNode())
        graph.start = start
        ret = graph.add(N.ReturnNode())
        start.next = ret
        live = graph.constant(1)
        effects = Effects(graph)
        mark = effects.mark()
        detached = N.NegNode(value=live)
        effects.track_created(detached)
        effects.replace_at_usages(live, graph.constant(2))
        assert live.usage_count() == 1  # the detached NegNode
        effects.rollback(mark)
        assert live.usage_count() == 0
        assert len(effects) == 0

    def test_apply_runs_in_order_then_deletes(self):
        graph = Graph()
        start = graph.add(N.StartNode())
        graph.start = start
        from repro.bytecode import FieldRef
        load = graph.add(N.LoadStaticNode(FieldRef("C", "f")))
        ret = graph.add(N.ReturnNode(value=load))
        start.next = load
        load.next = ret
        effects = Effects(graph)
        replacement = graph.constant(9)
        effects.replace_at_usages(load, replacement)
        effects.delete_fixed(load)
        effects.apply()
        assert ret.value is replacement
        assert load.graph is None
        assert start.next is ret
