"""Figure 7 / Section 5.4: iterative loop processing."""

import pytest

from repro.ir import nodes as N

from pea_helpers import execute, optimize, reference


def count(graph, node_type):
    return len(list(graph.nodes_of(node_type)))


def test_allocation_inside_loop_virtualized():
    # A per-iteration temporary: the classic PEA win.
    source = """
        class Pair { int a; int b; }
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                Pair p = new Pair();
                p.a = i;
                p.b = i * 2;
                s = s + p.a + p.b;
            }
            return s;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    result, heap, __ = execute(program, graph, [10])
    assert result == sum(i + i * 2 for i in range(10))
    assert heap.allocations == 0


def test_object_allocated_before_loop_stays_virtual():
    # Loop-carried via the builder's loop phi (Fig 6 (c) speculative
    # aliasing); the field is loop-variant -> entry phi.
    source = """
        class Acc { int total; }
        class C { static int m(int n) {
            Acc acc = new Acc();
            for (int i = 0; i < n; i = i + 1) {
                acc.total = acc.total + i;
            }
            return acc.total;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    result, heap, __ = execute(program, graph, [10])
    assert result == 45
    assert heap.allocations == 0


def test_escape_inside_loop_materializes_before_loop():
    source = """
        class Box { int v; }
        class C {
            static Box global;
            static int m(int n) {
                Box b = new Box();
                for (int i = 0; i < n; i = i + 1) {
                    b.v = b.v + 1;
                    global = b;
                }
                return b.v;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 1
    result, heap, __ = execute(program, graph, [5])
    assert result == 5
    assert heap.allocations == 1


def test_two_back_edges_like_figure7():
    source = """
        class Acc { int total; }
        class C { static int m(int n) {
            Acc acc = new Acc();
            int i = 0;
            while (i < n) {
                i = i + 1;
                if (i % 3 == 0) { continue; }
                acc.total = acc.total + i;
            }
            return acc.total;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    expected = sum(i for i in range(1, 11) if i % 3 != 0)
    assert execute(program, graph, [10])[0] == expected


def test_fresh_object_per_iteration_crossing_backedge_materializes():
    # The object created in iteration i is read in iteration i+1 through
    # a loop phi: it cannot stay virtual across the back edge with a
    # different Id per iteration.
    source = """
        class Box { int v; }
        class C { static int m(int n) {
            Box prev = new Box();
            for (int i = 0; i < n; i = i + 1) {
                Box cur = new Box();
                cur.v = prev.v + 1;
                prev = cur;
            }
            return prev.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    result, heap, __ = execute(program, graph, [6])
    assert result == 6
    ref_result, ref_heap = reference(source, "C.m", [6])
    assert result == ref_result
    assert heap.allocations <= ref_heap.allocations


def test_nested_loops_with_temporaries():
    source = """
        class Vec { int x; int y; }
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < i; j = j + 1) {
                    Vec v = new Vec();
                    v.x = i;
                    v.y = j;
                    s = s + v.x * v.y;
                }
            }
            return s;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    result, heap, __ = execute(program, graph, [8])
    assert result == sum(i * j for i in range(8) for j in range(i))
    assert heap.allocations == 0


def test_loop_variant_virtual_field_gets_phi():
    source = """
        class Box { int v; }
        class C { static int m(int n) {
            Box b = new Box();
            b.v = 1;
            for (int i = 0; i < n; i = i + 1) {
                b.v = b.v * 2;
            }
            return b.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [5])[0] == 32


def test_conditional_escape_in_rare_loop_path():
    source = """
        class Box { int v; }
        class C {
            static Box global;
            static int m(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) {
                    Box b = new Box();
                    b.v = i;
                    if (i == 500000) { global = b; }
                    s = s + b.v;
                }
                return s;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    result, heap, __ = execute(program, graph, [100])
    assert result == sum(range(100))
    # Without branch profiling, the escaping and non-escaping paths
    # rejoin while the object is still used, so the MergeProcessor
    # materializes on the clean path too (Section 5.3): no *more*
    # allocations than the original, but no fewer either.  The win for
    # rare branches comes from speculation turning the rare branch into
    # a deopt (no merge) — covered by the JIT-level tests.
    assert heap.allocations == 100


def test_monitor_inside_loop_on_virtual_object():
    source = """
        class Box { int v; }
        class C { static int m(int n) {
            Box b = new Box();
            for (int i = 0; i < n; i = i + 1) {
                synchronized (b) { b.v = b.v + i; }
            }
            return b.v;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.MonitorEnterNode) == 0
    result, heap, __ = execute(program, graph, [10])
    assert result == 45
    assert heap.monitor_enters == 0


def test_loop_exit_uses_virtual_state():
    source = """
        class Pair { int a; int b; }
        class C { static int m(int n) {
            Pair p = new Pair();
            int i = 0;
            while (i < n) {
                p.a = i;
                i = i + 1;
            }
            p.b = p.a * 10;
            return p.a + p.b;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [4])[0] == 3 + 30


def test_deeply_nested_loop_convergence():
    source = """
        class Acc { int t; }
        class C { static int m(int n) {
            Acc a = new Acc();
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < 3; j = j + 1) {
                    for (int k = 0; k < 2; k = k + 1) {
                        a.t = a.t + 1;
                    }
                }
            }
            return a.t;
        } }
    """
    program, graph, __ = optimize(source, "C.m")
    assert count(graph, N.NewInstanceNode) == 0
    assert execute(program, graph, [4])[0] == 24


def test_differential_with_reference_semantics():
    source = """
        class Box { int v; }
        class C {
            static Box keep;
            static int m(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) {
                    Box b = new Box();
                    b.v = i * i;
                    if (i % 7 == 3) { keep = b; }
                    if (keep != null) { s = s + keep.v; }
                    s = s + b.v;
                }
                return s;
            }
        }
    """
    for n in (0, 1, 5, 20):
        program, graph, __ = optimize(source, "C.m")
        got = execute(program, graph, [n])[0]
        want, __ = reference(source, "C.m", [n])
        assert got == want, n


def test_loop_invariant_virtual_reached_by_phi_materialization():
    # The per-iteration Box crosses the back edge through a loop phi, so
    # it materializes inside the loop — one allocation per trip, same as
    # the interpreter.  But it holds a reference to the *loop-invariant*
    # `head`: the recursive materialization of the phi input must not
    # re-allocate a fresh copy of head every iteration.  head has to
    # materialize once, at the loop entry, and every iteration's `link`
    # must point at that same object.
    source = """
        class Box { int v; Box link; }
        class C { static int m(int n) {
            Box head = new Box();
            head.v = 17;
            Box cur = new Box();
            for (int i = 0; i < n; i = i + 1) {
                cur = new Box();
                cur.v = i;
                cur.link = head;
            }
            if (cur.link == head) { return cur.v + head.v + 1000; }
            return cur.v + head.v;
        } }
    """
    for n in (0, 1, 5):
        program, graph, __ = optimize(source, "C.m")
        result, heap, __ = execute(program, graph, [n])
        want, ref_heap = reference(source, "C.m", [n])
        assert result == want, n
        assert heap.allocations <= ref_heap.allocations, n
