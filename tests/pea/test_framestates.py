"""Section 5.5 / Figure 8: frame-state rewriting for deoptimization."""

import pytest

from repro.ir import nodes as N

from pea_helpers import execute, optimize


def test_listing8_store_state_references_virtual_object():
    """Figure 8 (b): after PEA, the store's frame state references the
    virtual object's Id, and a snapshot of the VirtualState is attached."""
    source = """
        class IntBox {
            int value;
            IntBox(int value) { this.value = value; }
        }
        class C {
            static Object global;
            static int foo(int x) {
                IntBox i = new IntBox(x);
                global = null;
                return i.value;
            }
        }
    """
    program, graph, __ = optimize(source, "C.foo")
    # The allocation and the constructor store are gone...
    assert not list(graph.nodes_of(N.NewInstanceNode))
    # ...but the store to the global remains, with a rewritten state.
    stores = list(graph.nodes_of(N.StoreStaticNode))
    assert len(stores) == 1
    state = stores[0].state_after
    virtual_refs = [v for v in state.locals_values
                    if isinstance(v, N.VirtualObjectNode)]
    assert virtual_refs, "state must reference the virtual object Id"
    mapping = state.find_mapping(virtual_refs[0])
    assert mapping is not None
    assert len(mapping.entries) == 1  # the 'value' field snapshot


def test_mapping_snapshot_is_positional():
    """Two stores at different positions snapshot different field
    values."""
    source = """
        class Box { int v; }
        class C {
            static int sink;
            static int m(int x) {
                Box b = new Box();
                b.v = x;
                sink = 1;
                b.v = x * 2;
                sink = 2;
                return b.v;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    stores = [s for s in graph.nodes_of(N.StoreStaticNode)]
    assert len(stores) == 2
    mappings = []
    for store in stores:
        state = store.state_after
        virtuals = [v for v in state.locals_values
                    if isinstance(v, N.VirtualObjectNode)]
        assert virtuals
        mappings.append(state.find_mapping(virtuals[0]))
    # The two snapshots carry different entry values.
    assert mappings[0].entries[0] is not mappings[1].entries[0]


def test_nested_virtual_objects_in_state():
    source = """
        class Inner { int v; }
        class Outer { Inner inner; }
        class C {
            static int sink;
            static int m(int x) {
                Inner i = new Inner();
                i.v = x;
                Outer o = new Outer();
                o.inner = i;
                sink = 1;
                return o.inner.v;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    stores = list(graph.nodes_of(N.StoreStaticNode))
    state = stores[0].state_after
    virtuals = [v for v in state.locals_values
                if isinstance(v, N.VirtualObjectNode)]
    # Both objects are represented; the Outer mapping's entry is the
    # Inner's Id, which has its own mapping.
    outer = next(v for v in virtuals
                 if getattr(v, "class_name", "") == "Outer")
    outer_mapping = state.find_mapping(outer)
    inner_id = outer_mapping.entries[0]
    assert isinstance(inner_id, N.VirtualObjectNode)
    assert state.find_mapping(inner_id) is not None


def test_lock_count_recorded_in_mapping():
    source = """
        class Box { int v; }
        class C {
            static int sink;
            static int m(int x) {
                Box b = new Box();
                synchronized (b) {
                    sink = x;
                    b.v = x;
                }
                return b.v;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    stores = list(graph.nodes_of(N.StoreStaticNode))
    state = stores[0].state_after
    virtuals = [v for v in list(state.locals_values)
                + list(state.stack_values)
                if isinstance(v, N.VirtualObjectNode)]
    assert virtuals
    mapping = state.find_mapping(virtuals[0])
    assert mapping.lock_count == 1


def test_states_without_tracked_objects_untouched():
    source = """
        class C {
            static int sink;
            static int m(int x) {
                sink = x;
                return x;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    stores = list(graph.nodes_of(N.StoreStaticNode))
    state = stores[0].state_after
    assert not list(state.virtual_mappings)


def test_shared_outer_state_duplicated_per_site():
    """Outer states shared between sites must not get one site's
    snapshot imposed on another (copy-on-write duplication)."""
    source = """
        class Box { int v; }
        class C {
            static int sink;
            static void callee(int x) {
                Box b = new Box();
                b.v = x;
                sink = x;
                sink = x + b.v;
            }
            static int m(int x) {
                callee(x);
                return sink;
            }
        }
    """
    program, graph, __ = optimize(source, "C.m")
    stores = list(graph.nodes_of(N.StoreStaticNode))
    assert len(stores) == 2
    states = [s.state_after for s in stores]
    # Both inlined states chain out to C.m.
    for state in states:
        assert state.method.qualified_name == "C.callee"
        assert state.outer is not None
        assert state.outer.method.qualified_name == "C.m"
    assert states[0] is not states[1]
