"""The paper's running example: Listings 1-6.

Listing 1/2/3: the classic (non-escaping) variant — after inlining, full
Escape Analysis removes the allocation and the synchronization entirely.

Listing 4/5/6: the partial variant — the object escapes into a global in
the else branch; PEA sinks the allocation into that branch only.
"""

import pytest

from repro.ir import nodes as N

from pea_helpers import execute, optimize, reference

#: Listing 1 (non-escaping variant: cacheKey is NOT updated).
LISTING_1 = """
    class Key {
        int idx;
        Object ref;
        Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
        synchronized boolean equalsKey(Key other) {
            return this.idx == other.idx && this.ref == other.ref;
        }
    }
    class Main {
        static Key cacheKey;
        static Object cacheValue;
        static Object getValue(int idx, Object ref) {
            Key key = new Key(idx, ref);
            if (cacheKey != null && key.equalsKey(cacheKey)) {
                return cacheValue;
            } else {
                return createValue(idx);
            }
        }
        static native Object createValue(int idx);
    }
"""

#: Listing 4 (the partial-escape variant: key escapes on the miss path).
LISTING_4 = """
    class Key {
        int idx;
        Object ref;
        Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
        synchronized boolean equalsKey(Key other) {
            return this.idx == other.idx && this.ref == other.ref;
        }
    }
    class Main {
        static Key cacheKey;
        static Object cacheValue;
        static Object getValue(int idx, Object ref) {
            Key key = new Key(idx, ref);
            if (cacheKey != null && key.equalsKey(cacheKey)) {
                return cacheValue;
            } else {
                cacheKey = key;
                cacheValue = createValue(idx);
                return cacheValue;
            }
        }
        static native Object createValue(int idx);
    }
"""

NATIVES = {"Main.createValue": lambda interp, args: args[0] * 1000}


def count(graph, node_type):
    return len(list(graph.nodes_of(node_type)))


class TestListing123:
    """Classic EA: the Key never escapes -> Listing 3's shape."""

    def test_allocation_completely_removed(self):
        program, graph, __ = optimize(LISTING_1, "Main.getValue",
                                      natives=NATIVES)
        assert count(graph, N.NewInstanceNode) == 0

    def test_lock_elision_removes_synchronization(self):
        program, graph, result = optimize(LISTING_1, "Main.getValue",
                                          natives=NATIVES)
        assert count(graph, N.MonitorEnterNode) == 0
        assert count(graph, N.MonitorExitNode) == 0
        assert result.removed_monitor_pairs >= 1

    def test_behavior_preserved(self):
        program, graph, __ = optimize(LISTING_1, "Main.getValue",
                                      natives=NATIVES)
        result, heap, __ = execute(program, graph, [3, None])
        assert result == 3000
        assert heap.allocations == 0
        assert heap.monitor_enters == 0

    def test_hit_path_returns_cached_value(self):
        program, graph, __ = optimize(LISTING_1, "Main.getValue",
                                      natives=NATIVES)
        # Prime the cache manually (cacheKey is never set by getValue in
        # this variant).
        from repro.bytecode import Heap
        heap = Heap(program)
        key = heap.new_instance("Key")
        key.fields["idx"] = 3
        program.set_static("Main", "cacheKey", key)
        program.set_static("Main", "cacheValue", "cached")
        result, __, __ = execute(program, graph, [3, None])
        assert result == "cached"


class TestListing456:
    """Partial escape: allocation sunk into the miss branch."""

    def test_allocation_moved_not_removed(self):
        program, graph, __ = optimize(LISTING_4, "Main.getValue",
                                      natives=NATIVES)
        assert count(graph, N.NewInstanceNode) == 1

    def test_monitors_fully_elided(self):
        # The synchronized equals runs while key is still virtual.
        program, graph, __ = optimize(LISTING_4, "Main.getValue",
                                      natives=NATIVES)
        assert count(graph, N.MonitorEnterNode) == 0

    def test_materialization_dominates_escape(self):
        """The materialized allocation sits in the branch with the
        static store, preceded by the field-initializing stores."""
        program, graph, __ = optimize(LISTING_4, "Main.getValue",
                                      natives=NATIVES)
        new = next(iter(graph.nodes_of(N.NewInstanceNode)))
        # Walk forward: must hit the StoreStatic of cacheKey.
        node = new
        seen_static_store = False
        for _ in range(20):
            node = node.next
            if node is None:
                break
            if isinstance(node, N.StoreStaticNode) and \
                    node.field.field_name == "cacheKey":
                seen_static_store = True
                break
        assert seen_static_store

    def test_miss_then_hit_allocation_counts(self):
        program, graph, __ = optimize(LISTING_4, "Main.getValue",
                                      natives=NATIVES)
        __, miss_heap, __ = execute(program, graph, [3, None])
        assert miss_heap.allocations == 1  # the materialized Key
        # Statics persist: second identical call hits.
        result, hit_heap, __ = execute(program, graph, [3, None])
        assert result == 3000
        assert hit_heap.allocations == 0
        assert hit_heap.monitor_enters == 0

    def test_dynamic_allocations_never_exceed_original(self):
        for args in ([1, None], [2, None]):
            program, graph, __ = optimize(LISTING_4, "Main.getValue",
                                          natives=NATIVES)
            __, opt_heap, __ = execute(program, graph, args)
            ref_result, ref_heap = reference(LISTING_4, "Main.getValue",
                                             args, natives=NATIVES)
            assert opt_heap.allocations <= ref_heap.allocations

    def test_results_match_reference_on_both_paths(self):
        program, graph, __ = optimize(LISTING_4, "Main.getValue",
                                      natives=NATIVES)
        assert execute(program, graph, [5, None])[0] == 5000  # miss
        assert execute(program, graph, [5, None])[0] == 5000  # hit
        assert execute(program, graph, [6, None])[0] == 6000  # miss again


class TestListing2InliningShape:
    """Listing 2: inlining brings the constructor, equals and its
    synchronization into getValue."""

    def test_inlined_graph_has_monitor_before_pea(self):
        from repro.frontend import build_graph
        from repro.lang import compile_source
        from repro.opt import InliningPhase
        program = compile_source(LISTING_4, natives=NATIVES)
        graph = build_graph(program, program.method("Main.getValue"))
        InliningPhase(program).run(graph)
        assert count(graph, N.MonitorEnterNode) == 1
        assert count(graph, N.MonitorExitNode) == 1
        assert count(graph, N.InvokeNode) == 1  # only the native call
