"""Figure 4 node patterns: effects of operations on virtual objects."""

import pytest

from repro.ir import nodes as N

from pea_helpers import execute, optimize, reference


def count(graph, node_type):
    return len(list(graph.nodes_of(node_type)))


class TestFig4aAllocation:
    def test_non_escaping_allocation_removed(self):
        source = """
            class Box { int v; }
            class C { static int m(int a) {
                Box b = new Box();
                b.v = a;
                return b.v;
            } }
        """
        program, graph, result = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 0
        assert result.virtualized_allocations >= 1
        assert execute(program, graph, [42])[0] == 42

    def test_allocation_statistics(self):
        source = """
            class Box { int v; }
            class C { static int m(int a) {
                Box b = new Box();
                b.v = a;
                return b.v;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        __, heap, __ = execute(program, graph, [42])
        assert heap.allocations == 0
        assert heap.allocated_bytes == 0


class TestFig4bStoresAndLoads:
    def test_store_then_load_scalar_replaced(self):
        source = """
            class Pair { int a; int b; }
            class C { static int m(int x, int y) {
                Pair p = new Pair();
                p.a = x;
                p.b = y;
                p.a = p.a + p.b;
                return p.a * 10 + p.b;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 0
        assert count(graph, N.LoadFieldNode) == 0
        assert count(graph, N.StoreFieldNode) == 0
        assert execute(program, graph, [3, 4])[0] == 74

    def test_default_field_values_known(self):
        source = """
            class Box { int v; Object o; }
            class C { static int m() {
                Box b = new Box();
                if (b.o == null) { return b.v + 1; }
                return -1;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        # Everything folds: b.o is null, b.v is 0.
        rets = list(graph.nodes_of(N.ReturnNode))
        assert len(rets) == 1
        assert isinstance(rets[0].value, N.ConstantNode)
        assert rets[0].value.value == 1


class TestFig4cdMonitors:
    def test_monitor_pair_elided_on_virtual_object(self):
        source = """
            class Box { int v; }
            class C { static int m(int a) {
                Box b = new Box();
                synchronized (b) { b.v = a; }
                return b.v;
            } }
        """
        program, graph, result = optimize(source, "C.m")
        assert count(graph, N.MonitorEnterNode) == 0
        assert count(graph, N.MonitorExitNode) == 0
        assert result.removed_monitor_pairs == \
            pytest.approx(result.removed_monitor_pairs)
        assert result.removed_monitor_pairs >= 1
        __, heap, __ = execute(program, graph, [5])
        assert heap.monitor_enters == 0

    def test_nested_monitors_lock_count(self):
        source = """
            class Box { int v; }
            class C { static int m(int a) {
                Box b = new Box();
                synchronized (b) {
                    synchronized (b) { b.v = a; }
                }
                return b.v;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.MonitorEnterNode) == 0
        assert execute(program, graph, [5])[0] == 5


class TestFig4efVirtualInVirtual:
    def test_virtual_object_stored_into_virtual_object(self):
        source = """
            class Inner { int v; }
            class Outer { Inner inner; }
            class C { static int m(int a) {
                Inner i = new Inner();
                i.v = a;
                Outer o = new Outer();
                o.inner = i;
                return o.inner.v;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 0
        assert execute(program, graph, [9])[0] == 9

    def test_deep_nesting(self):
        source = """
            class Node { Node next; int v; }
            class C { static int m(int a) {
                Node n1 = new Node();
                Node n2 = new Node();
                Node n3 = new Node();
                n1.next = n2;
                n2.next = n3;
                n3.v = a;
                return n1.next.next.v;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 0
        assert execute(program, graph, [13])[0] == 13


class TestVirtualArrays:
    def test_constant_length_array_virtualized(self):
        source = """
            class C { static int m(int a) {
                int[] xs = new int[3];
                xs[0] = a;
                xs[1] = a * 2;
                xs[2] = xs[0] + xs[1];
                return xs[2] + xs.length;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewArrayNode) == 0
        assert execute(program, graph, [5])[0] == 5 + 10 + 3

    def test_dynamic_length_array_not_virtualized(self):
        source = """
            class C { static int m(int n) {
                int[] xs = new int[n];
                return xs.length;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewArrayNode) == 1

    def test_huge_array_not_virtualized(self):
        source = """
            class C { static int m() {
                int[] xs = new int[1000];
                return xs.length;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewArrayNode) == 1

    def test_dynamic_index_forces_materialization(self):
        source = """
            class C { static int m(int i) {
                int[] xs = new int[4];
                xs[i] = 7;
                return xs[i];
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewArrayNode) == 1
        assert execute(program, graph, [2])[0] == 7

    def test_ref_array_of_virtuals(self):
        source = """
            class Box { int v; }
            class C { static int m(int a) {
                Box[] boxes = new Box[2];
                Box b = new Box();
                b.v = a;
                boxes[0] = b;
                return boxes[0].v;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewArrayNode) == 0
        assert count(graph, N.NewInstanceNode) == 0
        assert execute(program, graph, [21])[0] == 21


class TestCompileTimeFolds:
    def test_ref_equality_virtual_vs_other(self):
        source = """
            class Box { }
            class C { static boolean m(Object o) {
                Box b = new Box();
                return b == o;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        # Folded to false; no allocation remains.
        assert count(graph, N.NewInstanceNode) == 0
        assert execute(program, graph, [None])[0] == 0

    def test_ref_equality_same_virtual(self):
        source = """
            class Box { }
            class C { static boolean m() {
                Box a = new Box();
                Box b = a;
                return a == b;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert execute(program, graph, [])[0] == 1

    def test_ref_equality_two_virtuals(self):
        source = """
            class Box { }
            class C { static boolean m() {
                return new Box() == new Box();
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 0
        assert execute(program, graph, [])[0] == 0

    def test_instanceof_on_virtual_folds(self):
        source = """
            class Animal { }
            class Dog extends Animal { }
            class C { static int m() {
                Animal a = new Dog();
                int r = 0;
                if (a instanceof Dog) { r = r + 1; }
                if (a instanceof Animal) { r = r + 2; }
                return r;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 0
        assert count(graph, N.InstanceOfNode) == 0
        rets = list(graph.nodes_of(N.ReturnNode))
        assert isinstance(rets[0].value, N.ConstantNode)
        assert rets[0].value.value == 3

    def test_null_check_on_virtual_folds(self):
        source = """
            class Box { }
            class C { static boolean m() {
                Box b = new Box();
                return b == null;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert execute(program, graph, [])[0] == 0


class TestEscapes:
    def test_return_escapes(self):
        source = """
            class Box { int v; }
            class C { static Box m(int a) {
                Box b = new Box();
                b.v = a;
                return b;
            } }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 1
        result, heap, __ = execute(program, graph, [4])
        assert result.fields["v"] == 4
        assert heap.allocations == 1

    def test_static_store_escapes(self):
        source = """
            class Box { int v; }
            class C {
                static Box global;
                static int m(int a) {
                    Box b = new Box();
                    b.v = a;
                    global = b;
                    return b.v;
                }
            }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 1
        assert execute(program, graph, [5])[0] == 5

    def test_call_argument_escapes(self):
        source = """
            class Box { int v; }
            class C {
                static native int peek(Box b);
                static int m(int a) {
                    Box b = new Box();
                    b.v = a;
                    return peek(b);
                }
            }
        """
        natives = {"C.peek": lambda interp, args: args[0].fields["v"]}
        program, graph, __ = optimize(source, "C.m", natives=natives)
        assert count(graph, N.NewInstanceNode) == 1
        assert execute(program, graph, [11])[0] == 11

    def test_store_into_escaped_object(self):
        # Figure 5: the store stays, using the materialized value.
        source = """
            class Box { int v; Object o; }
            class C {
                static Box global;
                static int m(int a) {
                    Box b = new Box();
                    global = b;
                    b.v = a;
                    return b.v;
                }
            }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 1
        # After escape, field contents are unknown: load stays.
        assert count(graph, N.LoadFieldNode) == 1
        assert count(graph, N.StoreFieldNode) == 1
        assert execute(program, graph, [3])[0] == 3

    def test_virtual_value_stored_into_escaped_object_escapes(self):
        source = """
            class Box { Object o; }
            class C {
                static Box global;
                static boolean m() {
                    Box outer = new Box();
                    global = outer;
                    Box inner = new Box();
                    outer.o = inner;
                    return global.o == inner;
                }
            }
        """
        program, graph, __ = optimize(source, "C.m")
        assert count(graph, N.NewInstanceNode) == 2
        assert execute(program, graph, [])[0] == 1
