"""Benchmark-suite sanity: every workload compiles, runs, and behaves
identically under every configuration."""

import pytest

from repro.benchsuite import ALL_WORKLOADS, SUITES, by_name
from repro.benchsuite.harness import run_workload
from repro.bytecode import Interpreter
from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

WORKLOAD_NAMES = [w.name for w in ALL_WORKLOADS]


def test_registry_matches_paper_structure():
    assert len(SUITES["dacapo"]) == 14  # 7 shown + 7 quiet
    assert len(SUITES["scaladacapo"]) == 12
    assert len(SUITES["specjbb"]) == 1
    assert len(WORKLOAD_NAMES) == len(set(WORKLOAD_NAMES))


def test_by_name_lookup():
    assert by_name("factorie").suite == "scaladacapo"
    with pytest.raises(KeyError):
        by_name("nope")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_compiles_and_interprets(name):
    workload = by_name(name)
    program = compile_source(workload.source,
                             natives=workload.natives or None)
    interp = Interpreter(program)
    first = interp.call(workload.entry, workload.iteration_size)
    program.reset_statics()
    second = interp.call(workload.entry, workload.iteration_size)
    assert first == second  # iterations are deterministic


@pytest.mark.parametrize("name", ["h2", "factorie", "specjbb2005",
                                  "jython", "actors"])
def test_configs_agree_on_checksum(name):
    workload = by_name(name)
    checksums = set()
    for factory in (CompilerConfig.no_ea, CompilerConfig.equi_escape,
                    CompilerConfig.partial_escape):
        program = compile_source(workload.source,
                                 natives=workload.natives or None)
        vm = VM(program, factory())
        for _ in range(6):
            checksum = vm.call(workload.entry, workload.iteration_size)
            program.reset_statics()
        checksums.add(checksum)
    assert len(checksums) == 1


@pytest.mark.parametrize("name", ["sunflow", "specs", "specjbb2005"])
def test_pea_reduces_allocations_on_temp_heavy_workloads(name):
    workload = by_name(name)

    def allocations(config):
        program = compile_source(workload.source,
                                 natives=workload.natives or None)
        vm = VM(program, config)
        for _ in range(25):
            vm.call(workload.entry, workload.iteration_size)
            program.reset_statics()
        before = vm.heap_snapshot()
        vm.call(workload.entry, workload.iteration_size)
        return vm.heap_snapshot().delta(before).allocations

    assert allocations(CompilerConfig.partial_escape()) < \
        allocations(CompilerConfig.no_ea())


def test_quiet_workloads_unaffected_by_pea():
    workload = by_name("avrora")

    def allocations(config):
        program = compile_source(workload.source)
        vm = VM(program, config)
        for _ in range(25):
            vm.call(workload.entry, workload.iteration_size)
            program.reset_statics()
        before = vm.heap_snapshot()
        vm.call(workload.entry, workload.iteration_size)
        return vm.heap_snapshot().delta(before).allocations

    with_pea = allocations(CompilerConfig.partial_escape())
    without = allocations(CompilerConfig.no_ea())
    # "No significant change": at most the odd container object (the
    # paper's quiet benchmarks aren't bit-identical either).
    assert without - 2 <= with_pea <= without


def test_harness_measurement_fields():
    workload = by_name("xalan")
    measurement = run_workload(workload, CompilerConfig.partial_escape())
    assert measurement.kb_per_iteration > 0
    assert measurement.allocations_per_iteration > 0
    assert measurement.cycles_per_iteration > 0
    assert measurement.iterations_per_minute > 0
    assert measurement.config == "with PEA"


def test_paper_rows_present_for_shown_benchmarks():
    for name in ("fop", "h2", "jython", "sunflow", "tomcat",
                 "tradebeans", "xalan", "factorie", "specs",
                 "specjbb2005"):
        workload = by_name(name)
        assert workload.paper is not None
        assert workload.description
