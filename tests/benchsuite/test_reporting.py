"""Report formatting helpers."""

from repro.benchsuite.reporting import num, pct, render_table


def test_render_table_alignment():
    text = render_table(["name", "value"],
                        [["alpha", "1.0"], ["b", "22.5"]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 4
    # Right-aligned numeric column.
    assert lines[2].endswith("1.0")
    assert lines[3].endswith("22.5")


def test_pct_and_num_formats():
    assert pct(3.14159) == "+3.1%"
    assert pct(-0.05) == "-0.1%"
    assert num(1234567) == "1,234,567"
    assert num(3.14159, 2) == "3.14"


def test_table_with_custom_alignment():
    text = render_table(["a", "b"], [["x", "y"]], aligns=["r", "l"])
    assert "x" in text and "y" in text
