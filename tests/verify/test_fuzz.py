"""Fuzzer machinery tests: choice-sequence determinism and replay,
shrinking to minimal reproducers, corpus persistence, and a small
end-to-end differential smoke run."""

import random

import pytest

from repro.verify.fuzz import (CheckResult, Fuzzer, RecordingSource,
                               ReplaySource, check_program, fuzz,
                               mutate_choices, replay_corpus_entry,
                               save_corpus_entry)
from repro.verify.generator import GeneratedProgram, ProgramGenerator, Stmt
from repro.verify.shrink import shrink_program


def generate_recorded(seed):
    source = RecordingSource(random.Random(seed))
    program = ProgramGenerator(source.rand_int).generate_program()
    return program, source.choices


def test_same_seed_same_program():
    program_a, _ = generate_recorded(42)
    program_b, _ = generate_recorded(42)
    assert program_a.source() == program_b.source()


def test_choice_replay_reproduces_program():
    program, choices = generate_recorded(7)
    replay = ReplaySource(choices, random.Random(0))
    replayed = ProgramGenerator(replay.rand_int).generate_program()
    assert replayed.source() == program.source()
    assert replay.choices == choices


def test_mutated_choices_still_generate_valid_programs():
    from repro.lang import compile_source
    _, choices = generate_recorded(3)
    rng = random.Random(11)
    for _ in range(10):
        mutated = mutate_choices(choices, rng)
        replay = ReplaySource(mutated, rng)
        program = ProgramGenerator(replay.rand_int).generate_program()
        compile_source(program.source())  # must stay well-formed


def _trigger_program():
    """entry: a trigger statement buried under noise and nesting."""
    return GeneratedProgram({
        "h2": [Stmt.leaf("x0 = x1 + 2;")],
        "h1": [Stmt.leaf("d0.f0 = 4;"),
               Stmt.compound("if (x0 < x1)",
                             [Stmt.leaf("x2 = 9;")],
                             [Stmt.leaf("x1 = 1;")])],
        "entry": [
            Stmt.leaf("x0 = 5;"),
            Stmt.compound("if (a < b)", [
                Stmt.leaf("x1 = 2;"),
                Stmt.compound("synchronized (d0)",
                              [Stmt.leaf("g0 = d1;"),  # the trigger
                               Stmt.leaf("x2 = 3;")]),
            ]),
            Stmt.leaf("d1.f1 = 8;"),
        ],
    })


def test_shrink_reduces_to_single_trigger_statement():
    program = _trigger_program()

    def still_fails(candidate):
        return "g0 = d1;" in candidate.source()

    assert still_fails(program)
    shrunk = shrink_program(program, still_fails)
    assert still_fails(shrunk)
    # Everything except the trigger leaf is gone — including the
    # enclosing if/synchronized compounds (hoisted away).
    assert shrunk.statement_count() == 1
    assert all(not stmts for name, stmts in shrunk.bodies.items()
               if name != "entry")
    assert shrunk.bodies["entry"][0].kind == "leaf"


def test_shrink_rejects_differently_failing_candidates():
    program = _trigger_program()
    calls = []

    def predicate(candidate):
        calls.append(1)
        source = candidate.source()
        # Fails "the same way" only while BOTH statements survive.
        return "g0 = d1;" in source and "d1.f1 = 8;" in source

    shrunk = shrink_program(program, predicate)
    source = shrunk.source()
    assert "g0 = d1;" in source and "d1.f1 = 8;" in source
    assert shrunk.statement_count() == 2
    assert calls  # the predicate drove the search


def test_fuzzer_shrinks_injected_failure():
    """End-to-end: an injected oracle bug is caught and automatically
    reduced to a one-statement reproducer."""

    def buggy_check(program):
        if "synchronized" in program.source():
            return CheckResult(("injected", "synchronized seen"))
        return CheckResult(None)

    fuzzer = Fuzzer(seed=99, shrink=True, check=buggy_check)
    report = fuzzer.run(10)
    assert report.failures
    failure = report.failures[0]
    assert failure.category == "injected"
    assert failure.shrunk is not None
    assert failure.shrunk.statement_count() <= 2
    assert "synchronized" in failure.shrunk.source()
    assert failure.shrunk.statement_count() \
        < failure.program.statement_count()


def test_failure_writes_corpus_reproducer(tmp_path):
    def buggy_check(program):
        if "new Data()" in program.source():
            return CheckResult(("injected", "allocation seen"))
        return CheckResult(None)

    fuzzer = Fuzzer(seed=5, corpus_dir=str(tmp_path), shrink=True,
                    check=buggy_check)
    report = fuzzer.run(3)
    assert report.failures
    jasm_files = list(tmp_path.glob("*.jasm"))
    json_files = list(tmp_path.glob("*.json"))
    assert jasm_files and json_files
    # The persisted reproducer replays clean against its own recording
    # (the injected bug lives in the oracle, not the engines).
    assert replay_corpus_entry(str(jasm_files[0])) is None


def test_save_and_replay_roundtrip(tmp_path):
    program, _ = generate_recorded(12)
    path = save_corpus_entry(str(tmp_path), "entry", program, "seed")
    assert replay_corpus_entry(path) is None


@pytest.mark.slow
def test_fuzz_smoke_runs_clean():
    """The real oracle over a small fixed-seed batch: all engines agree
    and the verifier stays silent."""
    report = fuzz(programs=15, seed=2024)
    assert report.programs_run == 15
    assert report.failures == []
    assert "pea:virtualized" in report.coverage
