"""GraphVerifier unit tests: each invariant layer is broken on purpose
in a hand-built graph and the verifier must name the violation."""

import pytest

from repro.bytecode import JField, Program
from repro.ir import Graph, nodes as N
from repro.verify import (GraphVerificationError, GraphVerifier,
                          verify_graph)


def diamond():
    """start -> if -> (left | right) -> merge -> return"""
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    if_node = graph.add(N.IfNode(condition=graph.constant(1)))
    start.next = if_node
    left = graph.add(N.BeginNode())
    right = graph.add(N.BeginNode())
    if_node.true_successor = left
    if_node.false_successor = right
    end_left = graph.add(N.EndNode())
    end_right = graph.add(N.EndNode())
    left.next = end_left
    right.next = end_right
    merge = graph.add(N.MergeNode())
    merge.add_end(end_left)
    merge.add_end(end_right)
    ret = graph.add(N.ReturnNode(value=graph.constant(0)))
    merge.next = ret
    return graph, if_node, left, right, end_left, end_right, merge, ret


def test_well_formed_diamond_passes():
    graph = diamond()[0]
    assert GraphVerifier(graph).run() == []
    verify_graph(graph)  # should not raise


def test_phi_arity_mismatch_is_reported():
    graph, *_, merge, ret = diamond()
    phi = graph.add(N.PhiNode(merge=merge))
    phi.values.append(graph.constant(1))  # merge expects 2 inputs
    ret.value = phi
    findings = GraphVerifier(graph).run()
    assert any("inputs" in f and "expects" in f for f in findings)


def test_def_must_dominate_use():
    graph, if_node, left, right, end_left, end_right, merge, ret = \
        diamond()
    # A load computed on the left branch only...
    from repro.bytecode.instructions import FieldRef
    load = N.LoadFieldNode(FieldRef("Box", "v"), object=graph.null)
    graph.insert_before(end_left, load)
    # ...used after the merge: not dominating.
    ret.value = load
    findings = GraphVerifier(graph).run()
    assert any("does not dominate" in f for f in findings)


def test_phi_input_checked_against_predecessor_block():
    graph, if_node, left, right, end_left, end_right, merge, ret = \
        diamond()
    from repro.bytecode.instructions import FieldRef
    load = N.LoadFieldNode(FieldRef("Box", "v"), object=graph.null)
    graph.insert_before(end_left, load)
    phi = graph.add(N.PhiNode(merge=merge))
    phi.values.extend([load, graph.constant(0)])
    ret.value = phi
    # load is defined on the left branch and feeds the left phi input:
    # that IS dominance-correct.
    assert GraphVerifier(graph).run() == []
    # Swapping the inputs routes the left-defined value through the
    # right predecessor: violation.
    phi.values.set_all([graph.constant(0), load])
    findings = GraphVerifier(graph).run()
    assert any("does not dominate" in f for f in findings)


def test_unreachable_fixed_node_is_reported():
    graph, *_ = diamond()
    orphan = graph.add(N.BeginNode())
    orphan.next = graph.add(N.ReturnNode(value=graph.constant(9)))
    findings = GraphVerifier(graph).run()
    assert any("unreachable" in f for f in findings)


def test_loop_end_pairing_violation():
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    fwd_end = graph.add(N.EndNode())
    start.next = fwd_end
    loop = graph.add(N.LoopBeginNode())
    loop.add_end(fwd_end)
    loop_end = graph.add(N.LoopEndNode())
    loop.add_loop_end(loop_end)
    if_node = graph.add(N.IfNode(condition=graph.constant(1)))
    loop.next = if_node
    exit_begin = graph.add(N.LoopExitNode(loop_begin=loop))
    if_node.true_successor = exit_begin
    body = graph.add(N.BeginNode())
    if_node.false_successor = body
    body.next = loop_end
    ret = graph.add(N.ReturnNode(value=graph.constant(0)))
    exit_begin.next = ret
    assert GraphVerifier(graph).run() == []
    # Break the pairing: the loop end forgets its loop begin.
    loop.loop_ends.remove(loop_end)
    loop_end_2 = N.LoopEndNode()
    findings = GraphVerifier(graph).run()
    assert any("loop" in f.lower() for f in findings)


def test_deopt_without_state_is_reported():
    graph, if_node, left, right, end_left, end_right, merge, ret = \
        diamond()
    guard = N.FixedGuardNode(condition=graph.constant(1), state=None)
    graph.insert_before(ret, guard)
    findings = GraphVerifier(graph).run()
    assert any("no frame state" in f for f in findings)


def _method_stub(program):
    from repro.bytecode import Program
    cls = program.define_class("C")
    from repro.bytecode.classfile import JMethod
    method = JMethod("m", ["int"], "int")
    method.max_locals = 1
    cls.add_method(method)
    return method


def test_missing_escape_object_state_is_reported():
    program = Program()
    method = _method_stub(program)
    graph, *_, merge, ret = diamond()
    virtual = N.VirtualInstanceNode("Box", ["v"])
    state = N.FrameStateNode(method, 0)
    state.locals_values.append(virtual)
    graph.add(state)
    guard = N.FixedGuardNode(condition=graph.constant(1), state=state)
    graph.insert_before(ret, guard)
    findings = GraphVerifier(graph).run()
    assert any("no EscapeObjectState" in f for f in findings)
    # Adding the mapping (fully populated) repairs it.
    mapping = N.EscapeObjectStateNode(virtual_object=virtual)
    mapping.entries.append(graph.constant(7))
    state.virtual_mappings.append(mapping)
    graph.add(mapping)
    assert GraphVerifier(graph).run() == []


def test_partially_populated_field_map_is_reported():
    program = Program()
    method = _method_stub(program)
    graph, *_, merge, ret = diamond()
    virtual = N.VirtualInstanceNode("Box", ["v", "w"])
    state = N.FrameStateNode(method, 0)
    state.locals_values.append(virtual)
    mapping = N.EscapeObjectStateNode(virtual_object=virtual)
    mapping.entries.append(graph.constant(7))  # only 1 of 2 fields
    state.virtual_mappings.append(mapping)
    graph.add(state)
    graph.add(mapping)
    guard = N.FixedGuardNode(condition=graph.constant(1), state=state)
    graph.insert_before(ret, guard)
    findings = GraphVerifier(graph).run()
    assert any("not fully populated" in f for f in findings)


def test_virtual_object_used_by_real_node_is_reported():
    graph, *_, merge, ret = diamond()
    virtual = N.VirtualInstanceNode("Box", ["v"])
    graph.add(virtual)
    ret.value = virtual  # a real node consuming a virtual object
    findings = GraphVerifier(graph).run()
    assert any("used by real node" in f for f in findings)


def test_virtual_phi_input_is_reported():
    graph, *_, merge, ret = diamond()
    virtual = N.VirtualInstanceNode("Box", ["v"])
    graph.add(virtual)
    phi = graph.add(N.PhiNode(merge=merge))
    phi.values.extend([graph.constant(0), virtual])
    ret.value = phi
    findings = GraphVerifier(graph).run()
    assert any("materialized before feeding a phi" in f
               for f in findings)


def test_verify_graph_raises_with_phase_attribution():
    graph, *_, merge, ret = diamond()
    phi = graph.add(N.PhiNode(merge=merge))
    phi.values.append(graph.constant(1))
    ret.value = phi
    with pytest.raises(GraphVerificationError) as excinfo:
        verify_graph(graph, phase="canonicalizer")
    assert "after phase 'canonicalizer'" in str(excinfo.value)
    assert excinfo.value.findings


def test_compiled_graphs_verify_clean():
    """End-to-end: real compilations under every configuration pass the
    full verifier (this is also enforced implicitly suite-wide via
    REPRO_VERIFY_IR)."""
    from repro.jit import Compiler, CompilerConfig
    from repro.lang import compile_source
    source = """
        class Box { int v; Box link; }
        class Main {
            static Box sink;
            static int entry(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    Box b = new Box();
                    b.v = i;
                    synchronized (b) {
                        if (i % 5 == 0) { sink = b; }
                        acc = acc + b.v;
                    }
                }
                return acc;
            }
        }
    """
    for factory in (CompilerConfig.no_ea, CompilerConfig.equi_escape,
                    CompilerConfig.partial_escape):
        program = compile_source(source)
        compiler = Compiler(program, factory(verify_ir=True))
        result = compiler.compile(program.method("Main.entry"))
        assert GraphVerifier(result.graph).run() == []
