"""Bytecode interpreter semantics, built via the assembler."""

import pytest

from repro.bytecode import (ArithmeticTrap, ArrayIndexError,
                            BudgetExceeded, BytecodeBuilder, ClassCastError,
                            Heap, IllegalMonitorState, Interpreter, JClass,
                            JField, JMethod, NullPointerError, Op, Program,
                            Profile, ThrownException, java_div, java_rem,
                            verify_program, wrap_int)


def make_program():
    program = Program()
    point = program.define_class("Point")
    point.add_field(JField("x", "int"))
    point.add_field(JField("y", "int"))
    program.define_class("Main")
    return program


def add_method(program, name, params, ret, build, is_static=True,
               max_locals=None, holder="Main", synchronized=False):
    method = JMethod(name, params, ret, is_static=is_static,
                     is_synchronized=synchronized)
    builder = BytecodeBuilder()
    build(builder)
    locals_count = max_locals if max_locals is not None else \
        max(len(params), 1)
    builder.into(method, max_locals=locals_count)
    program.lookup_class(holder).add_method(method)
    return method


class TestArithmetic:
    def test_wrap_int(self):
        assert wrap_int(2**63) == -(2**63)
        assert wrap_int(-2**63 - 1) == 2**63 - 1
        assert wrap_int(5) == 5

    def test_java_div_truncates_toward_zero(self):
        assert java_div(7, 2) == 3
        assert java_div(-7, 2) == -3
        assert java_div(7, -2) == -3
        assert java_div(-7, -2) == 3

    def test_java_rem_sign_follows_dividend(self):
        assert java_rem(7, 3) == 1
        assert java_rem(-7, 3) == -1
        assert java_rem(7, -3) == 1

    def test_div_by_zero_traps(self):
        with pytest.raises(ArithmeticTrap):
            java_div(1, 0)
        with pytest.raises(ArithmeticTrap):
            java_rem(1, 0)

    def test_binary_ops_execute(self):
        program = make_program()
        cases = [
            (Op.ADD, 9, 4, 13), (Op.SUB, 9, 4, 5), (Op.MUL, 9, 4, 36),
            (Op.DIV, 9, 4, 2), (Op.REM, 9, 4, 1), (Op.AND, 12, 10, 8),
            (Op.OR, 12, 10, 14), (Op.XOR, 12, 10, 6),
            (Op.SHL, 3, 2, 12), (Op.SHR, -8, 1, -4),
        ]
        for index, (op, a, b, expected) in enumerate(cases):
            add_method(program, f"m{index}", ["int", "int"], "int",
                       lambda bb, op=op: bb.load(0).load(1).emit(op)
                       .return_value(), max_locals=2)
        interp = Interpreter(program)
        for index, (op, a, b, expected) in enumerate(cases):
            assert interp.call(f"Main.m{index}", a, b) == expected, op


class TestControlFlow:
    def test_loop_countdown(self):
        program = make_program()

        def build(bb):
            loop = bb.new_label("loop")
            done = bb.new_label("done")
            bb.bind(loop)
            bb.load(0).const(0).branch(Op.IF_LE, done)
            bb.load(0).const(1).sub().store(0)
            bb.goto(loop)
            bb.bind(done)
            bb.load(0).return_value()

        add_method(program, "count", ["int"], "int", build)
        interp = Interpreter(program)
        assert interp.call("Main.count", 10) == 0
        assert interp.call("Main.count", -5) == -5

    def test_step_budget(self):
        program = make_program()

        def build(bb):
            loop = bb.new_label("loop")
            bb.bind(loop)
            bb.goto(loop)

        add_method(program, "spin", [], "void", build)
        interp = Interpreter(program, step_budget=1000)
        with pytest.raises(BudgetExceeded):
            interp.call("Main.spin")

    def test_branch_profile_recorded(self):
        program = make_program()

        def build(bb):
            yes = bb.new_label("yes")
            bb.load(0).const(0).branch(Op.IF_GT, yes)
            bb.const(0).return_value()
            bb.bind(yes)
            bb.const(1).return_value()

        method = add_method(program, "pos", ["int"], "int", build)
        profile = Profile()
        interp = Interpreter(program, profile=profile)
        for value in (1, 2, 3, -1):
            interp.call("Main.pos", value)
        assert profile.taken_probability(method, 2) == 0.75
        assert profile.invocation_count(method) == 4


class TestObjects:
    def test_field_access_and_stats(self):
        program = make_program()

        def build(bb):
            bb.new("Point").store(1)
            bb.load(1).load(0).putfield("Point", "x")
            bb.load(1).getfield("Point", "x").return_value()

        add_method(program, "roundtrip", ["int"], "int", build,
                   max_locals=2)
        interp = Interpreter(program)
        assert interp.call("Main.roundtrip", 42) == 42
        assert interp.heap.stats.allocations == 1
        assert interp.heap.stats.allocated_bytes == \
            program.instance_size("Point")

    def test_null_field_access_raises(self):
        program = make_program()
        add_method(program, "bad", [], "int",
                   lambda bb: bb.const(None).getfield("Point", "x")
                   .return_value())
        with pytest.raises(NullPointerError):
            Interpreter(program).call("Main.bad")

    def test_arrays(self):
        program = make_program()

        def build(bb):
            bb.load(0).newarray("int").store(1)
            bb.load(1).const(0).const(7).astore()
            bb.load(1).const(0).aload()
            bb.load(1).arraylength().add().return_value()

        add_method(program, "arr", ["int"], "int", build, max_locals=2)
        assert Interpreter(program).call("Main.arr", 5) == 12

    def test_array_bounds(self):
        program = make_program()
        add_method(program, "oob", ["int"], "int",
                   lambda bb: bb.const(2).newarray("int").load(0).aload()
                   .return_value())
        interp = Interpreter(program)
        assert interp.call("Main.oob", 1) == 0
        with pytest.raises(ArrayIndexError):
            interp.call("Main.oob", 2)
        with pytest.raises(ArrayIndexError):
            interp.call("Main.oob", -1)

    def test_instanceof_and_checkcast(self):
        program = make_program()
        sub = program.define_class("Point3", "Point")
        sub.add_field(JField("z", "int"))

        def build(bb):
            bb.new("Point3").instanceof("Point").return_value()

        add_method(program, "iof", [], "int", build)
        add_method(program, "cast_bad", [], "int",
                   lambda bb: bb.new("Point").checkcast("Point3").pop()
                   .const(0).return_value())
        interp = Interpreter(program)
        assert interp.call("Main.iof") == 1
        with pytest.raises(ClassCastError):
            interp.call("Main.cast_bad")

    def test_statics_shared_between_calls(self):
        program = make_program()
        program.lookup_class("Main").add_field(
            JField("counter", "int", is_static=True))
        add_method(program, "bump", [], "int",
                   lambda bb: bb.getstatic("Main", "counter").const(1)
                   .add().dup().putstatic("Main", "counter")
                   .return_value())
        interp = Interpreter(program)
        assert interp.call("Main.bump") == 1
        assert interp.call("Main.bump") == 2
        program.reset_statics()
        assert interp.call("Main.bump") == 1


class TestMonitors:
    def test_balanced_monitors(self):
        program = make_program()

        def build(bb):
            bb.new("Point").store(0)
            bb.load(0).monitorenter()
            bb.load(0).monitorexit()
            bb.return_void()

        add_method(program, "sync", [], "void", build, max_locals=1)
        interp = Interpreter(program)
        interp.call("Main.sync")
        assert interp.heap.stats.monitor_enters == 1
        assert interp.heap.stats.monitor_exits == 1

    def test_unbalanced_exit_raises(self):
        program = make_program()
        add_method(program, "bad", [], "void",
                   lambda bb: bb.new("Point").monitorexit().return_void())
        with pytest.raises(IllegalMonitorState):
            Interpreter(program).call("Main.bad")

    def test_synchronized_method_locks_receiver(self):
        program = make_program()
        point = program.lookup_class("Point")
        method = JMethod("poke", ["Point"], "int")
        builder = BytecodeBuilder()
        builder.const(5).return_value()
        builder.into(method, max_locals=1)
        method.is_synchronized = True
        point.add_method(method)
        interp = Interpreter(program)
        obj = interp.heap.new_instance("Point")
        assert interp.invoke(method, [obj]) == 5
        assert interp.heap.stats.monitor_enters == 1
        assert interp.heap.stats.monitor_exits == 1
        assert obj.lock_depth == 0


class TestCallsAndNatives:
    def test_static_call(self):
        program = make_program()
        add_method(program, "twice", ["int"], "int",
                   lambda bb: bb.load(0).const(2).mul().return_value())
        add_method(program, "four", [], "int",
                   lambda bb: bb.const(2)
                   .invokestatic("Main", "twice", 1).return_value())
        assert Interpreter(program).call("Main.four") == 4

    def test_virtual_dispatch(self):
        program = make_program()
        base = program.lookup_class("Point")
        sub = program.define_class("Point3", "Point")
        for holder, value in ((base, 1), (sub, 2)):
            method = JMethod("kind", [holder.name], "int")
            builder = BytecodeBuilder()
            builder.const(value).return_value()
            builder.into(method, max_locals=1)
            holder.add_method(method)

        def build(bb):
            bb.new("Point3").invokevirtual("Point", "kind", 1)
            bb.return_value()

        add_method(program, "dispatch", [], "int", build)
        assert Interpreter(program).call("Main.dispatch") == 2

    def test_native_method(self):
        program = make_program()
        native = JMethod("host", ["int"], "int", is_native=True,
                         native_impl=lambda interp, args: args[0] * 10)
        program.lookup_class("Main").add_method(native)
        add_method(program, "go", [], "int",
                   lambda bb: bb.const(7).invokestatic("Main", "host", 1)
                   .return_value())
        assert Interpreter(program).call("Main.go") == 70

    def test_throw_propagates(self):
        program = make_program()
        add_method(program, "boom", [], "void",
                   lambda bb: bb.new("Point").throw())
        with pytest.raises(ThrownException):
            Interpreter(program).call("Main.boom")


class TestDeoptEntry:
    def test_execute_frame_resumes_mid_method(self):
        program = make_program()

        def build(bb):
            bb.load(0).const(1).add().store(0)
            bb.load(0).const(10).mul().return_value()

        method = add_method(program, "resume", ["int"], "int", build)
        interp = Interpreter(program)
        # Start at bci 4 (skip the increment): locals already set.
        assert interp.execute_frame(method, [5], [], 4) == 50
