"""Textual assembler tests, including a disassemble-reassemble loop."""

import pytest

from repro.bytecode import Interpreter, VerificationError
from repro.bytecode.asmtext import AsmSyntaxError, assemble


def test_simple_method():
    program = assemble("""
        class Main
          method double(int) -> int static locals=1
            load 0
            const 2
            mul
            return_value
    """)
    assert Interpreter(program).call("Main.double", 21) == 42


def test_labels_and_loops():
    program = assemble("""
        class Main
          method countdown(int) -> int static locals=1
          loop:
            load 0
            const 0
            if_le done
            load 0
            const 1
            sub
            store 0
            goto loop
          done:
            load 0
            return_value
    """)
    assert Interpreter(program).call("Main.countdown", 9) == 0


def test_fields_and_objects():
    program = assemble("""
        class Box
          field int v
          field static int total

        class Main
          method bump(int) -> int static locals=2
            new Box
            store 1
            load 1
            load 0
            putfield Box.v
            load 1
            getfield Box.v
            getstatic Box.total
            add
            dup
            putstatic Box.total
            return_value
    """)
    interp = Interpreter(program)
    assert interp.call("Main.bump", 5) == 5
    assert interp.call("Main.bump", 7) == 12


def test_method_calls_and_flags():
    program = assemble("""
        class Main
          method helper(int) -> int static locals=1
            load 0
            const 1
            add
            return_value
          method go() -> int static locals=0
            const 41
            invokestatic Main.helper/1
            return_value
    """)
    assert Interpreter(program).call("Main.go") == 42


def test_string_and_null_constants():
    program = assemble("""
        class Main
          method pick(int) -> Object static locals=1
            load 0
            const 0
            if_le no
            const "yes"
            return_value
          no:
            const null
            return_value
    """)
    interp = Interpreter(program)
    assert interp.call("Main.pick", 1) == "yes"
    assert interp.call("Main.pick", 0) is None


def test_comments_and_blank_lines():
    program = assemble("""
        ; a full-line comment
        class Main

          method id(int) -> int static locals=1
            load 0      ; just return it
            return_value
    """)
    assert Interpreter(program).call("Main.id", 3) == 3


def test_synchronized_and_inheritance():
    program = assemble("""
        class Animal
          method noise(Animal) -> int synchronized locals=1
            const 1
            return_value

        class Dog extends Animal
          method noise(Dog) -> int locals=1
            const 2
            return_value

        class Main
          method go() -> int static locals=1
            new Dog
            invokevirtual Animal.noise/1
            return_value
    """)
    interp = Interpreter(program)
    assert interp.call("Main.go") == 2


def test_errors():
    with pytest.raises(AsmSyntaxError, match="unknown opcode"):
        assemble("class C\n  method m() -> void static\n    frobnicate\n")
    with pytest.raises(AsmSyntaxError, match="outside class"):
        assemble("field int x\n")
    with pytest.raises(AsmSyntaxError, match="outside method"):
        assemble("class C\n  const 1\n")
    with pytest.raises(AsmSyntaxError, match="bad field"):
        assemble("class C\n  method m() -> void static\n"
                 "    getstatic nodot\n")
    with pytest.raises(VerificationError):
        assemble("class C\n  method m() -> int static\n    return_value\n")


def test_reassembling_disassembler_like_output():
    """The mnemonics match Op values, so hand-written text stays in sync
    with the instruction set."""
    from repro.bytecode.opcodes import Op
    program = assemble("""
        class Main
          method ops(int, int) -> int static locals=2
            load 0
            load 1
            add
            load 0
            load 1
            sub
            mul
            neg
            return_value
    """)
    code = program.method("Main.ops").code
    assert [i.op for i in code] == [
        Op.LOAD, Op.LOAD, Op.ADD, Op.LOAD, Op.LOAD, Op.SUB, Op.MUL,
        Op.NEG, Op.RETURN_VALUE]
    assert Interpreter(program).call("Main.ops", 7, 3) == -(10 * 4)
