"""Opcode metadata invariants."""

import pytest

from repro.bytecode import (CONDITIONAL_BRANCHES, INVOKES, Op, OperandKind,
                            info)
from repro.bytecode.opcodes import BLOCK_TERMINATORS, OP_INFO


def test_every_opcode_has_info():
    for op in Op:
        assert op in OP_INFO


def test_branches_have_target_operand():
    for op in CONDITIONAL_BRANCHES | {Op.GOTO}:
        assert info(op).operand is OperandKind.TARGET
        assert info(op).is_branch


def test_goto_is_terminator_conditionals_are_not():
    assert info(Op.GOTO).is_terminator
    for op in CONDITIONAL_BRANCHES:
        assert not info(op).is_terminator


def test_terminators():
    for op in (Op.RETURN, Op.RETURN_VALUE, Op.THROW):
        assert info(op).is_terminator
        assert op in BLOCK_TERMINATORS


def test_invokes_have_method_operand():
    for op in INVOKES:
        assert info(op).operand is OperandKind.METHOD


def test_stack_effects_are_consistent():
    # Every non-invoke opcode has non-negative pops/pushes.
    for op, op_info in OP_INFO.items():
        if op in INVOKES:
            assert op_info.pops == -1 and op_info.pushes == -1
        else:
            assert op_info.pops >= 0
            assert op_info.pushes >= 0


def test_side_effects_marked():
    for op in (Op.PUTFIELD, Op.PUTSTATIC, Op.ASTORE, Op.MONITORENTER,
               Op.MONITOREXIT, Op.NEW, Op.NEWARRAY):
        assert info(op).has_side_effect
    for op in (Op.ADD, Op.LOAD, Op.GETFIELD, Op.CONST):
        assert not info(op).has_side_effect
