"""Assembler (label resolution) and disassembler round trips."""

import pytest

from repro.bytecode import (AssemblyError, BytecodeBuilder, Instruction,
                            JMethod, Op, Program, disassemble_method,
                            disassemble_program)


def test_forward_and_backward_labels():
    builder = BytecodeBuilder()
    loop = builder.new_label("loop")
    done = builder.new_label("done")
    builder.bind(loop)
    builder.load(0).const(0).branch(Op.IF_LE, done)
    builder.load(0).const(1).sub().store(0)
    builder.goto(loop)
    builder.bind(done)
    builder.load(0).return_value()
    code = builder.finish()
    assert code[2].operand == 8  # IF_LE -> done
    assert code[7].operand == 0  # GOTO -> loop


def test_unbound_label_raises():
    builder = BytecodeBuilder()
    label = builder.new_label("nowhere")
    builder.goto(label)
    with pytest.raises(AssemblyError, match="unbound"):
        builder.finish()


def test_double_bind_raises():
    builder = BytecodeBuilder()
    label = builder.new_label()
    builder.bind(label)
    with pytest.raises(AssemblyError):
        builder.bind(label)


def test_branch_rejects_non_branch_op():
    builder = BytecodeBuilder()
    with pytest.raises(AssemblyError):
        builder.branch(Op.ADD, builder.new_label())


def test_operand_validation():
    with pytest.raises(TypeError):
        Instruction(Op.LOAD, "not an int")
    with pytest.raises(ValueError):
        Instruction(Op.ADD, 3)
    with pytest.raises(TypeError):
        Instruction(Op.GETFIELD, "Box.v")


def test_into_sets_code_and_locals():
    method = JMethod("m", ["int"], "int", is_static=True)
    builder = BytecodeBuilder()
    builder.load(0).return_value()
    builder.into(method, max_locals=3)
    assert len(method.code) == 2
    assert method.max_locals == 3


def test_disassembly_mentions_labels_and_flags():
    program = Program()
    main = program.define_class("Main")
    method = JMethod("m", ["int"], "int", is_static=True,
                     is_synchronized=True)
    builder = BytecodeBuilder()
    target = builder.new_label()
    builder.load(0).const(0).branch(Op.IF_LT, target)
    builder.const(0).return_value()
    builder.bind(target)
    builder.const(1).return_value()
    builder.into(method, max_locals=1)
    main.add_method(method)
    text = disassemble_method(method)
    assert "static" in text and "synchronized" in text
    assert "L0" in text
    full = disassemble_program(program)
    assert "class Main" in full
    assert "class Object" in full
