"""Class model: resolution, layout, statics."""

import pytest

from repro.bytecode import (FIELD_BYTES, OBJECT_HEADER_BYTES, JClass,
                            JField, JMethod, Program, ResolutionError)


@pytest.fixture
def program():
    p = Program()
    animal = p.define_class("Animal")
    animal.add_field(JField("age", "int"))
    animal.add_field(JField("population", "int", is_static=True))
    animal.add_method(JMethod("speak", ["Animal"], "int"))
    dog = p.define_class("Dog", "Animal")
    dog.add_field(JField("tricks", "int"))
    dog.add_method(JMethod("speak", ["Dog"], "int"))
    p.define_class("Cat", "Animal")
    return p


def test_superclass_chain(program):
    names = [c.name for c in program.superclasses("Dog")]
    assert names == ["Dog", "Animal", "Object"]


def test_subclass_checks(program):
    assert program.is_subclass_of("Dog", "Animal")
    assert program.is_subclass_of("Dog", "Object")
    assert not program.is_subclass_of("Animal", "Dog")
    assert not program.is_subclass_of("Cat", "Dog")


def test_field_resolution_through_inheritance(program):
    assert program.resolve_field("Dog", "age").name == "age"
    with pytest.raises(ResolutionError):
        program.resolve_field("Animal", "tricks")


def test_method_resolution_overriding(program):
    assert program.resolve_virtual("Dog", "speak").holder.name == "Dog"
    assert program.resolve_virtual("Cat", "speak").holder.name == "Animal"


def test_has_overrides(program):
    animal_speak = program.lookup_class("Animal").methods["speak"]
    dog_speak = program.lookup_class("Dog").methods["speak"]
    assert program.has_overrides(animal_speak)
    assert not program.has_overrides(dog_speak)


def test_instance_layout(program):
    fields = [f.name for f in program.instance_fields("Dog")]
    assert fields == ["age", "tricks"]
    assert program.instance_size("Dog") == \
        OBJECT_HEADER_BYTES + 2 * FIELD_BYTES
    assert program.instance_size("Object") == OBJECT_HEADER_BYTES


def test_array_size(program):
    assert program.array_size(0) == 24
    assert program.array_size(10) == 24 + 80


def test_static_storage_shared_with_subclass(program):
    program.set_static("Dog", "population", 5)
    assert program.get_static("Animal", "population") == 5
    program.reset_statics()
    assert program.get_static("Animal", "population") == 0


def test_static_key_rejects_instance_field(program):
    with pytest.raises(ResolutionError):
        program.static_key("Dog", "age")


def test_duplicate_class_rejected(program):
    with pytest.raises(ValueError):
        program.define_class("Dog")


def test_duplicate_member_rejected(program):
    dog = program.lookup_class("Dog")
    with pytest.raises(ValueError):
        dog.add_field(JField("tricks", "int"))
    with pytest.raises(ValueError):
        dog.add_method(JMethod("speak", ["Dog"], "int"))


def test_method_lookup_by_qualified_name(program):
    assert program.method("Dog.speak").holder.name == "Dog"
    with pytest.raises(ResolutionError):
        program.method("Dog.missing")
