"""Property-based tests of the 64-bit Java arithmetic primitives."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.bytecode import (ArithmeticTrap, java_div, java_rem, java_shl,
                            java_shr, wrap_int)

INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
ANY_INT = st.integers(min_value=-(2**80), max_value=2**80)


@given(ANY_INT)
def test_wrap_int_is_in_range(value):
    wrapped = wrap_int(value)
    assert -(2**63) <= wrapped < 2**63


@given(INT64)
def test_wrap_int_identity_in_range(value):
    assert wrap_int(value) == value


@given(ANY_INT)
def test_wrap_int_congruence(value):
    assert (wrap_int(value) - value) % (2**64) == 0


@given(INT64, INT64)
def test_div_rem_reconstruction(a, b):
    if b == 0:
        with pytest.raises(ArithmeticTrap):
            java_div(a, b)
        return
    quotient, remainder = java_div(a, b), java_rem(a, b)
    assert wrap_int(quotient * b + remainder) == a


@given(INT64, INT64)
def test_rem_sign_follows_dividend(a, b):
    if b == 0:
        return
    remainder = java_rem(a, b)
    if remainder != 0:
        assert (remainder > 0) == (a > 0)
    assert abs(remainder) < abs(b) or b == -(2**63)


@given(INT64)
def test_div_truncates_toward_zero(a):
    if a == -(2**63):
        return  # overflow wraps, Java-style
    expected = abs(a) // 3
    if a < 0:
        expected = -expected
    assert java_div(a, 3) == expected


@given(INT64, st.integers(min_value=0, max_value=200))
def test_shift_count_masked_to_63(a, count):
    assert java_shl(a, count) == java_shl(a, count & 63)
    assert java_shr(a, count) == java_shr(a, count & 63)


@given(INT64)
def test_shr_preserves_sign(a):
    shifted = java_shr(a, 63)
    assert shifted == (0 if a >= 0 else -1)


@given(INT64, st.integers(min_value=0, max_value=50))
def test_shl_then_shr_roundtrip_for_small_values(value, shift):
    small = value % 1024  # fits in 10 bits; 10 + 50 < 63, no overflow
    assert java_shr(java_shl(small, shift), shift) == small
