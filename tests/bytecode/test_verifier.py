"""Bytecode verifier checks."""

import pytest

from repro.bytecode import (BytecodeBuilder, Instruction, JField, JMethod,
                            Op, Program, VerificationError, verify_method,
                            verify_program)


def make(program, build, params=None, ret="int", max_locals=2):
    method = JMethod("m", params or ["int"], ret, is_static=True)
    builder = BytecodeBuilder()
    build(builder)
    builder.into(method, max_locals=max_locals)
    program.lookup_class("Main").add_method(method)
    return method


@pytest.fixture
def program():
    p = Program()
    p.define_class("Main")
    box = p.define_class("Box")
    box.add_field(JField("v", "int"))
    box.add_field(JField("shared", "int", is_static=True))
    return p


def test_valid_method_passes(program):
    method = make(program, lambda bb: bb.load(0).const(1).add()
                  .return_value())
    verify_method(program, method)


def test_stack_underflow(program):
    method = make(program, lambda bb: bb.add().return_value())
    with pytest.raises(VerificationError, match="underflow"):
        verify_method(program, method)


def test_branch_target_out_of_range(program):
    method = JMethod("m", ["int"], "int", is_static=True, max_locals=1)
    method.code = [Instruction(Op.GOTO, 99)]
    program.lookup_class("Main").add_method(method)
    with pytest.raises(VerificationError, match="out of range"):
        verify_method(program, method)


def test_inconsistent_stack_depth_at_join(program):
    def build(bb):
        join = bb.new_label()
        bb.load(0).const(0).branch(Op.IF_EQ, join)
        bb.const(1)  # pushes on one path only
        bb.bind(join)
        bb.const(2).return_value()

    method = make(program, build)
    with pytest.raises(VerificationError, match="inconsistent"):
        verify_method(program, method)


def test_falling_off_the_end(program):
    method = make(program, lambda bb: bb.load(0).pop())
    with pytest.raises(VerificationError):
        verify_method(program, method)


def test_local_out_of_range(program):
    method = make(program, lambda bb: bb.load(7).return_value(),
                  max_locals=2)
    with pytest.raises(VerificationError, match="local slot"):
        verify_method(program, method)


def test_unknown_field(program):
    method = make(program, lambda bb: bb.const(None)
                  .getfield("Box", "nope").return_value())
    with pytest.raises(VerificationError, match="unknown field"):
        verify_method(program, method)


def test_static_mismatch(program):
    method = make(program, lambda bb: bb.getstatic("Box", "v")
                  .return_value())
    with pytest.raises(VerificationError, match="static-ness"):
        verify_method(program, method)


def test_void_return_in_value_method(program):
    method = make(program, lambda bb: bb.return_void())
    with pytest.raises(VerificationError, match="void return"):
        verify_method(program, method)


def test_value_return_in_void_method(program):
    method = make(program, lambda bb: bb.const(1).return_value(),
                  ret="void")
    with pytest.raises(VerificationError, match="value return"):
        verify_method(program, method)


def test_wrong_arg_count_in_method_ref(program):
    method = make(program, lambda bb: bb.const(1).const(2)
                  .invokestatic("Main", "callee", 2).return_value())
    callee = JMethod("callee", ["int"], "int", is_static=True,
                     max_locals=1)
    builder = BytecodeBuilder()
    builder.load(0).return_value()
    builder.into(callee)
    program.lookup_class("Main").add_method(callee)
    with pytest.raises(VerificationError, match="parameters"):
        verify_method(program, method)


def test_verify_program_walks_all_methods(program):
    make(program, lambda bb: bb.add().return_value())
    with pytest.raises(VerificationError):
        verify_program(program)


def test_native_method_with_code_rejected(program):
    method = JMethod("n", [], "int", is_native=True)
    method.code = [Instruction(Op.RETURN)]
    program.lookup_class("Main").add_method(method)
    with pytest.raises(VerificationError, match="native"):
        verify_method(program, method)
