"""Graph builder: differential execution against the interpreter, and
structural properties of the built graphs."""

import pytest

from repro.bytecode import Heap, Interpreter
from repro.frontend import build_graph
from repro.ir import nodes as N
from repro.lang import compile_source
from repro.runtime import Deoptimizer, GraphInterpreter


def execute_both(source, qualified, *argsets, natives=None):
    """Run the method via the bytecode interpreter and via the raw
    (unoptimized) graph; results and heap effects must match."""
    program_a = compile_source(source, natives=natives)
    interp_results = []
    interp = Interpreter(program_a)
    for args in argsets:
        program_a.reset_statics()
        interp_results.append(interp.call(qualified, *args))
    interp_stats = interp.heap.stats

    program_b = compile_source(source, natives=natives)
    heap = Heap(program_b)
    graph_interp_interp = Interpreter(program_b, heap)
    deopt = Deoptimizer(program_b, heap, graph_interp_interp)

    def invoke(kind, ref, args):
        if kind == "virtual":
            callee = program_b.resolve_virtual(args[0].class_name,
                                               ref.method_name)
        else:
            callee = program_b.resolve_method(ref.class_name,
                                              ref.method_name)
        return graph_interp_interp.invoke(callee, args)

    gi = GraphInterpreter(program_b, heap, invoke, deopt)
    graph = build_graph(program_b, program_b.method(qualified))
    graph_results = []
    for args in argsets:
        program_b.reset_statics()
        graph_results.append(gi.execute(graph, list(args)))
    assert graph_results == interp_results
    assert heap.stats.allocations == interp_stats.allocations
    assert heap.stats.allocated_bytes == interp_stats.allocated_bytes
    assert heap.stats.monitor_enters == interp_stats.monitor_enters
    assert heap.stats.monitor_exits == interp_stats.monitor_exits
    return graph, graph_results


def test_arithmetic_kernel():
    execute_both("""
        class C { static int m(int a, int b) {
            return (a + b) * (a - b) / ((b & 7) + 1) % 97;
        } }
    """, "C.m", (17, 5), (-3, 8), (0, 0))


def test_branches_and_phis():
    execute_both("""
        class C { static int m(int a) {
            int r = 0;
            if (a > 10) { r = a * 2; } else { r = a - 2; }
            if (a % 2 == 0 && r > 0) { r = r + 100; }
            return r;
        } }
    """, "C.m", (20,), (3,), (4,), (-7,))


def test_loops():
    execute_both("""
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                int j = i;
                while (j > 0) { s = s + 1; j = j - 2; }
            }
            return s;
        } }
    """, "C.m", (0,), (1,), (9,))


def test_objects_and_calls():
    execute_both("""
        class Acc {
            int total;
            void add(int v) { total = total + v; }
        }
        class C { static int m(int n) {
            Acc acc = new Acc();
            for (int i = 0; i < n; i = i + 1) { acc.add(i); }
            return acc.total;
        } }
    """, "C.m", (6,))


def test_arrays_and_guards():
    execute_both("""
        class C { static int m(int n) {
            int[] a = new int[n];
            for (int i = 0; i < n; i = i + 1) { a[i] = i * i; }
            int s = 0;
            for (int i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
            return s;
        } }
    """, "C.m", (8,))


def test_statics_and_monitors():
    execute_both("""
        class C {
            static Object lock;
            static int hits;
            static int m(int n) {
                lock = new Object();
                for (int i = 0; i < n; i = i + 1) {
                    synchronized (lock) { hits = hits + 1; }
                }
                return hits;
            }
        }
    """, "C.m", (5,))


def test_virtual_dispatch_through_graph():
    execute_both("""
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class C { static int m(int k) {
            A a = null;
            if (k > 0) { a = new B(); } else { a = new A(); }
            return a.f();
        } }
    """, "C.m", (1,), (-1,))


def test_null_guard_deopts_to_interpreter_error():
    from repro.bytecode import NullPointerError
    source = """
        class Box { int v; }
        class C { static int m(Box b) { return b.v; } }
    """
    program = compile_source(source)
    heap = Heap(program)
    interp = Interpreter(program, heap)
    deopt = Deoptimizer(program, heap, interp)
    gi = GraphInterpreter(program, heap, lambda *a: None, deopt)
    graph = build_graph(program, program.method("C.m"))
    with pytest.raises(NullPointerError):
        gi.execute(graph, [None])
    assert gi.stats.deopts == 1


def test_division_guard_deopts():
    from repro.bytecode import ArithmeticTrap
    source = "class C { static int m(int a, int b) { return a / b; } }"
    program = compile_source(source)
    heap = Heap(program)
    interp = Interpreter(program, heap)
    deopt = Deoptimizer(program, heap, interp)
    gi = GraphInterpreter(program, heap, lambda *a: None, deopt)
    graph = build_graph(program, program.method("C.m"))
    assert gi.execute(graph, [10, 3]) == 3
    with pytest.raises(ArithmeticTrap):
        gi.execute(graph, [10, 0])


def test_bounds_guard_deopts():
    from repro.bytecode import ArrayIndexError
    source = """
        class C { static int m(int i) {
            int[] a = new int[3];
            return a[i];
        } }
    """
    program = compile_source(source)
    heap = Heap(program)
    interp = Interpreter(program, heap)
    deopt = Deoptimizer(program, heap, interp)
    gi = GraphInterpreter(program, heap, lambda *a: None, deopt)
    graph = build_graph(program, program.method("C.m"))
    assert gi.execute(graph, [2]) == 0
    with pytest.raises(ArrayIndexError):
        gi.execute(graph, [3])


def test_throw_becomes_deopt_then_interpreter_raises():
    from repro.bytecode import ThrownException
    source = """
        class Err { }
        class C { static int m(int a) {
            if (a < 0) { throw new Err(); }
            return a;
        } }
    """
    program = compile_source(source)
    heap = Heap(program)
    interp = Interpreter(program, heap)
    deopt = Deoptimizer(program, heap, interp)
    gi = GraphInterpreter(program, heap, lambda *a: None, deopt)
    graph = build_graph(program, program.method("C.m"))
    assert gi.execute(graph, [5]) == 5
    with pytest.raises(ThrownException):
        gi.execute(graph, [-1])


def test_structure_loop_begin_single_forward_end():
    source = """
        class C { static int m(int n) {
            int s = 0;
            int i = 0;
            if (n > 100) { i = 1; }
            while (i < n) { s = s + i; i = i + 1; }
            return s;
        } }
    """
    program = compile_source(source)
    graph = build_graph(program, program.method("C.m"))
    for loop in graph.nodes_of(N.LoopBeginNode):
        assert len(loop.ends) == 1


def test_synchronized_method_graph_has_monitor_nodes():
    source = """
        class Box {
            int v;
            synchronized int get() { return v; }
        }
        class C { static int m() { return new Box().get(); } }
    """
    program = compile_source(source)
    graph = build_graph(program, program.method("Box.get"))
    enters = list(graph.nodes_of(N.MonitorEnterNode))
    exits = list(graph.nodes_of(N.MonitorExitNode))
    assert len(enters) == 1 and len(exits) == 1
    # Frame states of a synchronized method list the receiver lock.
    states = list(graph.nodes_of(N.FrameStateNode))
    assert states
    assert all(len(fs.locks) == 1 for fs in states)


def test_if_probabilities_come_from_profile():
    from repro.bytecode import Profile
    source = """
        class C { static int m(int a) {
            if (a > 0) { return 1; }
            return 0;
        } }
    """
    program = compile_source(source)
    profile = Profile()
    interp = Interpreter(program, profile=profile)
    for value in (1, 2, 3, 4, -1):
        interp.call("C.m", value)
    graph = build_graph(program, program.method("C.m"), profile)
    if_nodes = list(graph.nodes_of(N.IfNode))
    assert len(if_nodes) == 1
    # Codegen emits the negated compare (IF_LE to the else branch), so
    # the If's true side is the a <= 0 path: probability 1/5.
    assert if_nodes[0].true_probability == pytest.approx(0.2)
