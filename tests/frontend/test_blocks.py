"""Bytecode CFG analysis: blocks, dominators, loop headers."""

import pytest

from repro.bytecode import BytecodeBuilder, JMethod, Op, Program
from repro.frontend.blocks import BlockGraph
from repro.lang import compile_source


def block_graph_for(source, qualified):
    program = compile_source(source)
    return BlockGraph(program.method(qualified))


def test_straight_line_is_one_block():
    bg = block_graph_for(
        "class C { static int m(int a) { return a + 1; } }", "C.m")
    reachable = [b for b in bg.blocks if b.index in bg.reachable]
    assert len(reachable) == 1


def test_if_else_produces_diamond():
    bg = block_graph_for("""
        class C { static int m(int a) {
            int r = 0;
            if (a > 0) { r = 1; } else { r = 2; }
            return r;
        } }
    """, "C.m")
    headers = [b for b in bg.blocks if b.is_loop_header]
    assert not headers
    # entry branches to two blocks that rejoin.
    entry = bg.blocks[0]
    assert len(entry.successors) == 2


def test_loop_header_detected():
    bg = block_graph_for("""
        class C { static int m(int n) {
            int s = 0;
            while (n > 0) { s = s + n; n = n - 1; }
            return s;
        } }
    """, "C.m")
    headers = [b for b in bg.blocks if b.is_loop_header]
    assert len(headers) == 1
    header = headers[0]
    assert len(header.back_edge_preds) == 1
    members = bg.loop_blocks(header.index)
    assert header.index in members
    assert len(members) >= 2


def test_nested_loops():
    bg = block_graph_for("""
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < i; j = j + 1) { s = s + 1; }
            }
            return s;
        } }
    """, "C.m")
    headers = [b for b in bg.blocks if b.is_loop_header]
    assert len(headers) == 2
    inner = max(headers, key=lambda b: b.start)
    outer = min(headers, key=lambda b: b.start)
    assert bg.loop_blocks(inner.index) < bg.loop_blocks(outer.index)


def test_two_back_edges_from_continue():
    bg = block_graph_for("""
        class C { static int m(int n) {
            int s = 0;
            int i = 0;
            while (i < n) {
                i = i + 1;
                if (i % 3 == 0) { continue; }
                s = s + i;
            }
            return s;
        } }
    """, "C.m")
    headers = [b for b in bg.blocks if b.is_loop_header]
    assert len(headers) == 1
    # continue and the regular bottom edge both re-enter the header,
    # possibly merged by codegen; at least one back edge exists.
    assert len(headers[0].back_edge_preds) >= 1


def test_dominators():
    bg = block_graph_for("""
        class C { static int m(int a) {
            if (a > 0) { a = a + 1; } else { a = a - 1; }
            return a;
        } }
    """, "C.m")
    entry = 0
    for block in bg.blocks:
        if block.index in bg.reachable:
            assert bg.dominates(entry, block.index)
    succ_a, succ_b = bg.blocks[0].successors
    assert not bg.dominates(succ_a, succ_b)


def test_rpo_sources_before_targets_on_forward_edges():
    bg = block_graph_for("""
        class C { static int m(int n) {
            int s = 0;
            while (n > 0) {
                if (n % 2 == 0) { s = s + 1; }
                n = n - 1;
            }
            return s;
        } }
    """, "C.m")
    order = {b: i for i, b in enumerate(bg.rpo)}
    for block in bg.blocks:
        if block.index not in bg.reachable:
            continue
        for succ in block.successors:
            if block.index in bg.blocks[succ].back_edge_preds:
                continue
            assert order[block.index] < order[succ]


def test_unreachable_code_pruned():
    program = Program()
    program.define_class("Main")
    method = JMethod("m", [], "int", is_static=True)
    builder = BytecodeBuilder()
    done = builder.new_label()
    builder.goto(done)
    builder.const(99).return_value()  # unreachable
    builder.bind(done)
    builder.const(1).return_value()
    builder.into(method, max_locals=1)
    program.lookup_class("Main").add_method(method)
    bg = BlockGraph(method)
    unreachable = [b for b in bg.blocks if b.index not in bg.reachable]
    assert unreachable
    assert all(not b.successors for b in unreachable)
