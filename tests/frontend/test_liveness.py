"""Local-liveness analysis: unit cases plus a property check against a
brute-force path-based oracle."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.bytecode import BytecodeBuilder, JMethod, Op, Program
from repro.frontend.blocks import BlockGraph
from repro.frontend.liveness import LocalLiveness
from repro.lang import compile_source


def liveness_for(source, qualified="C.m"):
    program = compile_source(source)
    method = program.method(qualified)
    return method, LocalLiveness(BlockGraph(method))


def test_parameter_dead_after_last_use():
    method, liveness = liveness_for("""
        class C { static int m(int a, int b) {
            int c = a + 1;
            return c * b;
        } }
    """)
    # At bci 0, both parameters are live.
    assert {0, 1} <= liveness.live_before(0)
    # After 'c = a + 1' is computed, 'a' (slot 0) is dead.
    from repro.bytecode import Op as Opcode
    store_c = next(i for i, insn in enumerate(method.code)
                   if insn.op is Opcode.STORE and insn.operand == 2)
    assert 0 not in liveness.live_before(store_c + 1)
    assert 1 in liveness.live_before(store_c + 1)


def test_loop_carried_local_live_at_header():
    method, liveness = liveness_for("""
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) { s = s + i; }
            return s;
        } }
    """)
    block_graph = BlockGraph(method)
    headers = [b for b in block_graph.blocks if b.is_loop_header]
    assert headers
    live = liveness.live_before(headers[0].start)
    # n, s and i are loop-carried.
    assert len(live) >= 3


def test_scoped_temp_dead_at_outer_loop_header():
    method, liveness = liveness_for("""
        class Box { int v; }
        class C { static int m(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                Box b = new Box();
                b.v = i;
                s = s + b.v;
            }
            return s;
        } }
    """)
    block_graph = BlockGraph(method)
    header = next(b for b in block_graph.blocks if b.is_loop_header)
    live = liveness.live_before(header.start)
    # The slot holding 'b' is redefined before use in every iteration:
    # not live at the header (this is what prevents phantom loop phis).
    store_b = next(insn.operand for insn in method.code
                   if insn.op is Op.STORE and insn.operand >= 3)
    assert store_b not in live


def _brute_force_live(method, bci, slot, limit=4000):
    """Oracle: DFS over paths from bci; slot is live if some path reads
    it before writing it."""
    code = method.code
    from repro.bytecode.opcodes import Op as Opcode, info
    seen = set()
    stack = [bci]
    while stack and limit:
        limit -= 1
        position = stack.pop()
        if position in seen or position >= len(code):
            continue
        seen.add(position)
        insn = code[position]
        if insn.op is Opcode.LOAD and insn.operand == slot:
            return True
        if insn.op is Opcode.STORE and insn.operand == slot:
            continue  # killed along this path
        op_info = info(insn.op)
        if op_info.is_branch:
            stack.append(insn.operand)
            if insn.op is not Opcode.GOTO:
                stack.append(position + 1)
        elif not op_info.is_terminator:
            stack.append(position + 1)
    return False


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_liveness_matches_brute_force(seed):
    import random
    rng = random.Random(seed)
    # Generate a small random (but verifiable) method over 3 locals.
    program = Program()
    program.define_class("Main")
    method = JMethod("m", ["int", "int", "int"], "int", is_static=True)
    builder = BytecodeBuilder()
    labels = [builder.new_label() for _ in range(3)]
    used = set()
    for index in range(rng.randint(4, 14)):
        choice = rng.random()
        if choice < 0.3:
            builder.load(rng.randint(0, 2)).pop()
        elif choice < 0.6:
            builder.const(rng.randint(0, 9)).store(rng.randint(0, 2))
        elif choice < 0.8:
            label = rng.choice(labels)
            if id(label) not in used:
                builder.load(0).const(0).branch(Op.IF_LT, label)
        else:
            builder.load(rng.randint(0, 2)).const(1).add().pop()
    for label in labels:
        builder.bind(label)
    builder.load(rng.randint(0, 2)).return_value()
    builder.into(method, max_locals=3)
    program.lookup_class("Main").add_method(method)
    from repro.bytecode import verify_method
    verify_method(program, method)

    block_graph = BlockGraph(method)
    liveness = LocalLiveness(block_graph)
    for bci in range(len(method.code)):
        if block_graph.block_of_bci.get(bci) not in \
                block_graph.reachable:
            continue
        for slot in range(3):
            expected = _brute_force_live(method, bci, slot)
            assert liveness.is_live_before(bci, slot) == expected, (
                bci, slot)
