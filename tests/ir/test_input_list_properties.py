"""Property-based tests of the NodeInputList usage bookkeeping.

The def-use invariant everything else relies on: at any time, a node's
usage count for a user equals the number of input slots of that user
currently referencing it.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir import Graph, nodes as N


def build_pool(size=4):
    graph = Graph()
    pool = [graph.constant(i) for i in range(size)]
    state = graph.add(N.FrameStateNode(None, 0))
    return graph, pool, state


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(0, 3)),
        st.tuples(st.just("set"), st.integers(0, 30), st.integers(0, 3)),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("replace"), st.integers(0, 3),
                  st.integers(0, 3)),
        st.tuples(st.just("clear"), st.just(0)),
    ),
    max_size=40)


@settings(max_examples=200, deadline=None)
@given(OPS)
def test_usage_counts_match_model(operations):
    graph, pool, state = build_pool()
    node_list = state.locals_values
    model = []
    for op, *args in operations:
        if op == "append":
            value = pool[args[0]]
            node_list.append(value)
            model.append(value)
        elif op == "set":
            index, pool_index = args
            if model:
                index %= len(model)
                value = pool[pool_index]
                node_list[index] = value
                model[index] = value
        elif op == "pop":
            if model:
                assert node_list.pop() is model.pop()
        elif op == "replace":
            old, new = pool[args[0]], pool[args[1]]
            if old is not new:
                state.replace_input(old, new)
                model = [new if v is old else v for v in model]
        elif op == "clear":
            node_list.clear()
            model = []
        # Invariant: list contents match the model...
        assert list(node_list) == model
        # ...and every pool node's usage count equals its occurrences.
        for value in pool:
            expected = model.count(value)
            actual = value._usages.get(state, 0)
            assert actual == expected, (value, expected, actual)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=10))
def test_clear_inputs_releases_everything(picks):
    graph, pool, state = build_pool()
    for pick in picks:
        state.locals_values.append(pool[pick])
        state.stack_values.append(pool[pick])
    state.clear_inputs()
    for value in pool:
        assert state not in value._usages
