"""HTML/SVG graph visualization tests."""

import pytest

from repro.frontend import build_graph
from repro.ir.htmlviz import layout, render_html, render_svg, write_html
from repro.lang import compile_source

SOURCE = """
class Box { int v; }
class C {
    static Box g;
    static int m(int a) {
        Box b = new Box();
        b.v = a;
        if (a > 0) { g = b; }
        int s = 0;
        for (int i = 0; i < a; i = i + 1) { s = s + b.v; }
        return s;
    }
}
"""


@pytest.fixture
def graph():
    program = compile_source(SOURCE)
    return build_graph(program, program.method("C.m"))


def test_layout_covers_all_fixed_nodes(graph):
    positions = layout(graph)
    fixed = [n for n in graph.nodes() if n.is_fixed]
    for node in fixed:
        assert node in positions
    # No two nodes share a cell.
    assert len(set(positions.values())) == len(positions)


def test_svg_contains_nodes_and_edges(graph):
    svg = render_svg(graph)
    assert svg.startswith("<svg")
    assert "NewInstance" in svg
    assert "LoopBegin" in svg
    assert svg.count("<rect") >= 10
    assert "marker-end" in svg  # control edges


def test_frame_states_hidden_by_default(graph):
    import re

    def labeled(svg):
        return [t for t in re.findall(r"<text[^>]*>([^<]*)</text>", svg)
                if "FrameState" in t]

    assert not labeled(render_svg(graph))
    assert labeled(render_svg(graph, include_states=True))


def test_html_document(graph, tmp_path):
    path = write_html(graph, str(tmp_path / "g.html"))
    content = open(path).read()
    assert content.startswith("<!DOCTYPE html>")
    assert "control flow" in content
    assert "</html>" in content


def test_labels_are_escaped(graph):
    # repr of field refs contains dots/brackets; ensure no raw '<' from
    # node text leaks outside tags.
    svg = render_svg(graph)
    import re
    for text in re.findall(r"<text[^>]*>([^<]*)</text>", svg):
        assert "<" not in text
