"""Graph container: registration, surgery, verification."""

import pytest

from repro.ir import Graph, IRError, dump_graph, nodes as N, to_dot


def diamond_graph():
    """start -> if -> (t, f) -> merge(phi) -> return phi"""
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    p0 = graph.add(N.ParameterNode(0))
    graph.parameters = [p0]
    if_node = graph.add(N.IfNode(condition=p0))
    start.next = if_node
    t_begin = graph.add(N.BeginNode())
    f_begin = graph.add(N.BeginNode())
    if_node.true_successor = t_begin
    if_node.false_successor = f_begin
    t_end, f_end = graph.add(N.EndNode()), graph.add(N.EndNode())
    t_begin.next = t_end
    f_begin.next = f_end
    merge = graph.add(N.MergeNode())
    merge.add_end(t_end)
    merge.add_end(f_end)
    phi = graph.add(N.PhiNode(merge=merge))
    phi.values.extend([graph.constant(1), graph.constant(2)])
    ret = graph.add(N.ReturnNode(value=phi))
    merge.next = ret
    return graph, merge, phi


def test_diamond_verifies():
    graph, merge, phi = diamond_graph()
    graph.verify()


def test_phi_arity_mismatch_detected():
    graph, merge, phi = diamond_graph()
    phi.values.pop()
    with pytest.raises(IRError, match="inputs"):
        graph.verify()


def test_insert_before_and_remove_fixed():
    graph, merge, phi = diamond_graph()
    ret = merge.next
    load = N.LoadStaticNode.__new__(N.LoadStaticNode)
    # Build via constructor properly:
    from repro.bytecode import FieldRef
    load = N.LoadStaticNode(FieldRef("C", "f"))
    graph.insert_before(ret, load)
    assert merge.next is load and load.next is ret
    graph.verify()
    graph.remove_fixed(load)
    assert merge.next is ret
    graph.verify()


def test_remove_end_drops_phi_inputs():
    graph, merge, phi = diamond_graph()
    end = merge.ends[0]
    merge.remove_end(end)
    assert len(phi.values) == 1
    assert len(merge.ends) == 1


def test_adopt_moves_nodes_between_graphs():
    graph_a = Graph()
    c = graph_a.constant(7)
    graph_b = Graph()
    graph_b.adopt(c)
    assert c.graph is graph_b
    assert c not in graph_a


def test_add_registers_detached_inputs_recursively():
    graph = Graph()
    a = N.ConstantNode(1)
    neg = N.NegNode(value=a)
    graph.add(neg)
    assert a.graph is graph and neg.graph is graph


def test_unregistered_successor_detected():
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    detached = N.ReturnNode()
    start._succs["next"] = detached  # bypass property on purpose
    detached.predecessor = start
    with pytest.raises(IRError):
        graph.verify()


def test_dump_and_dot_render():
    graph, merge, phi = diamond_graph()
    text = dump_graph(graph)
    assert "Start" in text and "Merge" in text and "Phi" in text
    dot = to_dot(graph)
    assert dot.startswith("digraph") and "style=bold" in dot


def test_loop_structures_verify():
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    fwd = graph.add(N.EndNode())
    start.next = fwd
    loop = graph.add(N.LoopBeginNode())
    loop.add_end(fwd)
    phi = graph.add(N.PhiNode(merge=loop))
    phi.values.append(graph.constant(0))
    if_node = graph.add(N.IfNode(condition=phi))
    loop.next = if_node
    body = graph.add(N.BeginNode())
    exit_begin = graph.add(N.BeginNode())
    if_node.true_successor = body
    if_node.false_successor = exit_begin
    loop_end = graph.add(N.LoopEndNode())
    body.next = loop_end
    loop.add_loop_end(loop_end)
    phi.values.append(graph.constant(1))
    ret = graph.add(N.ReturnNode(value=phi))
    exit_begin.next = ret
    graph.verify()
    assert loop.phi_input_count() == 2
    assert loop.end_index(loop_end) == 1
