"""Textual graph dumps."""

import pytest

from repro.frontend import build_graph
from repro.ir import dump_graph, format_node, to_dot
from repro.ir import nodes as N
from repro.lang import compile_source

SOURCE = """
class Box { int v; }
class C {
    static int m(int a) {
        Box b = new Box();
        if (a > 0) { b.v = a; } else { b.v = -a; }
        int s = 0;
        for (int i = 0; i < a; i = i + 1) { s = s + b.v; }
        return s;
    }
}
"""


@pytest.fixture
def graph():
    program = compile_source(SOURCE)
    return build_graph(program, program.method("C.m"))


def test_dump_lists_control_flow_in_order(graph):
    text = dump_graph(graph, include_floating=False)
    lines = text.splitlines()
    assert lines[0].startswith("graph")
    start_at = next(i for i, l in enumerate(lines) if "Start" in l)
    return_at = max(i for i, l in enumerate(lines) if "Return" in l)
    assert start_at < return_at


def test_dump_shows_phis_under_their_merge(graph):
    text = dump_graph(graph, include_floating=False)
    lines = text.splitlines()
    merge_lines = [i for i, l in enumerate(lines)
                   if "Merge" in l or "LoopBegin" in l]
    assert merge_lines
    phi_lines = [i for i, l in enumerate(lines) if "Phi" in l]
    assert phi_lines
    # Every phi line follows some merge line.
    assert min(phi_lines) > min(merge_lines)


def test_floating_section_optional(graph):
    with_floating = dump_graph(graph, include_floating=True)
    without = dump_graph(graph, include_floating=False)
    assert "-- floating --" in with_floating
    assert "-- floating --" not in without
    assert len(with_floating) > len(without)


def test_format_node_includes_named_inputs(graph):
    store = next(iter(graph.nodes_of(N.StoreFieldNode)))
    text = format_node(store)
    assert "StoreField" in text
    assert "object=" in text and "value=" in text


def test_dot_edges_reference_existing_nodes(graph):
    import re
    dot = to_dot(graph)
    declared = set(re.findall(r"^  n(\d+) \[", dot, re.M))
    for src, dst in re.findall(r"n(\d+) -> n(\d+)", dot):
        assert src in declared and dst in declared


def test_dump_survives_post_pea_graph():
    from repro.jit import Compiler, CompilerConfig
    program = compile_source(SOURCE)
    result = Compiler(program,
                      CompilerConfig.partial_escape()).compile(
        program.method("C.m"))
    text = dump_graph(result.graph)
    assert "Start" in text and "Return" in text
