"""Node/edge machinery: usages, predecessors, input lists."""

import pytest

from repro.ir import Graph, IRError, nodes as N


def graph_with_start():
    graph = Graph()
    graph.start = graph.add(N.StartNode())
    return graph


def test_usage_tracking_on_input_slots():
    graph = Graph()
    a = graph.add(N.ConstantNode(1))
    b = graph.add(N.ConstantNode(2))
    add = graph.add(N.BinaryArithmeticNode("add", x=a, y=b))
    assert add in a.usages and add in b.usages
    add.x = b
    assert add not in a.usages
    assert b.usage_count() == 2


def test_duplicate_input_reference_counted():
    graph = Graph()
    a = graph.add(N.ConstantNode(1))
    add = graph.add(N.BinaryArithmeticNode("add", x=a, y=a))
    assert a.usage_count() == 2
    add.x = None
    assert a.usage_count() == 1
    assert add in a.usages


def test_input_list_operations():
    graph = Graph()
    merge = graph.add(N.MergeNode())
    phi = graph.add(N.PhiNode(merge=merge))
    v1, v2 = graph.constant(1), graph.constant(2)
    phi.values.append(v1)
    phi.values.append(v2)
    assert phi in v1.usages
    phi.values[0] = v2
    assert phi not in v1.usages
    assert v2.usage_count() == 2
    phi.values.pop()
    assert v2.usage_count() == 1


def test_replace_input_covers_lists_and_slots():
    graph = Graph()
    v1, v2 = graph.constant(1), graph.constant(2)
    state = graph.add(N.FrameStateNode(None, 0))
    state.locals_values.extend([v1, v1])
    state.replace_input(v1, v2)
    assert list(state.locals_values) == [v2, v2]
    assert state not in v1.usages


def test_successor_sets_predecessor():
    graph = graph_with_start()
    ret = graph.add(N.ReturnNode())
    graph.start.next = ret
    assert ret.predecessor is graph.start
    graph.start.next = None
    assert ret.predecessor is None


def test_second_predecessor_rejected():
    graph = graph_with_start()
    begin = graph.add(N.BeginNode())
    graph.start.next = begin
    other = graph.add(N.BeginNode())
    with pytest.raises(IRError, match="predecessor"):
        other.next = begin


def test_replace_at_usages():
    graph = Graph()
    a, b = graph.constant(1), graph.constant(2)
    add = graph.add(N.BinaryArithmeticNode("add", x=a, y=a))
    neg = graph.add(N.NegNode(value=a))
    a.replace_at_usages(b)
    assert add.x is b and add.y is b and neg.value is b
    assert a.has_no_usages()


def test_safe_delete_requires_no_usages():
    graph = Graph()
    a = graph.constant(1)
    graph.add(N.NegNode(value=a))
    with pytest.raises(IRError, match="usages"):
        a.safe_delete()


def test_unknown_input_kwarg_rejected():
    with pytest.raises(TypeError):
        N.ReturnNode(bogus=None)


def test_constants_are_value_numbered():
    graph = Graph()
    assert graph.constant(5) is graph.constant(5)
    assert graph.constant(None) is graph.null
    # bool and int constants don't collide
    assert graph.constant(1) is not graph.constant(True)


def test_node_repr_contains_id_and_name():
    graph = Graph()
    c = graph.constant(3)
    assert repr(c).startswith(f"{c.id}|Constant")
