"""Interprocedural escape summaries: per-parameter classifications on
hand-written methods, transitive and recursive propagation, order
independence, digest stability, and the ParamSummary join lattice."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.summaries import (MethodSummary, ParamEscape,
                                      ParamSummary, SummaryDatabase,
                                      SummaryView, summaries_for)
from repro.bytecode.instructions import MethodRef
from repro.lang import compile_source

SOURCE = """
class Box { int v; Box next; }
class Sink { static Box kept; }
class Main {
    static int ro(Box b) { return b.v + 1; }
    static int wr(Box b) { b.v = 5; return 0; }
    static Box ret(Box b) { return b; }
    static int cap(Box b) { Sink.kept = b; return 0; }
    static int link(Box a, Box b) { a.next = b; return 0; }
    static int unused(Box b, int k) { return k * 2; }
    static int locked(Box b) { synchronized (b) { return b.v + 1; } }
    static int viaro(Box b) { return ro(b); }
    static int viacap(Box b) { return cap(b); }
    static int rec(Box b, int n) {
        if (n <= 0) { return b.v + n; }
        return rec(b, n - 1);
    }
}
"""


def summary_of(program, qualified):
    return summaries_for(program).summary(program.method(qualified))


def test_classifications():
    program = compile_source(SOURCE)
    cases = {
        "Main.ro": ParamEscape.READONLY,
        "Main.wr": ParamEscape.NO_ESCAPE,
        "Main.ret": ParamEscape.RETURNED,
        "Main.cap": ParamEscape.CAPTURED,
        "Main.unused": ParamEscape.UNUSED,
        "Main.locked": ParamEscape.NO_ESCAPE,
    }
    for qualified, expected in cases.items():
        assert summary_of(program, qualified).param(0).classification \
            == expected, qualified


def test_borrowable_is_exactly_the_harmless_cases():
    program = compile_source(SOURCE)
    assert summary_of(program, "Main.ro").param(0).borrowable
    assert summary_of(program, "Main.unused").param(0).borrowable
    for escaping in ("Main.wr", "Main.ret", "Main.cap", "Main.locked",
                     "Main.link"):
        assert not summary_of(program, escaping).param(1 if
            escaping == "Main.link" else 0).borrowable, escaping


def test_arg_escape_records_flow_target():
    program = compile_source(SOURCE)
    summary = summary_of(program, "Main.link")
    # b is stored into a's subgraph: arg-escape flowing to param 0.
    assert summary.param(1).classification == ParamEscape.ARG_ESCAPE
    assert summary.param(1).flows_to == (0,)
    # a itself is only written, not escaped.
    assert summary.param(0).classification == ParamEscape.NO_ESCAPE


def test_transitive_propagation_through_calls():
    program = compile_source(SOURCE)
    assert summary_of(program, "Main.viaro").param(0).classification \
        == ParamEscape.READONLY
    assert summary_of(program, "Main.viacap").param(0).classification \
        == ParamEscape.CAPTURED


def test_recursion_converges_below_top():
    program = compile_source(SOURCE)
    summary = summary_of(program, "Main.rec")
    assert not summary.is_top
    assert summary.param(0).classification == ParamEscape.READONLY


def test_unresolvable_ref_is_top():
    program = compile_source(SOURCE)
    database = summaries_for(program)
    summary, return_type = database.invoke_summary(
        MethodRef("NoSuchClass", "nope", 1))
    assert summary.is_top
    assert summary.param(0).captured
    assert return_type == "Object"


def test_reordering_methods_preserves_digests():
    """Summaries (hence cache facts) are independent of declaration
    order — the fixpoint visits methods in sorted qualified-name
    order."""
    program_a = compile_source(SOURCE)
    # Same bodies, classes moved after Main, Main's methods reversed.
    reordered = """
class Main {
    static int rec(Box b, int n) {
        if (n <= 0) { return b.v + n; }
        return rec(b, n - 1);
    }
    static int viacap(Box b) { return cap(b); }
    static int viaro(Box b) { return ro(b); }
    static int locked(Box b) { synchronized (b) { return b.v + 1; } }
    static int unused(Box b, int k) { return k * 2; }
    static int link(Box a, Box b) { a.next = b; return 0; }
    static int cap(Box b) { Sink.kept = b; return 0; }
    static Box ret(Box b) { return b; }
    static int wr(Box b) { b.v = 5; return 0; }
    static int ro(Box b) { return b.v + 1; }
}
class Sink { static Box kept; }
class Box { int v; Box next; }
"""
    program_b = compile_source(reordered)
    database_a = summaries_for(program_a)
    database_b = summaries_for(program_b)
    for qualified in ("Main.ro", "Main.wr", "Main.ret", "Main.cap",
                      "Main.link", "Main.unused", "Main.locked",
                      "Main.viaro", "Main.viacap", "Main.rec"):
        assert database_a.digest(program_a.method(qualified)) == \
            database_b.digest(program_b.method(qualified)), qualified


def test_digest_stable_across_fresh_databases():
    program_a = compile_source(SOURCE)
    program_b = compile_source(SOURCE)
    database_a = SummaryDatabase(program_a)
    database_b = SummaryDatabase(program_b)
    for method in program_a.all_methods():
        if method.code is None:
            continue
        assert database_a.digest(method) == \
            database_b.digest(program_b.method(method.qualified_name))


def test_summaries_for_memoizes_per_program():
    program = compile_source(SOURCE)
    assert summaries_for(program) is summaries_for(program)


def test_view_records_consulted_digests_as_facts():
    program = compile_source(SOURCE)
    view = SummaryView(summaries_for(program))
    method = program.method("Main.ro")
    assert view.summary_for_call(
        MethodRef("Main", "ro", 1)) is not None
    facts = view.facts()
    assert isinstance(facts, tuple)
    assert facts == (("escape_summary", "Main.ro",
                      summaries_for(program).digest(method)),)


# -- the ParamSummary join lattice --------------------------------------------

_SEVERITY = [ParamEscape.UNUSED, ParamEscape.READONLY,
             ParamEscape.NO_ESCAPE, ParamEscape.RETURNED,
             ParamEscape.ARG_ESCAPE, ParamEscape.CAPTURED]

flags = st.booleans()
param_summaries = st.builds(
    ParamSummary, used=flags, read=flags, written=flags, locked=flags,
    returned=flags, captured=flags,
    flows_to=st.lists(st.integers(0, 3), max_size=3, unique=True)
        .map(lambda xs: tuple(sorted(xs))))


@settings(max_examples=200, deadline=None)
@given(param_summaries, param_summaries)
def test_join_is_an_upper_bound(a, b):
    joined = a.join(b)
    for name in ("used", "read", "written", "locked", "returned",
                 "captured"):
        assert getattr(joined, name) == \
            (getattr(a, name) or getattr(b, name))
    assert set(joined.flows_to) == set(a.flows_to) | set(b.flows_to)
    # Classification severity never decreases under join.
    assert _SEVERITY.index(joined.classification) >= max(
        _SEVERITY.index(a.classification),
        _SEVERITY.index(b.classification))
    # Borrowability is the conjunction: a borrow is only safe when
    # every joined behaviour allows it.
    assert joined.borrowable == (a.borrowable and b.borrowable)


@settings(max_examples=100, deadline=None)
@given(param_summaries, param_summaries, param_summaries)
def test_join_lattice_laws(a, b, c):
    assert a.join(a) == a
    assert a.join(b) == b.join(a)
    assert a.join(b).join(c) == a.join(b.join(c))


@settings(max_examples=100, deadline=None)
@given(param_summaries, param_summaries)
def test_method_summary_join_is_pointwise(a, b):
    ma = MethodSummary((a,))
    mb = MethodSummary((b,))
    assert ma.join(mb).params == (a.join(b),)
    # Width mismatch degrades soundly to top.
    wide = MethodSummary((a, b))
    assert ma.join(wide).is_top
