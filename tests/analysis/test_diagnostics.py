"""Lint passes: at least one positive and one negative case each, at
the level (bytecode or IR) the pass actually inspects."""

from repro.analysis.diagnostics import (check_dead_stores,
                                        check_monitor_balance,
                                        check_redundant_null_checks,
                                        lint_program)
from repro.bytecode.asmtext import assemble
from repro.lang import compile_source


def findings_by_pass(findings):
    by_pass = {}
    for finding in findings:
        by_pass.setdefault(finding.pass_name, []).append(finding)
    return by_pass


# -- monitor-balance -----------------------------------------------------------


MONITOR_BAD = """
class Data
  field int f0

class Main
  method naked_exit(Data) -> int static locals=1
    load 0
    monitorexit
    const 0
    return_value

  method locked_return(Data) -> int static locals=1
    load 0
    monitorenter
    const 0
    return_value
"""

MONITOR_GOOD = """
class Data
  field int f0

class Main
  method balanced(Data) -> int static locals=1
    load 0
    monitorenter
    load 0
    getfield Data.f0
    load 0
    monitorexit
    return_value
"""


def test_monitor_balance_positive():
    program = assemble(MONITOR_BAD, verify=False)
    findings = check_monitor_balance(program)
    messages = {(f.method, f.message) for f in findings}
    assert ("Main.naked_exit",
            "monitorexit may run with no monitor held") in messages
    assert ("Main.locked_return",
            "return may leave a monitor locked") in messages


def test_monitor_balance_negative():
    program = assemble(MONITOR_GOOD, verify=False)
    assert check_monitor_balance(program) == []


def test_monitor_balance_branch_dependent_depth():
    # One path locks, the other does not; the merged exit may run
    # unlocked — a finding at the exit *and* at the locked return.
    source = """
class Data
  field int f0

class Main
  method maybe(Data, int) -> int static locals=2
    load 1
    const 0
    if_le skip
    load 0
    monitorenter
  skip:
    load 0
    monitorexit
    const 0
    return_value
"""
    program = assemble(source, verify=False)
    findings = check_monitor_balance(program)
    assert any(f.message == "monitorexit may run with no monitor held"
               for f in findings)


# -- redundant-null-check ------------------------------------------------------


NULL_FRESH = """
class Data
  field int f0

class Main
  method fresh() -> int static locals=1
    new Data
    store 0
    load 0
    if_null taken
    const 0
    return_value
  taken:
    const 1
    return_value
"""

NULL_GUARDED = """
class Data
  field int f0

class Main
  method guarded(Data) -> int static locals=2
    load 0
    getfield Data.f0
    store 1
    load 0
    if_null taken
    load 1
    return_value
  taken:
    const 7
    return_value
"""

NULL_OK = """
class Data
  field int f0

class Main
  method ok(Data) -> int static locals=1
    load 0
    if_null taken
    const 0
    return_value
  taken:
    const 1
    return_value
"""


def test_null_check_on_fresh_allocation_positive():
    program = assemble(NULL_FRESH)
    findings = check_redundant_null_checks(program)
    assert len(findings) == 1
    assert "fresh allocation" in findings[0].message
    assert findings[0].method == "Main.fresh"


def test_null_check_dominated_by_guard_positive():
    # The getfield's implicit null_check guard dominates the explicit
    # if_null on the same value: the check can never be true.
    program = assemble(NULL_GUARDED)
    findings = check_redundant_null_checks(program)
    assert any("dominated by a null_check guard" in f.message
               for f in findings)


def test_first_null_check_is_not_flagged():
    program = assemble(NULL_OK)
    assert check_redundant_null_checks(program) == []


# -- dead-store-to-virtual -----------------------------------------------------


DEAD_STORE = """
class Data
  field int f0

class Main
  method dead() -> int static locals=1
    new Data
    store 0
    load 0
    const 1
    putfield Data.f0
    load 0
    const 2
    putfield Data.f0
    load 0
    getfield Data.f0
    return_value
"""

LIVE_STORE = """
class Data
  field int f0

class Main
  method live() -> int static locals=2
    new Data
    store 0
    load 0
    const 1
    putfield Data.f0
    load 0
    getfield Data.f0
    store 1
    load 0
    const 2
    putfield Data.f0
    load 1
    return_value
"""

BRANCH_STORE = """
class Data
  field int f0

class Main
  method maybe(int) -> int static locals=2
    new Data
    store 1
    load 1
    const 1
    putfield Data.f0
    load 0
    const 0
    if_le skip
    load 1
    const 2
    putfield Data.f0
  skip:
    load 1
    getfield Data.f0
    return_value
"""


def test_dead_store_positive():
    program = assemble(DEAD_STORE)
    findings = check_dead_stores(program)
    assert len(findings) == 1
    assert "overwritten before any read" in findings[0].message
    assert findings[0].method == "Main.dead"


def test_intervening_read_keeps_store_alive():
    program = assemble(LIVE_STORE)
    assert check_dead_stores(program) == []


def test_maybe_overwritten_store_is_not_flagged():
    # Must-analysis: overwritten on only one branch is not dead.
    program = assemble(BRANCH_STORE)
    assert check_dead_stores(program) == []


def test_escaping_allocation_is_not_tracked():
    # The same double store, but the object escapes to a static — loads
    # through the static could observe the first store's window.
    source = """
class Data
  field int f0

class Main
  field static Data g

  method escapes() -> int static locals=1
    new Data
    store 0
    load 0
    putstatic Main.g
    load 0
    const 1
    putfield Data.f0
    load 0
    const 2
    putfield Data.f0
    load 0
    getfield Data.f0
    return_value
"""
    program = assemble(source)
    assert check_dead_stores(program) == []


# -- the combined driver -------------------------------------------------------


def test_lint_program_orders_and_filters_passes():
    program = assemble(DEAD_STORE)
    all_findings = lint_program(program)
    only_monitor = lint_program(program, passes=["monitor-balance"])
    assert only_monitor == []
    assert len(all_findings) == 1
    assert all_findings[0].pass_name == "dead-store-to-virtual"


def test_source_language_programs_lint_clean():
    # Straight-line code from the source language compiles without any
    # of the linted defects.
    program = compile_source("""
class Pair {
    int a; int b;
    Pair(int a, int b) { this.a = a; this.b = b; }
}
class Main {
    static int main(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Pair p = new Pair(i, i * 2);
            acc = acc + p.a + p.b;
        }
        return acc;
    }
}
""")
    assert lint_program(program) == []
