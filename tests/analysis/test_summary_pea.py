"""Summary-guided PEA at invoke sites: null/borrow/materialize
decisions, the lock gate, ``f(o, o)`` identity, conservative behaviour
with summaries off, and the escape-summary cache facts."""

from repro.analysis.summaries import SummaryView, summaries_for
from repro.bytecode import Heap, Interpreter
from repro.bytecode.instructions import MethodRef
from repro.frontend import build_graph
from repro.jit import CompilationCache, CompilerConfig
from repro.jit.cache import validate_facts
from repro.lang import compile_source
from repro.opt import (CanonicalizerPhase, DeadCodeEliminationPhase,
                       GlobalValueNumberingPhase)
from repro.pea import PartialEscapePhase
from repro.runtime import Deoptimizer, GraphInterpreter

SOURCE = """
class Box { int v; int w; }
class Sink { static Box kept; }
class Main {
    static int ro(Box b) { return b.v + b.w; }
    static int use(Box b, int k) { return k * 3; }
    static int cap(Box b) { Sink.kept = b; return b.v; }
    static int same(Box a, Box b) {
        if (a == b) { return 2; }
        return 1;
    }
    static int run_null(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Box b = new Box();
            b.v = i;
            acc = acc + use(b, i);
        }
        return acc;
    }
    static int run_borrow(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Box b = new Box();
            b.v = i;
            b.w = i + 3;
            acc = acc + ro(b);
        }
        return acc;
    }
    static int run_cap(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Box b = new Box();
            b.v = i;
            acc = acc + cap(b);
        }
        return acc;
    }
    static int run_identity(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Box b = new Box();
            b.v = i;
            acc = acc + same(b, b);
        }
        return acc;
    }
    static int run_locked(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            Box b = new Box();
            b.v = i;
            synchronized (b) {
                acc = acc + ro(b);
            }
        }
        return acc;
    }
}
"""


def optimize(source, qualified, summaries=True):
    """No inlining, so every helper call stays a real InvokeNode — the
    shape the summary consultation exists for."""
    program = compile_source(source)
    graph = build_graph(program, program.method(qualified))
    CanonicalizerPhase().run(graph)
    GlobalValueNumberingPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    view = SummaryView(summaries_for(program)) if summaries else None
    pea = PartialEscapePhase(program, 2, summaries=view)
    pea.run(graph)
    CanonicalizerPhase().run(graph)
    GlobalValueNumberingPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    graph.verify()
    return program, graph, pea.last_result


def execute(program, graph, args):
    heap = Heap(program)
    interp = Interpreter(program, heap)
    deopt = Deoptimizer(program, heap, interp)

    def invoke(kind, ref, call_args):
        if kind == "virtual":
            callee = program.resolve_virtual(call_args[0].class_name,
                                             ref.method_name)
        else:
            callee = program.resolve_method(ref.class_name,
                                            ref.method_name)
        return interp.invoke(callee, call_args)

    gi = GraphInterpreter(program, heap, invoke, deopt)
    result = gi.execute(graph, list(args))
    return result, heap.stats


def reference(source, qualified, args):
    program = compile_source(source)
    interp = Interpreter(program)
    result = interp.call(qualified, *args)
    return result, interp.heap.stats


def test_unused_param_is_nulled():
    program, graph, pea = optimize(SOURCE, "Main.run_null")
    assert pea.nulled_args >= 1
    assert pea.materializations == 0
    assert pea.borrowed_args == 0
    result, stats = execute(program, graph, [9])
    expected, __ = reference(SOURCE, "Main.run_null", [9])
    assert result == expected
    assert stats.allocations == 0
    assert stats.stack_allocations == 0


def test_readonly_param_is_borrowed():
    program, graph, pea = optimize(SOURCE, "Main.run_borrow")
    assert pea.borrowed_args >= 1
    assert pea.materializations == 0
    result, stats = execute(program, graph, [8])
    expected, ref_stats = reference(SOURCE, "Main.run_borrow", [8])
    assert result == expected
    # The borrow is a zone allocation: invisible to the heap counter
    # the paper's Table 1 measures, visible in the stack counter.
    assert stats.allocations == 0
    assert stats.stack_allocations == 8
    assert ref_stats.allocations == 8


def test_borrow_event_attributes_the_allocation_site():
    __, __, pea = optimize(SOURCE, "Main.run_borrow")
    borrowed = [e for e in pea.events if e.kind == "borrowed"]
    assert borrowed
    assert borrowed[0].object_desc == "Box"
    assert "Main.ro" in borrowed[0].reason


def test_capturing_callee_still_materializes():
    program, graph, pea = optimize(SOURCE, "Main.run_cap")
    assert pea.nulled_args == 0
    assert pea.borrowed_args == 0
    assert pea.materializations >= 1
    result, stats = execute(program, graph, [7])
    expected, ref_stats = reference(SOURCE, "Main.run_cap", [7])
    assert result == expected
    assert stats.allocations == ref_stats.allocations == 7


def test_same_object_at_two_positions_keeps_identity():
    """``same(b, b)`` joins the two parameter summaries per object and
    passes one shared replacement — the callee's ``a == b`` must stay
    true."""
    program, graph, pea = optimize(SOURCE, "Main.run_identity")
    result, stats = execute(program, graph, [5])
    expected, __ = reference(SOURCE, "Main.run_identity", [5])
    assert result == expected == 2 * 5
    assert stats.allocations == 0


def test_elided_lock_blocks_the_borrow():
    """Inside a virtualized synchronized region the object's
    lock_count is nonzero: a borrowed copy would not carry the lock, so
    the object must materialize (re-acquiring its monitors)."""
    program, graph, pea = optimize(SOURCE, "Main.run_locked")
    assert pea.borrowed_args == 0
    assert pea.nulled_args == 0
    assert pea.materializations >= 1
    result, stats = execute(program, graph, [6])
    expected, ref_stats = reference(SOURCE, "Main.run_locked", [6])
    assert result == expected
    assert stats.monitor_enters == ref_stats.monitor_enters == 6
    assert stats.monitor_exits == ref_stats.monitor_exits == 6


def test_without_summaries_every_invoke_argument_escapes():
    program, graph, pea = optimize(SOURCE, "Main.run_borrow",
                                   summaries=False)
    assert pea.nulled_args == 0
    assert pea.borrowed_args == 0
    assert pea.materializations >= 1
    result, stats = execute(program, graph, [8])
    expected, ref_stats = reference(SOURCE, "Main.run_borrow", [8])
    assert result == expected
    assert stats.allocations == ref_stats.allocations == 8


def test_on_off_identical_when_no_decision_fires():
    """A capturing callee gives the summaries nothing to do: metrics
    must be bit-identical with the analysis on and off."""
    on = optimize(SOURCE, "Main.run_cap", summaries=True)
    off = optimize(SOURCE, "Main.run_cap", summaries=False)
    result_on, stats_on = execute(on[0], on[1], [11])
    result_off, stats_off = execute(off[0], off[1], [11])
    assert result_on == result_off
    assert stats_on == stats_off


# -- cache interaction ---------------------------------------------------------


def test_escape_summaries_changes_the_pipeline_key():
    program = compile_source(SOURCE)
    method = program.method("Main.run_borrow")
    plain = CompilationCache.compilation_key(
        program, method, CompilerConfig.partial_escape(), True)
    with_summaries = CompilationCache.compilation_key(
        program, method,
        CompilerConfig.partial_escape(escape_summaries=True), True)
    assert plain != with_summaries


def test_summary_facts_validate_by_recomputation():
    program = compile_source(SOURCE)
    view = SummaryView(summaries_for(program))
    assert view.summary_for_call(MethodRef("Main", "ro", 1)) is not None
    facts = view.facts()
    assert facts and facts[0][0] == "escape_summary"
    assert validate_facts(facts, program, None)

    # The same caller against a program whose callee now captures its
    # argument: the recorded digest no longer matches, the cached graph
    # (whose borrow decision relied on it) must not be reused.
    changed = SOURCE.replace(
        "static int ro(Box b) { return b.v + b.w; }",
        "static int ro(Box b) { Sink.kept = b; return b.v + b.w; }")
    program_b = compile_source(changed)
    assert not validate_facts(facts, program_b, None)


def test_unrelated_method_change_keeps_facts_valid():
    program = compile_source(SOURCE)
    view = SummaryView(summaries_for(program))
    view.summary_for_call(MethodRef("Main", "ro", 1))
    facts = view.facts()
    changed = SOURCE.replace("return k * 3;", "return k * 4;")
    program_b = compile_source(changed)
    assert validate_facts(facts, program_b, None)
