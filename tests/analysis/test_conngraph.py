"""Connection-graph escape analysis: unit behavior, structural
properties of the condensation, and the soundness differential against
PEA.

The soundness oracle is the same trick the equi-escape baseline uses in
production: an allocation the connection graph approves is claimed to
escape *nowhere*, so restricting the flow-sensitive PEA machinery to the
approved set must virtualize without a single materialization.  Any
materialization would mean the cheap analysis approved an allocation
that actually escapes on some path — unsound, not just imprecise.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import ConnectionGraph, tarjan_sccs
from repro.analysis.summaries import SummaryView, summaries_for
from repro.frontend import build_graph
from repro.lang import compile_source
from repro.opt import (CanonicalizerPhase, DeadCodeEliminationPhase,
                       InliningPhase)
from repro.pea import EquiEscapeSets
from repro.pea.effects import Effects
from repro.pea.processor import PEAProcessor

from fuzz_seed import hypothesis_seed
from repro.verify.generator import ProgramGenerator

_SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much])


def prepare(source, qualified, natives=None, inline=True):
    program = compile_source(source, natives=natives)
    graph = build_graph(program, program.method(qualified))
    if inline:
        InliningPhase(program).run(graph)
    CanonicalizerPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    return program, graph


# -- tarjan_sccs ------------------------------------------------------------


def test_tarjan_simple_cycle_is_one_component():
    edges = {1: [2], 2: [3], 3: [1], 4: [1]}
    components = tarjan_sccs([1, 2, 3, 4],
                             lambda v: edges.get(v, ()))
    assert sorted(sorted(c) for c in components) == [[1, 2, 3], [4]]
    # Reverse topological: the cycle (a successor of 4) comes first.
    assert set(components[0]) == {1, 2, 3}


def test_tarjan_deep_chain_does_not_recurse():
    n = 50_000  # far beyond the default Python recursion limit
    components = tarjan_sccs(
        range(n), lambda v: [v + 1] if v + 1 < n else [])
    assert len(components) == n


@hypothesis_seed
@_SETTINGS
@given(n=st.integers(min_value=1, max_value=30),
       edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)),
                      max_size=120))
def test_tarjan_condensation_is_a_dag_partition(n, edges):
    """The components partition the vertices, and every cross-component
    edge points to an *earlier* component (reverse topological order) —
    i.e. the condensation is acyclic."""
    adjacency = {}
    for u, v in edges:
        if u < n and v < n:
            adjacency.setdefault(u, []).append(v)
    components = tarjan_sccs(range(n),
                             lambda v: adjacency.get(v, ()))
    flat = [v for component in components for v in component]
    assert sorted(flat) == list(range(n))  # partition, no duplicates
    position = {v: i for i, component in enumerate(components)
                for v in component}
    for u, targets in adjacency.items():
        for v in targets:
            if position[u] != position[v]:
                assert position[v] < position[u]


# -- unit behavior ----------------------------------------------------------


def test_local_object_approved():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            b.v = a;
            return b.v;
        } }
    """
    program, graph = prepare(source, "C.m")
    assert len(ConnectionGraph(graph, program).analyze()) == 1


def test_returned_object_escapes():
    source = """
        class Box { int v; }
        class C { static Box m(int a) {
            Box b = new Box();
            b.v = a;
            return b;
        } }
    """
    program, graph = prepare(source, "C.m")
    assert not ConnectionGraph(graph, program).analyze()


def test_static_store_escapes():
    source = """
        class Box { int v; }
        class C {
            static Box g;
            static void m() { g = new Box(); }
        }
    """
    program, graph = prepare(source, "C.m")
    assert not ConnectionGraph(graph, program).analyze()


def test_unmodeled_call_argument_escapes():
    source = """
        class Box { int v; }
        class C {
            static native void sink(Box b);
            static void m() { sink(new Box()); }
        }
    """
    program, graph = prepare(source, "C.m",
                             natives={"C.sink": lambda i, a: None})
    assert not ConnectionGraph(graph, program).analyze()


def test_escaping_content_does_not_taint_container():
    """The precision win over the union-find baseline: the store edge
    is one-way (container -> content), so a content that escapes for
    its own reasons leaves its purely-local container alone."""
    source = """
        class Box { int v; }
        class Pair { Box a; }
        class C {
            static Box g;
            static int m(int x) {
                Pair p = new Pair();
                Box b = new Box();
                b.v = x;
                p.a = b;
                g = b;
                return p.a.v;
            }
        }
    """
    program, graph = prepare(source, "C.m")
    conngraph_approved = ConnectionGraph(graph, program).analyze()
    # p approved, b not: exactly one of the two allocations survives.
    assert len(conngraph_approved) == 1
    assert next(iter(conngraph_approved)).class_name == "Pair"
    # The union-find baseline merges p with b and loses both.
    assert not EquiEscapeSets(graph, program).analyze()


def test_escaping_container_taints_content():
    source = """
        class Box { int v; }
        class Pair { Box a; }
        class C {
            static Pair g;
            static void m() {
                Pair p = new Pair();
                p.a = new Box();
                g = p;
            }
        }
    """
    program, graph = prepare(source, "C.m")
    assert not ConnectionGraph(graph, program).analyze()


def test_summaries_unlock_call_arguments():
    """Without a summary a call argument is a worst-case escape root;
    the PR 5 summary of a read-only callee lifts it."""
    source = """
        class Box { int v; }
        class C {
            static void init(Box b) { b.v = 7; }
            static int m(int a) {
                Box b = new Box();
                init(b);
                return b.v + a;
            }
        }
    """
    program, graph = prepare(source, "C.m", inline=False)
    assert not ConnectionGraph(graph, program).analyze()
    view = SummaryView(summaries_for(program))
    assert len(ConnectionGraph(graph, program,
                               summaries=view).analyze()) == 1


def test_phi_merged_local_objects_approved():
    source = """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = null;
            if (a > 0) { b = new Box(); b.v = 1; }
            else { b = new Box(); b.v = 2; }
            return b.v;
        } }
    """
    program, graph = prepare(source, "C.m")
    assert len(ConnectionGraph(graph, program).analyze()) == 2


def test_phi_escape_taints_all_members():
    source = """
        class Box { int v; }
        class C {
            static Box g;
            static void m(int a) {
                Box b = null;
                if (a > 0) { b = new Box(); }
                else { b = new Box(); }
                g = b;
            }
        }
    """
    program, graph = prepare(source, "C.m")
    assert not ConnectionGraph(graph, program).analyze()


# -- properties on generated programs ---------------------------------------


def _generated_graphs(draw):
    """Build the three compiled methods of one generated program."""
    source = ProgramGenerator.from_hypothesis(draw).generate()
    program = compile_source(source)
    prepared = []
    for name in ("entry", "h1", "h2"):
        graph = build_graph(program, program.method(f"Main.{name}"))
        InliningPhase(program).run(graph)
        CanonicalizerPhase().run(graph)
        DeadCodeEliminationPhase().run(graph)
        prepared.append(graph)
    return source, program, prepared


@hypothesis_seed
@_SETTINGS
@given(data=st.data())
def test_escape_marking_is_monotone_in_roots(data):
    """Adding an escape root can only grow the escaped set (and shrink
    the approved set)."""
    source, program, graphs = _generated_graphs(data.draw)
    for graph in graphs:
        conngraph = ConnectionGraph(graph, program)
        conngraph.build()
        baseline = conngraph.escaped_nodes()
        candidates = [a for a in conngraph.allocations
                      if a not in conngraph.roots]
        if not candidates:
            continue
        conngraph.roots.add(candidates[0])
        widened = conngraph.escaped_nodes()
        assert widened >= baseline, source


#: Sources where conngraph approvals are straight-line scalar objects:
#: the flow-sensitive machinery must virtualize every approval without
#: a single materialization.  (Generated programs are excluded on
#: purpose — PEA also materializes for *mechanism* reasons unrelated to
#: escape: loop phis need runtime values, virtual arrays die on
#: unknown-index reads.  Behavioral soundness on the fuzz corpus is the
#: differential test below and the seventh fuzz engine.)
_STRAIGHT_LINE_SOURCES = (
    """
        class Box { int v; }
        class C { static int m(int a) {
            Box b = new Box();
            b.v = a;
            return b.v;
        } }
    """,
    """
        class Box { int v; }
        class Pair { Box a; }
        class C {
            static Box g;
            static int m(int x) {
                Pair p = new Pair();
                Box b = new Box();
                b.v = x;
                p.a = b;
                g = b;
                return p.a.v;
            }
        }
    """,
    """
        class Node { int v; Node next; }
        class C { static int m(int a) {
            Node head = new Node();
            Node tail = new Node();
            head.v = a;
            head.next = tail;
            tail.v = a * 2;
            return head.v + head.next.v;
        } }
    """,
)


@pytest.mark.parametrize("source", _STRAIGHT_LINE_SOURCES)
def test_approvals_are_sound_under_restricted_pea(source):
    """Soundness differential against the flow-sensitive machinery:
    restrict PEA to exactly the conngraph-approved allocations; on
    straight-line code a materialization would mean the cheap analysis
    approved an allocation that actually escapes somewhere."""
    program, graph = prepare(source, "C.m")
    approved = ConnectionGraph(graph, program).analyze()
    assert approved
    effects = Effects(graph)
    processor = PEAProcessor(graph, program, effects)
    processor.tool.allowed_allocations = approved
    tool = processor.run()
    assert tool.materializations == 0
    assert tool.virtualized_allocations == len(approved)


@hypothesis_seed
@_SETTINGS
@given(data=st.data(),
       a=st.integers(min_value=-20, max_value=20),
       b=st.integers(min_value=-20, max_value=20))
def test_conngraph_tier_behavioral_differential(data, a, b):
    """End-to-end soundness: generated programs run under the
    connection-graph tier (stack allocation + lock elision, no PEA)
    must match the reference interpreter on results and final statics,
    keep monitors balanced, and never allocate more."""
    from repro.bytecode import Interpreter
    from repro.jit import VM, CompilerConfig

    source = ProgramGenerator.from_hypothesis(data.draw).generate()
    program = compile_source(source)
    interp = Interpreter(program)
    before = interp.heap.stats.copy()
    expected = interp.call("Main.entry", a, b)
    interp_delta = interp.heap.stats.delta(before)
    expected_gi = program.get_static("Main", "gi")
    program.reset_statics()

    prog = compile_source(source)
    vm = VM(prog, CompilerConfig.conngraph(compile_threshold=3))
    for _ in range(6):
        vm.call("Main.entry", a, b)
        prog.reset_statics()
    before = vm.heap_snapshot()
    result = vm.call("Main.entry", a, b)
    delta = vm.heap_snapshot().delta(before)
    assert result == expected, source
    assert prog.get_static("Main", "gi") == expected_gi, source
    assert delta.monitor_enters == delta.monitor_exits, source
    assert delta.allocations <= interp_delta.allocations, source


@hypothesis_seed
@_SETTINGS
@given(data=st.data())
def test_conngraph_refines_equi_escape(data):
    """The one-way store edge makes the connection graph at least as
    precise as the union-find baseline on every graph."""
    source, program, graphs = _generated_graphs(data.draw)
    for graph in graphs:
        equi = EquiEscapeSets(graph, program).analyze()
        conngraph = ConnectionGraph(graph, program).analyze()
        assert equi <= conngraph, source
