"""Property tests for the generic worklist dataflow solver.

The key invariants: the solver lands on a genuine fixed point of the
transfer equations, re-solving is deterministic, an acyclic CFG takes
exactly one transfer per block (processing order respects the adapter's
iteration order), and widening bounds ascent in infinite-height
lattices.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import (BackwardSolver, ForwardSolver,
                                     solve_backward, solve_forward)


class ListCFG:
    """Minimal adapter: blocks ``0..n-1``, explicit edge list, block 0
    is the entry (forward) and the highest block the exit (backward)."""

    def __init__(self, n, edges):
        self.n = n
        self.edges = sorted(set(edges))

    def blocks(self):
        return list(range(self.n))

    def successors(self, block):
        return [t for s, t in self.edges if s == block]

    def predecessors(self, block):
        return [s for s, t in self.edges if t == block]

    def is_loop_header(self, block):
        return any(s >= block for s, t in self.edges if t == block)


class ReachingBlocks:
    """May-analysis: the set of blocks on some path to this block.
    ``None`` is unreachable (bottom)."""

    def bottom(self):
        return None

    def entry_state(self):
        return frozenset()

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    def transfer(self, block, state):
        if state is None:
            return None
        return state | {block}


@st.composite
def dag_cfgs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    edges = []
    for target in range(1, n):
        preds = draw(st.lists(st.integers(0, target - 1), min_size=1,
                              max_size=3, unique=True))
        edges.extend((p, target) for p in preds)
    return ListCFG(n, edges)


@st.composite
def loopy_cfgs(draw):
    cfg = draw(dag_cfgs())
    backs = draw(st.lists(
        st.tuples(st.integers(1, cfg.n - 1), st.integers(1, cfg.n - 1)),
        max_size=3))
    extra = [(max(a, b), min(a, b)) for a, b in backs]
    return ListCFG(cfg.n, cfg.edges + extra)


def assert_forward_fixed_point(cfg, analysis, result):
    for block in cfg.blocks():
        preds = cfg.predecessors(block)
        if preds:
            expected = None
            for pred in preds:
                out = result.block_out.get(pred)
                if out is None:
                    continue
                expected = out if expected is None else \
                    analysis.join(expected, out)
            if expected is None:
                expected = analysis.bottom()
        else:
            expected = analysis.entry_state()
        assert result.state_in(block) == expected
        assert result.state_out(block) == \
            analysis.transfer(block, result.state_in(block))


@settings(max_examples=60, deadline=None)
@given(dag_cfgs())
def test_dag_takes_one_sweep(cfg):
    """On an acyclic CFG processed in topological order every block's
    transfer runs exactly once — ``iterations`` counts them."""
    result = solve_forward(cfg, ReachingBlocks())
    assert result.iterations == cfg.n
    assert_forward_fixed_point(cfg, ReachingBlocks(), result)


@settings(max_examples=60, deadline=None)
@given(loopy_cfgs())
def test_fixed_point_equations_hold(cfg):
    analysis = ReachingBlocks()
    result = ForwardSolver(cfg, analysis).solve()
    assert_forward_fixed_point(cfg, analysis, result)


@settings(max_examples=40, deadline=None)
@given(loopy_cfgs())
def test_resolve_is_idempotent(cfg):
    """Solving twice from scratch reproduces the same fixed point with
    the same number of transfer applications (the worklist discipline
    is deterministic)."""
    first = solve_forward(cfg, ReachingBlocks())
    second = solve_forward(cfg, ReachingBlocks())
    assert first.block_in == second.block_in
    assert first.block_out == second.block_out
    assert first.iterations == second.iterations


@settings(max_examples=60, deadline=None)
@given(loopy_cfgs())
def test_solution_is_sound_over_join(cfg):
    """Every edge's dataflow is absorbed: out[src] joined into in[dst]
    changes nothing (the solution is above all its inputs)."""
    analysis = ReachingBlocks()
    result = solve_forward(cfg, analysis)
    for src, dst in cfg.edges:
        out = result.block_out.get(src)
        if out is None:
            continue
        joined = analysis.join(result.state_in(dst), out)
        assert joined == result.state_in(dst)


@settings(max_examples=40, deadline=None)
@given(dag_cfgs())
def test_backward_fixed_point(cfg):
    """The backward solver satisfies the mirrored equations (sources
    are successors)."""
    analysis = ReachingBlocks()
    result = BackwardSolver(cfg, analysis).solve()
    for block in cfg.blocks():
        succs = cfg.successors(block)
        if succs:
            expected = None
            for succ in succs:
                out = result.block_out.get(succ)
                if out is None:
                    continue
                expected = out if expected is None else \
                    analysis.join(expected, out)
            if expected is None:
                expected = analysis.bottom()
        else:
            expected = analysis.entry_state()
        assert result.state_in(block) == expected


class CountingAscent:
    """Infinite-height lattice (increasing integers) that only
    terminates through widening at the loop header."""

    TOP = 10 ** 9

    def bottom(self):
        return None

    def entry_state(self):
        return 0

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)

    def transfer(self, block, state):
        if state is None:
            return None
        return state + 1

    def widen(self, old, new):
        return self.TOP if new > old else old


def test_widening_bounds_loop_ascent():
    # 0 -> 1 -> 1 (self loop) -> 2: without widening the counter would
    # climb one unit per visit, far beyond any reasonable iteration
    # count; widening at the header jumps to TOP after widen_after
    # visits.
    cfg = ListCFG(3, [(0, 1), (1, 1), (1, 2)])
    result = solve_forward(cfg, CountingAscent())
    assert result.state_out(2) >= CountingAscent.TOP
    assert result.iterations < 50


def test_backward_helper_matches_solver():
    cfg = ListCFG(3, [(0, 1), (1, 2)])
    via_helper = solve_backward(cfg, ReachingBlocks())
    via_class = BackwardSolver(cfg, ReachingBlocks()).solve()
    assert via_helper.block_in == via_class.block_in
    assert via_helper.block_out == via_class.block_out
