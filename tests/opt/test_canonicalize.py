"""Canonicalizer: folding, identities, branch elimination."""

import pytest

from repro.frontend import build_graph
from repro.ir import Graph, nodes as N
from repro.lang import compile_source
from repro.opt import CanonicalizerPhase, DeadCodeEliminationPhase


def build(source, qualified="C.m"):
    program = compile_source(source)
    return program, build_graph(program, program.method(qualified))


def canonicalize(graph):
    CanonicalizerPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    graph.verify()
    return graph


def returned_value(graph):
    rets = list(graph.nodes_of(N.ReturnNode))
    assert len(rets) == 1
    return rets[0].value


def test_constant_folding_arithmetic():
    program, graph = build(
        "class C { static int m() { return (3 + 4) * 2 - 5; } }")
    canonicalize(graph)
    value = returned_value(graph)
    assert isinstance(value, N.ConstantNode) and value.value == 9


def test_add_zero_identity():
    program, graph = build(
        "class C { static int m(int a) { return a + 0; } }")
    canonicalize(graph)
    assert isinstance(returned_value(graph), N.ParameterNode)


def test_mul_identities():
    program, graph = build(
        "class C { static int m(int a) { return (a * 1) + (a * 0); } }")
    canonicalize(graph)
    assert isinstance(returned_value(graph), N.ParameterNode)


def test_sub_self_is_zero():
    program, graph = build(
        "class C { static int m(int a) { return a - a; } }")
    canonicalize(graph)
    value = returned_value(graph)
    assert isinstance(value, N.ConstantNode) and value.value == 0


def test_compare_folding_collapses_branch():
    program, graph = build("""
        class C { static int m() {
            int r = 0;
            if (3 < 5) { r = 1; } else { r = 2; }
            return r;
        } }
    """)
    canonicalize(graph)
    assert not list(graph.nodes_of(N.IfNode))
    value = returned_value(graph)
    assert isinstance(value, N.ConstantNode) and value.value == 1


def test_dead_branch_allocation_removed_with_branch():
    program, graph = build("""
        class Box { int v; }
        class C { static int m() {
            if (1 == 2) { Box b = new Box(); b.v = 3; return b.v; }
            return 7;
        } }
    """)
    assert list(graph.nodes_of(N.NewInstanceNode))
    canonicalize(graph)
    assert not list(graph.nodes_of(N.NewInstanceNode))
    value = returned_value(graph)
    assert value.value == 7


def test_division_by_zero_not_folded():
    program, graph = build(
        "class C { static int m() { return 1 / 0; } }")
    canonicalize(graph)
    # The guard's condition folded to 0 -> guard becomes Deoptimize.
    assert list(graph.nodes_of(N.DeoptimizeNode))
    assert not list(graph.nodes_of(N.ReturnNode))


def test_guard_with_true_condition_removed():
    program, graph = build(
        "class C { static int m(int a) { return a / 2; } }")
    guards_before = list(graph.nodes_of(N.FixedGuardNode))
    assert guards_before
    canonicalize(graph)
    assert not list(graph.nodes_of(N.FixedGuardNode))


def test_is_null_on_allocation_folds():
    program, graph = build("""
        class Box { }
        class C { static boolean m() { return new Box() == null; } }
    """)
    canonicalize(graph)
    value = returned_value(graph)
    assert isinstance(value, N.ConstantNode) and value.value == 0


def test_null_guard_on_fresh_allocation_absent():
    program, graph = build("""
        class Box { int v; }
        class C { static int m() {
            Box b = new Box();
            return b.v;
        } }
    """)
    # The builder already knows allocations are non-null.
    assert not [g for g in graph.nodes_of(N.FixedGuardNode)
                if g.reason == "null_check"]


def test_degenerate_phi_removed():
    program, graph = build("""
        class C { static int m(int a) {
            int r = 5;
            if (a > 0) { r = 5; }
            return r + a;
        } }
    """)
    canonicalize(graph)
    assert not list(graph.nodes_of(N.PhiNode))


def test_while_false_loop_removed():
    program, graph = build("""
        class C { static int m(int a) {
            while (1 > 2) { a = a + 1; }
            return a;
        } }
    """)
    canonicalize(graph)
    assert not list(graph.nodes_of(N.LoopBeginNode))
    assert isinstance(returned_value(graph), N.ParameterNode)


def test_ref_equals_same_input_folds():
    program, graph = build("""
        class C { static boolean m(Object o) { return o == o; } }
    """)
    canonicalize(graph)
    value = returned_value(graph)
    assert isinstance(value, N.ConstantNode) and value.value == 1


def test_fixed_point_iterates():
    # Folding one layer exposes the next: ((1+2)+3)+p*0 -> 6
    program, graph = build(
        "class C { static int m(int p) { return ((1+2)+3) + p * 0; } }")
    canonicalize(graph)
    value = returned_value(graph)
    assert isinstance(value, N.ConstantNode) and value.value == 6
