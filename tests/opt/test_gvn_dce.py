"""Global value numbering and dead code elimination."""

import pytest

from repro.frontend import build_graph
from repro.ir import nodes as N
from repro.lang import compile_source
from repro.opt import (CanonicalizerPhase, DeadCodeEliminationPhase,
                       GlobalValueNumberingPhase)


def build(source, qualified="C.m"):
    program = compile_source(source)
    return program, build_graph(program, program.method(qualified))


def count(graph, node_type):
    return len(list(graph.nodes_of(node_type)))


class TestGVN:
    def test_common_subexpression_merged(self):
        program, graph = build(
            "class C { static int m(int a, int b) {"
            " return (a + b) * (a + b); } }")
        assert count(graph, N.BinaryArithmeticNode) == 3
        GlobalValueNumberingPhase().run(graph)
        graph.verify()
        assert count(graph, N.BinaryArithmeticNode) == 2

    def test_commutativity_normalized(self):
        program, graph = build(
            "class C { static int m(int a, int b) {"
            " return (a + b) + (b + a); } }")
        GlobalValueNumberingPhase().run(graph)
        adds = [n for n in graph.nodes_of(N.BinaryArithmeticNode)]
        assert len(adds) == 2  # a+b (once) and the outer sum

    def test_non_commutative_not_merged(self):
        program, graph = build(
            "class C { static int m(int a, int b) {"
            " return (a - b) + (b - a); } }")
        GlobalValueNumberingPhase().run(graph)
        subs = [n for n in graph.nodes_of(N.BinaryArithmeticNode)
                if n.op == "sub"]
        assert len(subs) == 2

    def test_compares_merged(self):
        program, graph = build("""
            class C { static int m(int a, int b) {
                int r = 0;
                if (a < b) { r = r + 1; }
                if (a < b) { r = r + 1; }
                return r;
            } }
        """)
        assert count(graph, N.IntCompareNode) == 2
        GlobalValueNumberingPhase().run(graph)
        assert count(graph, N.IntCompareNode) == 1

    def test_loads_never_merged(self):
        program, graph = build("""
            class Box { int v; }
            class C { static int m(Box b) { return b.v + b.v; } }
        """)
        GlobalValueNumberingPhase().run(graph)
        assert count(graph, N.LoadFieldNode) == 2


class TestDCE:
    def test_unused_pure_load_removed(self):
        program, graph = build("""
            class Box { int v; }
            class C { static int m(Box b) {
                int dead = b.v;
                return 1;
            } }
        """)
        # The load survives if a frame state references it; this method
        # has no side effects after the load except the return.
        DeadCodeEliminationPhase().run(graph)
        graph.verify()
        assert count(graph, N.LoadFieldNode) == 0

    def test_unused_allocation_kept(self):
        # Removing unused allocations is Escape Analysis' job, not DCE's.
        program, graph = build("""
            class Box { }
            class C { static int m() {
                Box dead = new Box();
                return 1;
            } }
        """)
        DeadCodeEliminationPhase().run(graph)
        assert count(graph, N.NewInstanceNode) == 1

    def test_store_never_removed(self):
        program, graph = build("""
            class Box { int v; }
            class C { static void m(Box b) { b.v = 1; } }
        """)
        DeadCodeEliminationPhase().run(graph)
        assert count(graph, N.StoreFieldNode) == 1

    def test_orphaned_floating_chain_swept(self):
        program, graph = build(
            "class C { static int m(int a) { int x = a * 3 + 1;"
            " return a; } }")
        before = graph.node_count()
        DeadCodeEliminationPhase().run(graph)
        assert graph.node_count() < before
        assert count(graph, N.BinaryArithmeticNode) == 0
