"""Stack allocation phase tests."""

import pytest

from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

#: A phi-merged allocation: PEA must materialize (a phi needs runtime
#: values), but the object still never escapes the method.
PHI_MERGED = """
    class Box { int v; }
    class C {
        static int m(int a) {
            Box b = null;
            if (a > 0) { b = new Box(); b.v = 1; }
            else { b = new Box(); b.v = 2; }
            return b.v + a;
        }
        static int run(int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) { acc = acc + m(i - n / 2); }
            return acc;
        }
    }
"""


def run_vm(escape_tier):
    program = compile_source(PHI_MERGED)
    config = CompilerConfig.partial_escape(escape_tier=escape_tier)
    vm = VM(program, config)
    for _ in range(30):
        vm.call("C.run", 20)
    before = vm.heap_snapshot()
    result = vm.call("C.run", 100)
    return result, vm.heap_snapshot().delta(before), vm


def test_phi_merged_allocations_move_to_the_stack():
    result_off, stats_off, __ = run_vm("pea")
    result_on, stats_on, __ = run_vm("pea+stack")
    assert result_on == result_off
    # PEA alone cannot remove the phi-merged Box...
    assert stats_off.allocations == 100
    assert stats_off.stack_allocations == 0
    # ...but stack allocation takes it off the GC heap.
    assert stats_on.allocations == 0
    assert stats_on.stack_allocations == 100
    assert stats_on.stack_allocated_bytes == \
        stats_off.allocated_bytes


def test_conngraph_stack_allocation_matches_equi():
    # The connection-graph analysis drives the same phase through
    # ``+cgstack``; on this corpus it must approve at least the
    # phi-merged Box the equi-escape analysis approves.
    result_off, stats_off, __ = run_vm("pea")
    result_cg, stats_cg, __ = run_vm("pea+cgstack")
    assert result_cg == result_off
    assert stats_cg.allocations == 0
    assert stats_cg.stack_allocations == 100


def test_stack_allocation_is_cheaper():
    __, __, vm_off = run_vm("pea")
    __, __, vm_on = run_vm("pea+stack")
    # Fresh cycle measurement on identical final calls:
    def cycles(vm):
        before = vm.cycles_snapshot()
        vm.call("C.run", 200)
        return vm.cycles_snapshot() - before
    assert cycles(vm_on) < cycles(vm_off)


def test_escaping_objects_stay_on_heap():
    source = """
        class Box { int v; }
        class C {
            static Box g;
            static int m(int a) {
                Box b = new Box();
                b.v = a;
                g = b;
                return b.v;
            }
        }
    """
    program = compile_source(source)
    vm = VM(program, CompilerConfig.partial_escape(
        escape_tier="pea+stack"))
    for _ in range(30):
        vm.call("C.m", 5)
    before = vm.heap_snapshot()
    vm.call("C.m", 9)
    delta = vm.heap_snapshot().delta(before)
    assert delta.allocations == 1
    assert delta.stack_allocations == 0
    assert program.get_static("C", "g").fields["v"] == 9


def test_off_by_default():
    config = CompilerConfig.partial_escape()
    assert config.static_tier_spec().stack_analysis is None


def test_legacy_boolean_still_works_via_shim():
    from repro.jit import options as jit_options
    jit_options._DEPRECATION_WARNED.clear()  # warning is once-per-knob
    with pytest.warns(DeprecationWarning):
        config = CompilerConfig.partial_escape(stack_allocation=True)
    assert config.escape_tier == "pea+stack"
    assert config.stack_allocation is True
