"""Inlining: mechanics, policy, frame-state chaining."""

import pytest

from repro.frontend import build_graph
from repro.ir import nodes as N
from repro.lang import compile_source
from repro.opt import (CanonicalizerPhase, DeadCodeEliminationPhase,
                       InliningPhase, InliningPolicy)


def build(source, qualified="C.m"):
    program = compile_source(source)
    return program, build_graph(program, program.method(qualified))


def inline(program, graph, policy=None):
    phase = InliningPhase(program, policy)
    phase.run(graph)
    graph.verify()
    return phase


def invokes(graph):
    return list(graph.nodes_of(N.InvokeNode))


def test_static_call_inlined():
    program, graph = build("""
        class C {
            static int callee(int x) { return x * 2; }
            static int m(int a) { return callee(a) + 1; }
        }
    """)
    assert len(invokes(graph)) == 1
    phase = inline(program, graph)
    assert not invokes(graph)
    assert "C.callee" in phase.inlined


def test_monomorphic_virtual_inlined():
    program, graph = build("""
        class Box { int v; int get() { return v; } }
        class C { static int m(Box b) { return b.get(); } }
    """)
    inline(program, graph)
    assert not invokes(graph)


def test_polymorphic_virtual_not_inlined():
    program, graph = build("""
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class C { static int m(A a) { return a.f(); } }
    """)
    inline(program, graph)
    assert len(invokes(graph)) == 1


def test_native_not_inlined():
    program, graph = build("""
        class C {
            static native int host(int x);
            static int m(int a) { return host(a); }
        }
    """)
    inline(program, graph)
    assert len(invokes(graph)) == 1


def test_recursion_not_inlined_forever():
    program, graph = build("""
        class C {
            static int fact(int n) {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            static int m(int a) { return fact(a); }
        }
    """)
    inline(program, graph)
    # fact is inlined once into m, but fact's self-call remains.
    assert len(invokes(graph)) == 1


def test_size_policy_respected():
    program, graph = build("""
        class C {
            static int big(int x) {
                int s = 0;
                s = s + x; s = s + x; s = s + x; s = s + x;
                s = s + x; s = s + x; s = s + x; s = s + x;
                s = s + x; s = s + x; s = s + x; s = s + x;
                return s;
            }
            static int m(int a) { return big(a); }
        }
    """)
    policy = InliningPolicy(max_callee_size=5)
    inline(program, graph, policy)
    assert len(invokes(graph)) == 1


def test_frame_states_chained_to_call_site():
    program, graph = build("""
        class Box {
            int v;
            void set(int x) { v = x; }
        }
        class C { static void m(Box b) { b.set(7); } }
    """)
    inline(program, graph)
    stores = list(graph.nodes_of(N.StoreFieldNode))
    assert len(stores) == 1
    state = stores[0].state_after
    assert state.method.qualified_name == "Box.set"
    assert state.outer is not None
    assert state.outer.method.qualified_name == "C.m"


def test_synchronized_callee_brings_monitor_nodes():
    program, graph = build("""
        class Box {
            int v;
            synchronized int get() { return v; }
        }
        class C { static int m(Box b) { return b.get(); } }
    """)
    inline(program, graph)
    assert len(list(graph.nodes_of(N.MonitorEnterNode))) == 1
    assert len(list(graph.nodes_of(N.MonitorExitNode))) == 1


def test_multiple_returns_merge_with_phi():
    program, graph = build("""
        class C {
            static int pick(int x) {
                if (x > 0) { return 1; }
                return 2;
            }
            static int m(int a) { return pick(a); }
        }
    """)
    inline(program, graph)
    merges = list(graph.nodes_of(N.MergeNode))
    assert merges
    phis = [p for m in merges for p in m.phis()]
    assert phis


def test_inlined_execution_matches(tmp_path):
    from repro.bytecode import Heap, Interpreter
    from repro.runtime import Deoptimizer, GraphInterpreter
    source = """
        class Vec {
            int x; int y;
            Vec(int x, int y) { this.x = x; this.y = y; }
            int dot(Vec o) { return x * o.x + y * o.y; }
        }
        class C { static int m(int a, int b) {
            Vec v = new Vec(a, b);
            Vec w = new Vec(b, a);
            return v.dot(w);
        } }
    """
    program, graph = build(source)
    inline(program, graph)
    CanonicalizerPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    heap = Heap(program)
    interp = Interpreter(program, heap)
    gi = GraphInterpreter(program, heap, lambda *a: None,
                          Deoptimizer(program, heap, interp))
    assert gi.execute(graph, [3, 4]) == 3 * 4 + 4 * 3


def test_depth_limit():
    program, graph = build("""
        class C {
            static int f1(int x) { return f2(x) + 1; }
            static int f2(int x) { return f3(x) + 1; }
            static int f3(int x) { return x; }
            static int m(int a) { return f1(a); }
        }
    """)
    policy = InliningPolicy(max_depth=2)
    inline(program, graph, policy)
    # f1 at depth 0->1, f2 at 1->2; f3 would be depth 2 -> blocked.
    assert len(invokes(graph)) == 1
    assert invokes(graph)[0].target.method_name == "f3"
