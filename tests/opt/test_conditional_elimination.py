"""Conditional elimination tests."""

import pytest

from repro.frontend import build_graph
from repro.ir import nodes as N
from repro.lang import compile_source
from repro.opt import (DeadCodeEliminationPhase,
                       GlobalValueNumberingPhase)
from repro.opt.conditional_elimination import ConditionalEliminationPhase


def build(source, qualified="C.m"):
    program = compile_source(source)
    graph = build_graph(program, program.method(qualified))
    GlobalValueNumberingPhase().run(graph)  # share condition nodes
    return program, graph


def run_phase(graph):
    changed = ConditionalEliminationPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    graph.verify()
    return changed


def count_ifs(graph):
    return len(list(graph.nodes_of(N.IfNode)))


def execute(program, graph, args):
    from repro.bytecode import Heap, Interpreter
    from repro.runtime import Deoptimizer, GraphInterpreter
    heap = Heap(program)
    interp = Interpreter(program, heap)
    gi = GraphInterpreter(program, heap, lambda *a: None,
                          Deoptimizer(program, heap, interp))
    return gi.execute(graph, list(args))


def test_nested_identical_condition_folds():
    program, graph = build("""
        class C { static int m(int x, int y) {
            int r = 0;
            if (x < y) {
                r = 1;
                if (x < y) { r = 2; } else { r = 99; }
            }
            return r;
        } }
    """)
    assert count_ifs(graph) == 2
    assert run_phase(graph)
    assert count_ifs(graph) == 1
    assert execute(program, graph, [1, 5]) == 2
    assert execute(program, graph, [5, 1]) == 0


def test_negated_branch_side():
    program, graph = build("""
        class C { static int m(int x) {
            if (x > 0) { return 1; }
            if (x > 0) { return 99; }
            return 3;
        } }
    """)
    assert run_phase(graph)
    assert count_ifs(graph) == 1
    assert execute(program, graph, [5]) == 1
    assert execute(program, graph, [-5]) == 3


def test_redundant_null_guard_removed():
    program, graph = build("""
        class Box { int v; int w; }
        class C { static int m(Box b, int k) {
            int a = b.v;
            if (k > 0) { a = a + b.w; }
            return a;
        } }
    """)
    guards_before = len([g for g in graph.nodes_of(N.FixedGuardNode)
                         if g.reason == "null_check"])
    assert guards_before == 2
    run_phase(graph)
    guards_after = len([g for g in graph.nodes_of(N.FixedGuardNode)
                        if g.reason == "null_check"])
    assert guards_after == 1
    # The remaining guard still catches a null receiver properly.
    from repro.bytecode import NullPointerError
    with pytest.raises(NullPointerError):
        execute(program, graph, [None, 0])


def test_facts_do_not_leak_to_siblings():
    program, graph = build("""
        class C { static int m(int x, int k) {
            int r = 0;
            if (k > 0) {
                if (x > 5) { r = 1; }
            } else {
                if (x > 5) { r = 2; }
            }
            return r;
        } }
    """)
    # x > 5 inside the else must NOT be folded by the then-side fact.
    run_phase(graph)
    assert execute(program, graph, [10, 1]) == 1
    assert execute(program, graph, [10, -1]) == 2
    assert execute(program, graph, [1, -1]) == 0


def test_semantics_preserved_differentially():
    import sys
    sys.path.insert(0, "tests")
    source = """
        class C { static int m(int x, int y) {
            int r = 0;
            if (x < y) {
                if (x < y) { r = r + 1; }
                if (y <= x) { r = r + 100; }
            }
            if (x == y) { r = r + 7; }
            if (x == y) { r = r + 7; }
            return r;
        } }
    """
    program, graph = build(source)
    run_phase(graph)
    from repro.bytecode import Interpreter
    reference_program = compile_source(source)
    interp = Interpreter(reference_program)
    for args in ((1, 2), (2, 1), (3, 3), (0, 0)):
        assert execute(program, graph, args) == \
            interp.call("C.m", *args), args
