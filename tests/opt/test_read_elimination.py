"""Read elimination (load/store forwarding) tests."""

import pytest

from repro.frontend import build_graph
from repro.ir import nodes as N
from repro.lang import compile_source
from repro.opt import (DeadCodeEliminationPhase, InliningPhase,
                       ReadEliminationPhase)


def build(source, qualified="C.m", inline=False):
    program = compile_source(source)
    graph = build_graph(program, program.method(qualified))
    if inline:
        InliningPhase(program).run(graph)
    return program, graph


def run_phase(graph):
    changed = ReadEliminationPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    graph.verify()
    return changed


def count(graph, node_type):
    return len(list(graph.nodes_of(node_type)))


def test_store_to_load_forwarding():
    program, graph = build("""
        class Box { int v; }
        class C {
            static Box g;
            static int m(Box b, int x) {
                b.v = x;
                return b.v;
            }
        }
    """)
    assert count(graph, N.LoadFieldNode) == 1
    assert run_phase(graph)
    assert count(graph, N.LoadFieldNode) == 0
    rets = list(graph.nodes_of(N.ReturnNode))
    assert isinstance(rets[0].value, N.ParameterNode)


def test_load_to_load_forwarding():
    program, graph = build("""
        class Box { int v; }
        class C { static int m(Box b) { return b.v + b.v; } }
    """)
    assert count(graph, N.LoadFieldNode) == 2
    run_phase(graph)
    assert count(graph, N.LoadFieldNode) == 1


def test_call_invalidates():
    program, graph = build("""
        class Box { int v; }
        class C {
            static native void poke(Box b);
            static int m(Box b) {
                int a = b.v;
                poke(b);
                return a + b.v;
            }
        }
    """)
    run_phase(graph)
    assert count(graph, N.LoadFieldNode) == 2  # reload after the call


def test_aliasing_store_invalidates():
    program, graph = build("""
        class Box { int v; }
        class C { static int m(Box a, Box b) {
            int first = a.v;
            b.v = 7;
            return first + a.v;
        } }
    """)
    run_phase(graph)
    # a and b may alias: the second a.v must reload.
    assert count(graph, N.LoadFieldNode) == 2


def test_distinct_allocations_do_not_alias():
    program, graph = build("""
        class Box { int v; }
        class C {
            static native void sink(Box a, Box b);
            static int m(int x) {
                Box a = new Box();
                Box b = new Box();
                sink(a, b);
                int first = a.v;
                b.v = x;
                return first + a.v;
            }
        }
    """)
    run_phase(graph)
    # The store to fresh b cannot touch fresh a.
    assert count(graph, N.LoadFieldNode) == 1


def test_static_forwarding():
    program, graph = build("""
        class C {
            static int g;
            static int m(int x) {
                g = x;
                return g + g;
            }
        }
    """)
    run_phase(graph)
    assert count(graph, N.LoadStaticNode) == 0


def test_monitor_is_a_barrier():
    program, graph = build("""
        class Box { int v; }
        class C { static int m(Box b) {
            int a = b.v;
            synchronized (b) {
                a = a + b.v;
            }
            return a;
        } }
    """)
    run_phase(graph)
    assert count(graph, N.LoadFieldNode) == 2


def test_does_not_cross_blocks():
    program, graph = build("""
        class Box { int v; }
        class C { static int m(Box b, int x) {
            int a = b.v;
            if (x > 0) { a = a + b.v; }
            return a;
        } }
    """)
    run_phase(graph)
    # The branch's load is in a different block: kept (by design).
    assert count(graph, N.LoadFieldNode) == 2


def test_array_element_forwarding():
    program, graph = build("""
        class C { static int m(int[] a, int i, int x) {
            a[i] = x;
            return a[i];
        } }
    """)
    loads_before = count(graph, N.LoadIndexedNode)
    assert loads_before == 1
    run_phase(graph)
    assert count(graph, N.LoadIndexedNode) == 0


def test_array_length_forwarding():
    program, graph = build("""
        class C { static int m(int[] a) {
            return a.length + a.length;
        } }
    """)
    run_phase(graph)
    # Bounds-check lengths also share; at least the duplicate is gone.
    assert count(graph, N.ArrayLengthNode) == 1


def test_semantics_preserved_end_to_end():
    from vm_harness import run_everywhere
    run_everywhere("""
        class Box { int v; Box other; }
        class C {
            static native void shuffle(Box a, Box b);
            static int m(int n) {
                Box a = new Box();
                Box b = new Box();
                shuffle(a, b);
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    a.v = i;
                    b.v = a.v + 1;
                    acc = acc + a.v + b.v + a.v;
                }
                return acc;
            }
        }
    """, "C.m", (10,), natives={
        "C.shuffle": lambda interp, args: None})
