"""Deoptimization: frame decoding, rematerialization, lock restoration."""

import pytest

from repro.lang import compile_source
from repro.jit import VM, CompilerConfig


def warmed_vm(source, entry, warmup_args, calls=40, config=None,
              natives=None):
    program = compile_source(source, natives=natives)
    vm = VM(program, config or CompilerConfig.partial_escape())
    for args in warmup_args * (calls // max(1, len(warmup_args))):
        vm.call(entry, *args)
    return program, vm


def test_guard_deopt_continues_in_interpreter():
    source = """
        class C { static int m(int a, int b) { return a / b; } }
    """
    program, vm = warmed_vm(source, "C.m", [(100, 3)])
    assert program.method("C.m") in vm.compiled
    from repro.bytecode import ArithmeticTrap
    with pytest.raises(ArithmeticTrap):
        vm.call("C.m", 1, 0)
    assert vm.exec_stats.deopts == 1


def test_speculation_deopt_with_rematerialization():
    source = """
        class Pair {
            int a; int b;
            Pair(int a, int b) { this.a = a; this.b = b; }
        }
        class C {
            static Object sink;
            static int work(int i) {
                Pair p = new Pair(i, i * 3);
                if (i == 7777) {
                    sink = p;
                    return p.a + p.b + 100;
                }
                return p.a + p.b;
            }
            static int run(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + work(i);
                }
                return acc;
            }
        }
    """
    program, vm = warmed_vm(source, "C.run", [(100,)])
    before = vm.heap_snapshot()
    result = vm.call("C.run", 10000)
    delta = vm.heap_snapshot().delta(before)
    expected = sum(i + i * 3 + (100 if i == 7777 else 0)
                   for i in range(10000))
    assert result == expected
    assert vm.exec_stats.deopts == 1
    # Only the rematerialized Pair was ever allocated.
    assert delta.allocations == 1
    sink = program.get_static("C", "sink")
    assert sink.fields == {"a": 7777, "b": 3 * 7777}


def test_rematerialized_cyclic_structure():
    source = """
        class Node { Node next; int v; }
        class C {
            static Node sink;
            static int work(int i) {
                Node a = new Node();
                Node b = new Node();
                a.next = b;
                b.next = a;
                a.v = i;
                b.v = i * 2;
                if (i == 9999) { sink = a; }
                return a.v + b.v;
            }
            static int run(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + work(i);
                }
                return acc;
            }
        }
    """
    program, vm = warmed_vm(source, "C.run", [(100,)])
    result = vm.call("C.run", 10001)
    assert result == sum(3 * i for i in range(10001))
    sink = program.get_static("C", "sink")
    assert sink.fields["v"] == 9999
    assert sink.fields["next"].fields["v"] == 9999 * 2
    assert sink.fields["next"].fields["next"] is sink  # the cycle


def test_deopt_inside_inlined_frames():
    """The frame-state chain rebuilds every inlined frame."""
    source = """
        class C {
            static int level3(int x, int y) { return x / y; }
            static int level2(int x, int y) { return level3(x, y) + 1; }
            static int level1(int x, int y) { return level2(x, y) * 2; }
        }
    """
    program, vm = warmed_vm(source, "C.level1", [(100, 7)])
    compiled = vm.compiled[program.method("C.level1")]
    from repro.ir.nodes import InvokeNode
    assert not list(compiled.graph.nodes_of(InvokeNode))  # fully inlined
    from repro.bytecode import ArithmeticTrap
    with pytest.raises(ArithmeticTrap):
        vm.call("C.level1", 5, 0)
    assert vm.exec_stats.deopts >= 1
    # Normal calls still fine afterwards.
    assert vm.call("C.level1", 100, 7) == ((100 // 7) + 1) * 2


def test_elided_lock_restored_on_deopt():
    """Deopt while an elided lock is 'held': the rematerialized object
    must be locked so the re-executed monitorexit balances."""
    source = """
        class Box { int v; }
        class C {
            static Object sink;
            static int work(int i) {
                Box b = new Box();
                int r = 0;
                synchronized (b) {
                    b.v = i;
                    if (i == 4242) { sink = b; }
                    r = b.v + 1;
                }
                return r;
            }
            static int run(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + work(i);
                }
                return acc;
            }
        }
    """
    program, vm = warmed_vm(source, "C.run", [(100,)])
    result = vm.call("C.run", 5000)
    assert result == sum(i + 1 for i in range(5000))
    stats = vm.heap.stats
    assert stats.monitor_enters == stats.monitor_exits
    sink = program.get_static("C", "sink")
    assert sink is not None and sink.lock_depth == 0


def test_deopt_in_synchronized_inlined_method_releases_lock():
    source = """
        class Box {
            int v;
            synchronized int div(int d) { return v / d; }
        }
        class C {
            static Box box;
            static int work(int d) {
                if (box == null) { box = new Box(); box.v = 100; }
                return box.div(d);
            }
        }
    """
    program, vm = warmed_vm(source, "C.work", [(5,)])
    from repro.bytecode import ArithmeticTrap
    with pytest.raises(ArithmeticTrap):
        vm.call("C.work", 0)
    box = program.get_static("C", "box")
    assert box.lock_depth == 0  # the method-level lock was released
    assert vm.call("C.work", 4) == 25


def test_invalidation_and_recompilation():
    source = """
        class C {
            static int work(int i) {
                if (i > 1000000) { return 111; }
                return i;
            }
            static int run(int n, int bias) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + work(i + bias);
                }
                return acc;
            }
        }
    """
    program, vm = warmed_vm(source, "C.run", [(50, 0)])
    # Now hammer the "impossible" branch: deopts accumulate, the code is
    # invalidated, and the recompiled version stops speculating.
    for _ in range(10):
        vm.call("C.run", 10, 2000000)
    assert vm.invalidations >= 1
    assert vm.call("C.run", 3, 2000000) == 333
    # After recompilation the deopt storm stops.
    deopts_before = vm.exec_stats.deopts
    vm.call("C.run", 10, 2000000)
    assert vm.exec_stats.deopts == deopts_before
