"""Differential tests: the threaded-code ExecutionPlan backend must be
observably indistinguishable from the legacy GraphInterpreter — same
results, same simulated cycles, same heap statistics, same deopt counts
— on every program shape (the cost model is deterministic, so the
numbers must match bit for bit)."""

import dataclasses

import pytest

from repro.benchsuite.harness import run_workload
from repro.benchsuite.workloads import by_name
from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

from vm_harness import run_config

# -- eight listing-style programs covering every executable node kind ----

LISTING_CACHE_HIT = """
    class Key {
        int idx; Object ref;
        Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
        synchronized boolean equalsKey(Key other) {
            return this.idx == other.idx && this.ref == other.ref;
        }
    }
    class Main {
        static Key cacheKey;
        static Object cacheValue;
        static Object getValue(int idx, Object ref) {
            Key key = new Key(idx, ref);
            if (cacheKey != null && key.equalsKey(cacheKey)) {
                return cacheValue;
            }
            return createValue(idx);
        }
        static native Object createValue(int idx);
    }
"""

LISTING_CACHE_MISS = """
    class Key {
        int idx; Object ref;
        Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
        synchronized boolean equalsKey(Key other) {
            return this.idx == other.idx && this.ref == other.ref;
        }
    }
    class Main {
        static Key cacheKey;
        static Object cacheValue;
        static Object getValue(int idx, Object ref) {
            Key key = new Key(idx, ref);
            if (cacheKey != null && key.equalsKey(cacheKey)) {
                return cacheValue;
            }
            cacheKey = key;
            cacheValue = createValue(idx);
            return cacheValue;
        }
        static native Object createValue(int idx);
    }
"""

LISTING_LOOP_PHIS = """
    class Main {
        static int getValue(int n, Object unused) {
            int acc = 0;
            int square = 0;
            for (int i = 0; i < n; i = i + 1) {
                square = i * i;
                acc = acc + square - i / 3;
            }
            return acc;
        }
    }
"""

LISTING_ARRAYS = """
    class Main {
        static int getValue(int n, Object unused) {
            int[] data = new int[n + 1];
            for (int i = 0; i < data.length; i = i + 1) {
                data[i] = i * 7;
            }
            int acc = 0;
            for (int i = n; i >= 0; i = i - 1) {
                acc = acc + data[i];
            }
            return acc + data.length;
        }
    }
"""

LISTING_SHARED_EXPR = """
    class Main {
        static int getValue(int n, Object unused) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                int sq = i * i;
                acc = acc + (sq > 50 ? sq + sq : sq - i);
            }
            return acc;
        }
    }
"""

LISTING_VIRTUAL = """
    class Shape { int area() { return 0; } }
    class SquareShape {
        int side;
        int area() { return side * side; }
    }
    class Main {
        static int getValue(int n, Object unused) {
            SquareShape s = new SquareShape();
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                s.side = i;
                acc = acc + s.area();
            }
            return acc;
        }
    }
"""

LISTING_MONITORS = """
    class Box { int v; }
    class Main {
        static int getValue(int n, Object unused) {
            Box box = new Box();
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                synchronized (box) {
                    box.v = box.v + i;
                }
            }
            synchronized (box) { acc = box.v; }
            return acc;
        }
    }
"""

LISTING_TYPE_TESTS = """
    class Base { int v; }
    class Derived { int v; int extra; }
    class Main {
        static int getValue(int n, Object unused) {
            Base b = new Base();
            Derived d = new Derived();
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                Object o = (i / 2) * 2 == i ? (Object) b : (Object) d;
                if (o instanceof Derived) { acc = acc + 2; }
                if (o == b) { acc = acc + 1; }
                if (o != null) { acc = acc - 1; }
            }
            return acc;
        }
    }
"""

NATIVES = {"Main.createValue": lambda interp, args: args[0] * 1000}

LISTINGS = {
    "cache-hit": LISTING_CACHE_HIT,
    "cache-miss": LISTING_CACHE_MISS,
    "loop-phis": LISTING_LOOP_PHIS,
    "arrays": LISTING_ARRAYS,
    "shared-expr": LISTING_SHARED_EXPR,
    "virtual": LISTING_VIRTUAL,
    "monitors": LISTING_MONITORS,
    "type-tests": LISTING_TYPE_TESTS,
}

CONFIG_FACTORIES = {
    "no_ea": CompilerConfig.no_ea,
    "equi": CompilerConfig.equi_escape,
    "pea": CompilerConfig.partial_escape,
}


def assert_backends_identical(source, entry, args, factory,
                              natives=None, warmup=30):
    runs = {
        backend: run_config(source, entry, args,
                            factory(execution_backend=backend),
                            natives, warmup)
        for backend in ("plan", "legacy")}
    plan, legacy = runs["plan"], runs["legacy"]
    assert plan.result == legacy.result
    assert plan.cycles == legacy.cycles
    assert plan.heap == legacy.heap
    assert (plan.vm.exec_stats.deopts
            == legacy.vm.exec_stats.deopts)
    assert (plan.vm.exec_stats.node_executions
            == legacy.vm.exec_stats.node_executions)
    return runs


@pytest.mark.parametrize("config_name", sorted(CONFIG_FACTORIES))
@pytest.mark.parametrize("listing", sorted(LISTINGS))
def test_listing_differential(listing, config_name):
    source = LISTINGS[listing]
    natives = NATIVES if "native" in source else None
    assert_backends_identical(
        source, "Main.getValue", (25, "obj"),
        CONFIG_FACTORIES[config_name], natives=natives)


def test_plan_backend_is_used():
    """Guard against silently falling back to the legacy engine."""
    program = compile_source(LISTING_LOOP_PHIS)
    vm = VM(program, CompilerConfig.partial_escape())
    for _ in range(30):
        vm.call("Main.getValue", 10, None)
    assert vm._bound_plans, "no ExecutionPlan was bound"


DEOPT_SOURCE = """
    class Pair {
        int a; int b;
        Pair(int a, int b) { this.a = a; this.b = b; }
    }
    class Main {
        static Object sink;
        static int work(int i) {
            Pair p = new Pair(i, i * 3);
            if (i > 900000) {
                sink = p;
                return p.a + p.b + 100;
            }
            return p.a + p.b;
        }
        static int run(int n, int bias) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + work(i + bias);
            }
            return acc;
        }
    }
"""


@pytest.mark.parametrize("backend", ["plan", "legacy"])
def test_forced_deopt_differential(backend):
    """Drive a speculation failure through each backend: both must
    deoptimize, rematerialize the virtual Pair, and accumulate the
    exact same cycles."""
    results = {}
    for chosen in ("plan", "legacy"):
        program = compile_source(DEOPT_SOURCE)
        vm = VM(program, CompilerConfig.partial_escape(
            execution_backend=chosen))
        for _ in range(40):
            vm.call("Main.run", 50, 0)
        cycles_before = vm.cycles_snapshot()
        result = vm.call("Main.run", 5, 1000000)  # speculation fails
        results[chosen] = (result, vm.cycles_snapshot() - cycles_before,
                           vm.exec_stats.deopts,
                           program.get_static("Main", "sink").fields)
        assert vm.exec_stats.deopts >= 1
    assert results["plan"] == results["legacy"]
    # The parametrization keeps both backends in the failure report;
    # the cross-check above is symmetric.
    assert results[backend][2] >= 1


@pytest.mark.slow
@pytest.mark.parametrize("workload_name",
                         ["xalan", "scalap", "specjbb2005"])
@pytest.mark.parametrize("config_name", sorted(CONFIG_FACTORIES))
def test_workload_differential(workload_name, config_name):
    """Representative workloads: full Measurement equality."""
    workload = dataclasses.replace(by_name(workload_name),
                                   warmup_iterations=22)
    factory = CONFIG_FACTORIES[config_name]
    m_plan = run_workload(workload,
                          factory(execution_backend="plan"))
    m_legacy = run_workload(workload,
                            factory(execution_backend="legacy"))
    assert m_plan == m_legacy


@pytest.mark.slow
def test_parallel_harness_matches_serial():
    """--jobs reassembles results bit-identical to serial order."""
    from repro.benchsuite.harness import run_suite
    workloads = [dataclasses.replace(by_name("specjbb2005"),
                                     warmup_iterations=22)]
    serial = run_suite(workloads)
    parallel = run_suite(workloads, jobs=2)
    assert [(c.without, c.with_pea) for c in serial] == \
        [(c.without, c.with_pea) for c in parallel]


def test_histogram_identical_across_backends():
    """The per-node-kind execution histogram (--profile) is the same
    whichever backend executes the graph."""
    histograms = {}
    for backend in ("plan", "legacy"):
        program = compile_source(LISTING_ARRAYS)
        vm = VM(program, CompilerConfig.partial_escape(
            execution_backend=backend, collect_node_histogram=True))
        for _ in range(30):
            vm.call("Main.getValue", 12, None)
        histograms[backend] = dict(
            vm.exec_stats.node_kind_executions)
    assert histograms["plan"] == histograms["legacy"]
    assert histograms["plan"], "histogram was not collected"
