"""The simulated generational collector: unit accounting and
bit-identical behavior across all three execution backends."""

import pytest

from repro.jit import VM, CompilerConfig, VMListener
from repro.lang import compile_source
from repro.runtime.costmodel import CostModel
from repro.runtime.gcsim import GCSim

ALLOC_LOOP = """
    class P { int x; int y; }
    class C {
        static int walk(int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                P p = new P();
                p.x = i;
                p.y = i + 1;
                acc = acc + p.x + p.y;
            }
            return acc;
        }
    }
"""


def small_gc():
    return GCSim(nursery_bytes=100, survivor_divisor=10, tenure_age=2,
                 pause_base=5, copy_per_byte=1)


def test_bump_allocation_below_capacity_is_free():
    gc = small_gc()
    assert gc.on_allocate(60) == 0
    assert gc.stats.minor_collections == 0
    assert gc.stats.allocated_bytes == 60
    assert gc.nursery_used == 60


def test_nursery_overflow_runs_a_minor_collection():
    gc = small_gc()
    gc.on_allocate(60)
    pause = gc.on_allocate(50)
    # One collection of a full nursery: live = 100 // 10 = 10 bytes
    # copied, pause = 5 + 1 * 10.
    assert gc.stats.minor_collections == 1
    assert gc.stats.copied_bytes == 10
    assert pause == gc.stats.pause_cycles == 15
    assert gc.survivors == [10]
    assert gc.nursery_used == 10  # the overflow carries over


def test_survivors_recopied_then_promoted_at_tenure_age():
    gc = small_gc()
    for _ in range(3):
        gc.on_allocate(101)
    # Three collections with tenure_age=2: the third re-copies the
    # second batch and promotes the first.
    assert gc.stats.minor_collections == 3
    assert gc.stats.promoted_bytes == 10
    assert len(gc.survivors) == 2
    # Second collection copied live + 1 survivor batch (20 bytes),
    # third copied live + the surviving batch again.
    assert gc.stats.copied_bytes == 10 + 20 + 20


def test_allocation_larger_than_nursery_drains_in_steps():
    gc = small_gc()
    gc.on_allocate(350)
    assert gc.stats.minor_collections == 3
    assert gc.nursery_used == 50


def test_collect_remaining_empties_collector_state_monotonically():
    gc = small_gc()
    gc.on_allocate(150)  # one collection, 50 left in the nursery
    before = gc.stats.copy()
    gc.collect_remaining()
    assert gc.nursery_used == 0
    assert gc.survivors == []
    after = gc.stats
    assert after.minor_collections == before.minor_collections + 1
    assert after.pause_cycles > before.pause_cycles
    # The partial survivor batches tenure instead of vanishing.
    assert after.promoted_bytes >= before.promoted_bytes
    # Idempotent once empty.
    assert gc.collect_remaining() == 0


def test_on_collection_hook_fires_with_cumulative_index():
    gc = small_gc()
    events = []
    gc.on_collection = lambda minor, pause, promoted: \
        events.append((minor, pause, promoted))
    gc.on_allocate(250)
    assert [minor for minor, _, _ in events] == [1, 2]
    assert all(pause >= gc.pause_base for _, pause, _ in events)


def test_from_cost_model_copies_the_gc_fields():
    model = CostModel(gc_nursery_bytes=2048, gc_survivor_divisor=4,
                      gc_tenure_age=5, gc_pause_base=99,
                      gc_copy_per_byte=3)
    gc = GCSim.from_cost_model(model)
    assert (gc.nursery_bytes, gc.survivor_divisor, gc.tenure_age,
            gc.pause_base, gc.copy_per_byte) == (2048, 4, 5, 99, 3)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        GCSim(nursery_bytes=0)
    with pytest.raises(ValueError):
        GCSim(survivor_divisor=0)
    with pytest.raises(ValueError):
        GCSim(tenure_age=0)


def run_backend(backend, escape_tier="none"):
    program = compile_source(ALLOC_LOOP)
    vm = VM(program, CompilerConfig(
        escape_tier=escape_tier, execution_backend=backend,
        compile_threshold=3))
    result = 0
    for _ in range(10):
        result = vm.call("C.walk", 500)
    return result, vm.gc_snapshot(), vm


def test_gc_stats_identical_across_backends():
    """The collector is integer-only and driven entirely by the shared
    Heap's allocation stream, so all three execution backends must
    produce bit-identical counters."""
    outcomes = {backend: run_backend(backend)
                for backend in ("legacy", "plan", "codegen")}
    results = {r for r, _, _ in outcomes.values()}
    assert len(results) == 1
    reference = outcomes["plan"][1]
    assert reference.minor_collections > 0
    assert reference.pause_cycles > 0
    for backend, (_, stats, _) in outcomes.items():
        assert stats == reference, backend


def test_stack_allocations_bypass_the_collector():
    """The conngraph tier takes the loop's objects off the heap, so the
    nursery never fills: fewer (here: zero) minor collections than the
    no-EA tier on the same call sequence."""
    __, none_stats, __ = run_backend("plan", escape_tier="none")
    result, cg_stats, vm = run_backend("plan", escape_tier="conngraph")
    heap = vm.heap_snapshot()
    assert heap.stack_allocations > 0
    assert cg_stats.minor_collections < none_stats.minor_collections
    assert cg_stats.pause_cycles < none_stats.pause_cycles


def test_gc_pauses_fold_into_simulated_cycles():
    program = compile_source(ALLOC_LOOP)
    vm = VM(program, CompilerConfig(escape_tier="none",
                                    compile_threshold=3))
    for _ in range(10):
        vm.call("C.walk", 500)
    cycles = vm.cycles_snapshot()
    assert vm.gc_snapshot().pause_cycles > 0
    assert cycles >= vm.gc_snapshot().pause_cycles


def test_vm_listener_observes_collections():
    class Collector(VMListener):
        def __init__(self):
            self.events = []

        def on_gc(self, minor, pause_cycles, promoted_bytes):
            self.events.append((minor, pause_cycles, promoted_bytes))

    program = compile_source(ALLOC_LOOP)
    vm = VM(program, CompilerConfig(escape_tier="none",
                                    compile_threshold=3))
    listener = Collector()
    vm.add_listener(listener)
    vm.call("C.walk", 5000)
    assert listener.events
    minors = [minor for minor, _, _ in listener.events]
    assert minors == sorted(minors)
    assert vm.gc_snapshot().minor_collections == minors[-1]
