"""Differential tests for the generated-Python codegen backend: every
observable — results, heap statistics, deopt counts, per-node execution
counts — must match the threaded-code plan backend bit for bit.
Simulated cycles are compared to within float rounding only: codegen
pre-folds each block's cost into one constant, so the summation *order*
differs from the plan backend's per-node accumulation even though the
summands are identical."""

import pytest

from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

from vm_harness import run_config

DIAMOND = """
    class Main {
        static int getValue(int n, Object unused) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                int v;
                if (i * 3 > n) {
                    v = i * i - n;
                } else {
                    v = i + n * 2;
                }
                acc = acc + v;
            }
            return acc;
        }
    }
"""

NESTED_LOOPS = """
    class Main {
        static int getValue(int n, Object unused) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                int inner = 0;
                for (int j = 0; j < i; j = j + 1) {
                    inner = inner + j * i;
                    if (inner > 1000) {
                        inner = inner - n;
                    }
                }
                acc = acc + inner;
            }
            return acc;
        }
    }
"""

SYNCHRONIZED_METHODS = """
    class Counter {
        int value;
        synchronized int bump(int by) {
            this.value = this.value + by;
            return this.value;
        }
        synchronized int read() { return this.value; }
    }
    class Main {
        static Counter shared;
        static int getValue(int n, Object unused) {
            Counter local = new Counter();
            shared = new Counter();
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + local.bump(i);
                shared.bump(1);
            }
            return acc + shared.read() + local.read();
        }
    }
"""

CYCLIC_DEOPT = """
    class Node {
        int payload; Node link;
        Node(int payload) { this.payload = payload; }
    }
    class Main {
        static Object sink;
        static int work(int i) {
            Node a = new Node(i);
            Node b = new Node(i * 3);
            a.link = b;
            b.link = a;
            if (i > 900000) {
                sink = a;
                return a.payload + b.payload + 100;
            }
            return a.payload + b.link.payload;
        }
        static int run(int n, int bias) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + work(i + bias);
            }
            return acc;
        }
    }
"""

LISTINGS = {
    "diamond": DIAMOND,
    "nested-loops": NESTED_LOOPS,
    "synchronized-methods": SYNCHRONIZED_METHODS,
}


def assert_codegen_matches_plan(source, entry, args, natives=None,
                                warmup=30, **config_kwargs):
    runs = {
        backend: run_config(
            source, entry, args,
            CompilerConfig.partial_escape(execution_backend=backend,
                                          **config_kwargs),
            natives, warmup)
        for backend in ("codegen", "plan")}
    codegen, plan = runs["codegen"], runs["plan"]
    assert codegen.result == plan.result
    assert codegen.heap == plan.heap
    assert codegen.cycles == pytest.approx(plan.cycles, rel=1e-9)
    assert (codegen.vm.exec_stats.deopts
            == plan.vm.exec_stats.deopts)
    assert (codegen.vm.exec_stats.node_executions
            == plan.vm.exec_stats.node_executions)
    return runs


@pytest.mark.parametrize("listing", sorted(LISTINGS))
def test_listing_differential(listing):
    assert_codegen_matches_plan(LISTINGS[listing], "Main.getValue",
                                (25, "obj"))


def test_codegen_backend_is_used():
    """Guard against silently falling back to plan/interpreter."""
    program = compile_source(DIAMOND)
    vm = VM(program, CompilerConfig.partial_escape(
        execution_backend="codegen"))
    for _ in range(30):
        vm.call("Main.getValue", 10, None)
    assert vm._bound_codegen, "no generated function was bound"
    compiled = vm.compiled[program.method("Main.getValue")]
    assert compiled.codegen is not None
    assert compiled.codegen.code_size > 0


def test_osr_entry_differential():
    """A single long-running call tiers up at a loop backedge; the
    OSR-entry variant must also run generated code and match the plan
    backend observably."""
    results = {}
    for backend in ("codegen", "plan"):
        program = compile_source(NESTED_LOOPS)
        vm = VM(program, CompilerConfig.partial_escape(
            execution_backend=backend, compile_threshold=1000,
            osr_threshold=20))
        result = vm.call("Main.getValue", 60, None)
        assert vm.osr_compiled, f"{backend}: OSR never triggered"
        results[backend] = (result, vm.exec_stats.node_executions,
                            vm.osr_entries)
        if backend == "codegen":
            assert vm._osr_codegen, "OSR variant not on codegen"
    assert results["codegen"] == results["plan"]


def test_cyclic_virtual_deopt_rematerialization():
    """A speculation failure forces rematerialization of two virtual
    objects that reference each other; the baked remat map must rebuild
    the cycle identically under both backends."""
    fields = {}
    for backend in ("codegen", "plan"):
        program = compile_source(CYCLIC_DEOPT)
        vm = VM(program, CompilerConfig.partial_escape(
            execution_backend=backend))
        for _ in range(40):
            vm.call("Main.run", 50, 0)
        result = vm.call("Main.run", 5, 1000000)  # speculation fails
        assert vm.exec_stats.deopts >= 1
        sink = program.get_static("Main", "sink")
        link = sink.fields["link"]
        assert link.fields["link"] is sink, "cycle not rebuilt"
        fields[backend] = (result, vm.exec_stats.deopts,
                           sink.fields["payload"],
                           link.fields["payload"])
    assert fields["codegen"] == fields["plan"]


def test_histogram_identical_across_backends():
    """--profile's per-node-kind histogram is backend-independent."""
    histograms = {}
    for backend in ("codegen", "plan"):
        program = compile_source(SYNCHRONIZED_METHODS)
        vm = VM(program, CompilerConfig.partial_escape(
            execution_backend=backend, collect_node_histogram=True))
        for _ in range(30):
            vm.call("Main.getValue", 12, None)
        histograms[backend] = dict(vm.exec_stats.node_kind_executions)
    assert histograms["codegen"] == histograms["plan"]
    assert histograms["codegen"], "histogram was not collected"


def test_generated_function_is_attributable():
    """cProfile attributes time by code-object name: the generated
    function must carry the method's label, not a generic name."""
    program = compile_source(DIAMOND)
    vm = VM(program, CompilerConfig.partial_escape(
        execution_backend="codegen"))
    for _ in range(30):
        vm.call("Main.getValue", 10, None)
    (bound,) = vm._bound_codegen.values()
    assert "Main.getValue" in bound.function.__qualname__
