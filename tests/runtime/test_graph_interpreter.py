"""Graph interpreter unit behavior beyond the differential tests."""

import pytest

from repro.bytecode import Heap, Interpreter, Program
from repro.ir import Graph, nodes as N
from repro.runtime import (CostModel, Deoptimizer, ExecutionStats,
                           GraphExecutionError, GraphInterpreter)


def make_interp(program=None, stats=None, cost_model=None):
    program = program or Program()
    heap = Heap(program)
    interp = Interpreter(program, heap)
    gi = GraphInterpreter(program, heap, lambda *a: None,
                          Deoptimizer(program, heap, interp),
                          cost_model or CostModel(),
                          stats)
    return program, heap, gi


def simple_graph(build_value):
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    p0 = graph.add(N.ParameterNode(0))
    graph.parameters = [p0]
    value = build_value(graph, p0)
    ret = graph.add(N.ReturnNode(value=value))
    start.next = ret
    return graph


def test_floating_expression_evaluation():
    program, heap, gi = make_interp()
    graph = simple_graph(lambda g, p: g.add(N.BinaryArithmeticNode(
        "mul", x=g.add(N.BinaryArithmeticNode("add", x=p,
                                              y=g.constant(1))),
        y=g.constant(10))))
    assert gi.execute(graph, [4]) == 50


def test_conditional_node_select():
    program, heap, gi = make_interp()
    graph = simple_graph(lambda g, p: g.add(N.ConditionalNode(
        condition=g.add(N.IntCompareNode("gt", x=p, y=g.constant(0))),
        true_value=g.constant(111), false_value=g.constant(222))))
    assert gi.execute(graph, [5]) == 111
    assert gi.execute(graph, [-5]) == 222


def test_unevaluable_node_raises():
    program, heap, gi = make_interp()
    detached_param = N.ParameterNode(7)  # never bound into env
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    graph.add(detached_param)
    ret = graph.add(N.ReturnNode(value=detached_param))
    start.next = ret
    graph.parameters = []
    with pytest.raises(GraphExecutionError, match="environment"):
        gi.execute(graph, [])


def test_stats_accumulate_cycles_and_invocations():
    stats = ExecutionStats()
    program, heap, gi = make_interp(stats=stats)
    graph = simple_graph(lambda g, p: p)
    gi.execute(graph, [1])
    gi.execute(graph, [2])
    assert stats.compiled_invocations == 2
    assert stats.node_executions > 0


def _guarded_graph():
    """A graph with a fixed, nonzero-cost node (a passing guard)."""
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    p0 = graph.add(N.ParameterNode(0))
    graph.parameters = [p0]
    state = graph.add(N.FrameStateNode(None, 0))
    guard = graph.add(N.FixedGuardNode(
        "test", condition=graph.constant(1), state=state))
    start.next = guard
    ret = graph.add(N.ReturnNode(value=p0))
    guard.next = ret
    return graph


def test_icache_multiplier_affects_cost():
    small_stats = ExecutionStats()
    program, heap, gi = make_interp(
        stats=small_stats,
        cost_model=CostModel(icache_capacity=1, icache_factor=10.0))
    gi.execute(_guarded_graph(), [1])

    normal_stats = ExecutionStats()
    program2, heap2, gi2 = make_interp(stats=normal_stats)
    gi2.execute(_guarded_graph(), [1])
    assert small_stats.cycles > normal_stats.cycles


def test_deopt_without_deoptimizer_raises():
    program = Program()
    heap = Heap(program)
    gi = GraphInterpreter(program, heap, lambda *a: None,
                          deoptimizer=None)
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    graph.parameters = []
    state = graph.add(N.FrameStateNode(None, 0))
    deopt = graph.add(N.DeoptimizeNode("test", state=state))
    start.next = deopt
    with pytest.raises(GraphExecutionError, match="no deoptimizer"):
        gi.execute(graph, [])


def test_phi_updates_are_simultaneous():
    """Swapping phis (a, b) = (b, a) must read old values."""
    graph = Graph()
    start = graph.add(N.StartNode())
    graph.start = start
    graph.parameters = []
    fwd = graph.add(N.EndNode())
    start.next = fwd
    loop = graph.add(N.LoopBeginNode())
    loop.add_end(fwd)
    phi_a = graph.add(N.PhiNode(merge=loop))
    phi_b = graph.add(N.PhiNode(merge=loop))
    phi_i = graph.add(N.PhiNode(merge=loop))
    phi_a.values.append(graph.constant(1))
    phi_b.values.append(graph.constant(2))
    phi_i.values.append(graph.constant(0))
    condition = graph.add(N.IntCompareNode("lt", x=phi_i,
                                           y=graph.constant(3)))
    if_node = graph.add(N.IfNode(condition=condition))
    loop.next = if_node
    body = graph.add(N.BeginNode())
    exit_ = graph.add(N.BeginNode())
    if_node.true_successor = body
    if_node.false_successor = exit_
    loop_end = graph.add(N.LoopEndNode())
    body.next = loop_end
    loop.add_loop_end(loop_end)
    # swap each iteration
    phi_a.values.append(phi_b)
    phi_b.values.append(phi_a)
    next_i = graph.add(N.BinaryArithmeticNode("add", x=phi_i,
                                              y=graph.constant(1)))
    phi_i.values.append(next_i)
    result = graph.add(N.BinaryArithmeticNode(
        "mul", x=phi_a, y=graph.constant(10)))
    result2 = graph.add(N.BinaryArithmeticNode("add", x=result, y=phi_b))
    ret = graph.add(N.ReturnNode(value=result2))
    exit_.next = ret
    graph.verify()
    program, heap, gi = make_interp()
    # 3 swaps: (1,2) -> (2,1) -> (1,2) -> (2,1); result 2*10+1.
    assert gi.execute(graph, []) == 21
