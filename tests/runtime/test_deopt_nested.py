"""Rematerialization of *nested* virtual objects at deoptimization.

When a cold path escapes an object whose field holds another virtual
object (or a cycle of them), the deoptimizer must allocate the whole
group and fix up the cross-references (allocate-then-fill, Section 5.5).
Both execution backends — the legacy GraphInterpreter and the
threaded-code plan — must produce the interpreter's exact heap shape.
"""

import pytest

from repro.bytecode import Interpreter
from repro.jit import VM, CompilerConfig

from vm_harness import compile_source

NESTED_SOURCE = """
    class Inner { int v; }
    class Outer { int tag; Inner inner; }
    class Main {
        static Outer sink;
        static int work(int i) {
            Inner inner = new Inner();
            inner.v = i * 5;
            Outer outer = new Outer();
            outer.tag = i;
            outer.inner = inner;
            if (i == 31337) {
                sink = outer;
                return outer.inner.v + 1;
            }
            return outer.tag + outer.inner.v;
        }
        static int run(int from, int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + work(from + i);
            }
            return acc;
        }
    }
"""

CYCLIC_SOURCE = """
    class Node { int v; Node next; }
    class Main {
        static Node sink;
        static int work(int i) {
            Node a = new Node();
            Node b = new Node();
            a.v = i;
            b.v = i * 2;
            a.next = b;
            b.next = a;
            if (i == 31337) {
                sink = a;
                return a.next.v;
            }
            return a.v + b.v;
        }
        static int run(int from, int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + work(from + i);
            }
            return acc;
        }
    }
"""

BACKENDS = ("plan", "legacy")


def warmed_vm(source, backend):
    program = compile_source(source)
    vm = VM(program, CompilerConfig.partial_escape(
        execution_backend=backend))
    for _ in range(40):
        vm.call("Main.run", 0, 60)
        program.reset_statics()
    return program, vm


@pytest.mark.parametrize("backend", BACKENDS)
def test_nested_virtual_rematerialization(backend):
    program, vm = warmed_vm(NESTED_SOURCE, backend)
    # The probe window crosses the magic value: the speculative branch
    # fires, deopts, and the Outer+Inner pair is rematerialized.
    result = vm.call("Main.run", 31330, 10)
    assert vm.exec_stats.deopts >= 1

    reference = compile_source(NESTED_SOURCE)
    interp = Interpreter(reference)
    assert result == interp.call("Main.run", 31330, 10)

    sink = program.get_static("Main", "sink")
    expected = reference.get_static("Main", "sink")
    assert sink is not None and expected is not None
    assert sink.fields["tag"] == expected.fields["tag"] == 31337
    # The nested object came back as a real, correctly-filled Inner.
    inner = sink.fields["inner"]
    assert inner is not None
    assert inner.class_name == "Inner"
    assert inner.fields["v"] == expected.fields["inner"].fields["v"] \
        == 31337 * 5


@pytest.mark.parametrize("backend", BACKENDS)
def test_cyclic_virtual_rematerialization(backend):
    program, vm = warmed_vm(CYCLIC_SOURCE, backend)
    result = vm.call("Main.run", 31330, 10)
    assert vm.exec_stats.deopts >= 1

    reference = compile_source(CYCLIC_SOURCE)
    interp = Interpreter(reference)
    assert result == interp.call("Main.run", 31330, 10)

    sink = program.get_static("Main", "sink")
    assert sink is not None
    b = sink.fields["next"]
    assert b is not None and b is not sink
    # The cycle is closed: a.next.next is a again.
    assert b.fields["next"] is sink
    assert sink.fields["v"] == 31337
    assert b.fields["v"] == 31337 * 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_nested_remat_does_not_overallocate(backend):
    """Until the cold branch fires, neither Inner nor Outer is ever
    allocated; the deopting call allocates at most what the interpreter
    would."""
    program, vm = warmed_vm(NESTED_SOURCE, backend)
    before = vm.heap_snapshot()
    vm.call("Main.run", 0, 50)  # steady state: fully virtualized
    steady = vm.heap_snapshot().delta(before)
    assert steady.allocations == 0

    reference = compile_source(NESTED_SOURCE)
    interp = Interpreter(reference)
    ibefore = interp.heap.stats.copy()
    interp.call("Main.run", 31330, 10)
    interp_delta = interp.heap.stats.delta(ibefore)

    before = vm.heap_snapshot()
    vm.call("Main.run", 31330, 10)
    deopt_delta = vm.heap_snapshot().delta(before)
    assert deopt_delta.allocations <= interp_delta.allocations
