"""Cost model properties."""

import pytest

from repro.ir import Graph, nodes as N
from repro.runtime import CostModel, ExecutionStats


@pytest.fixture
def model():
    return CostModel()


def test_icache_multiplier_flat_below_capacity(model):
    assert model.icache_multiplier(0) == 1.0
    assert model.icache_multiplier(model.icache_capacity) == 1.0


def test_icache_multiplier_grows_linearly(model):
    capacity = model.icache_capacity
    one_over = model.icache_multiplier(capacity + capacity // 2)
    two_over = model.icache_multiplier(capacity * 2)
    assert 1.0 < one_over < two_over
    assert two_over == pytest.approx(1.0 + model.icache_factor)


def test_allocation_dominates_arithmetic(model):
    graph = Graph()
    new = graph.add(N.NewInstanceNode("X"))
    add = graph.add(N.BinaryArithmeticNode(
        "add", x=graph.constant(1), y=graph.constant(2)))
    assert model.node_cost(new) > model.node_cost(add)


def test_monitor_and_invoke_costs(model):
    graph = Graph()
    enter = graph.add(N.MonitorEnterNode())
    from repro.bytecode import MethodRef
    invoke = graph.add(N.InvokeNode("static", MethodRef("C", "m", 0),
                                    "void", 0))
    assert model.node_cost(enter) == model.monitor_op
    assert model.node_cost(invoke) == model.invoke_overhead


def test_deopt_is_expensive(model):
    graph = Graph()
    deopt = graph.add(N.DeoptimizeNode("test"))
    assert model.node_cost(deopt) >= 100


def test_control_nodes_are_free(model):
    graph = Graph()
    begin = graph.add(N.BeginNode())
    merge = graph.add(N.MergeNode())
    assert model.node_cost(begin) == 0
    assert model.node_cost(merge) == 0


def test_byte_cost_proportional(model):
    assert model.allocation_bytes_cost(100) == \
        pytest.approx(100 * model.alloc_per_byte)


def test_execution_stats_delta():
    stats = ExecutionStats(cycles=100, node_executions=10, deopts=1)
    later = ExecutionStats(cycles=250, node_executions=30, deopts=1)
    delta = later.delta(stats)
    assert delta.cycles == 150
    assert delta.node_executions == 20
    assert delta.deopts == 0
