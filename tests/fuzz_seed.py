"""One seed per test session for every randomized/fuzz test.

``FUZZ_SEED=<int>`` pins it (reproducing a failure); otherwise a fresh
random seed is drawn once per session.  tests/conftest.py prints the
seed alongside any failing randomized test, so failures are always
reproducible.
"""

from __future__ import annotations

import os
import random

_FORCED = "FUZZ_SEED" in os.environ

SEED: int = int(os.environ["FUZZ_SEED"]) if _FORCED \
    else random.SystemRandom().randrange(2 ** 32)


def seed_was_forced() -> bool:
    """True when the seed came from the FUZZ_SEED environment
    variable."""
    return _FORCED


def hypothesis_seed(test):
    """Decorator: pin a hypothesis test to the session seed."""
    from hypothesis import seed
    return seed(SEED)(test)
