"""Speculation/deoptimization fuzzing: warm up on benign inputs so the
compiler speculates, then hit the cold paths and require exact agreement
with the interpreter (including rematerialized heap state)."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bytecode import Interpreter
from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

from fuzz_seed import hypothesis_seed

TEMPLATE = """
class Rec {{
    int a; int b; Rec link;
    Rec(int a, int b) {{ this.a = a; this.b = b; }}
}}
class Main {{
    static Rec sink;
    static int work(int v) {{
        Rec r = new Rec(v, v * 3 + 1);
        if ({cold1}) {{
            sink = r;
            return r.a - r.b;
        }}
        Rec s = new Rec(r.b, r.a);
        s.link = r;
        if ({cold2}) {{
            sink = s;
            return s.link.a * 2;
        }}
        return r.a + s.b - s.a;
    }}
    static int run(int from, int n) {{
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {{
            acc = acc + work(from + i);
        }}
        return acc;
    }}
}}
"""

CONDITIONS = [
    ("v == 31337", "v == 90001"),
    ("v > 99999", "v % 7777 == 3"),
    ("(v & 8191) == 77", "v < -99999"),
    ("v * v == 1048576", "v == 55555"),
]


@hypothesis_seed
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pattern=st.integers(0, len(CONDITIONS) - 1),
       trigger_base=st.integers(0, 200_000),
       span=st.integers(1, 120))
def test_cold_paths_agree_with_interpreter(pattern, trigger_base, span):
    cold1, cold2 = CONDITIONS[pattern]
    source = TEMPLATE.format(cold1=cold1, cold2=cold2)

    program = compile_source(source)
    vm = VM(program, CompilerConfig.partial_escape())
    # Warm on a benign window so speculation kicks in (profiling only
    # happens while interpreted: keep the default compile threshold).
    for _ in range(8):
        vm.call("Main.run", 0, 60)
        program.reset_statics()
    compiled_result = vm.call("Main.run", trigger_base, span)
    compiled_sink = program.get_static("Main", "sink")

    reference_program = compile_source(source)
    interp = Interpreter(reference_program)
    expected = interp.call("Main.run", trigger_base, span)
    expected_sink = reference_program.get_static("Main", "sink")

    assert compiled_result == expected
    # The rematerialized sink (if any) matches field-for-field.
    if expected_sink is None:
        assert compiled_sink is None
    else:
        assert compiled_sink is not None
        assert compiled_sink.fields["a"] == expected_sink.fields["a"]
        assert compiled_sink.fields["b"] == expected_sink.fields["b"]
    # Monitors stay balanced and the heap accounting is sane.
    stats = vm.heap.stats
    assert stats.monitor_enters == stats.monitor_exits


def test_repeated_triggers_cause_invalidation_then_stability():
    source = TEMPLATE.format(cold1="v == 1000001", cold2="v == 2000002")
    program = compile_source(source)
    vm = VM(program, CompilerConfig.partial_escape())
    for _ in range(8):
        vm.call("Main.run", 0, 60)
        program.reset_statics()
    # Hammer the first cold path until the code is invalidated.
    for _ in range(8):
        vm.call("Main.run", 1000001, 1)
    assert vm.invalidations >= 1
    deopts_before = vm.exec_stats.deopts
    for _ in range(5):
        vm.call("Main.run", 1000001, 1)
    assert vm.exec_stats.deopts == deopts_before  # recompiled w/o guess
    # And results still agree with the interpreter.
    interp = Interpreter(compile_source(source))
    assert vm.call("Main.run", 1000000, 5) == \
        interp.call("Main.run", 1000000, 5)
