"""Back-compat shim: the program generator moved into the package
(:mod:`repro.verify.generator`) so the ``repro fuzz`` CLI can use it.
Tests keep importing it from here."""

from repro.verify.generator import (  # noqa: F401
    MAGIC_VALUES, GeneratedProgram, ProgramGenerator, Stmt,
    render_statements)
