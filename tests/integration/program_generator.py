"""Random MJ program generator for property-based differential testing.

Generates well-typed, terminating programs that exercise exactly the
constructs Partial Escape Analysis cares about: allocations, field
stores/loads, linked virtual objects, conditional escapes into globals,
loops, synchronized blocks, reference equality, and calls (inlining
fodder).  Programs are guaranteed free of traps: divisions are guarded
by construction, object-typed locals are always initialized, loops are
counted.
"""

from __future__ import annotations

from typing import List


class ProgramGenerator:
    """Drives a hypothesis ``data`` object to produce one program."""

    INT_LOCALS = 3
    OBJ_LOCALS = 2

    def __init__(self, draw):
        self.draw = draw  # draw(strategy) -> value
        self._fresh = 0

    # -- drawing helpers --------------------------------------------------

    def _int(self, lo, hi):
        import hypothesis.strategies as st
        return self.draw(st.integers(min_value=lo, max_value=hi))

    def _choice(self, options):
        return options[self._int(0, len(options) - 1)]

    def fresh_name(self, prefix):
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    # -- expressions ---------------------------------------------------------

    def int_expr(self, depth=0) -> str:
        kinds = ["literal", "local", "field"]
        if depth < 2:
            kinds += ["binary", "binary", "div"]
        kind = self._choice(kinds)
        if kind == "literal":
            return str(self._int(-16, 16))
        if kind == "local":
            return f"x{self._int(0, self.INT_LOCALS - 1)}"
        if kind == "field":
            return (f"d{self._int(0, self.OBJ_LOCALS - 1)}"
                    f".f{self._int(0, 1)}")
        if kind == "div":
            return (f"({self.int_expr(depth + 1)} / "
                    f"(({self.int_expr(depth + 1)} & 7) + 1))")
        op = self._choice(["+", "-", "*", "&", "|", "^"])
        return (f"({self.int_expr(depth + 1)} {op} "
                f"{self.int_expr(depth + 1)})")

    def condition(self) -> str:
        kind = self._choice(["cmp", "cmp", "refeq", "null", "global"])
        if kind == "cmp":
            op = self._choice(["<", "<=", ">", ">=", "==", "!="])
            return f"{self.int_expr(1)} {op} {self.int_expr(1)}"
        if kind == "refeq":
            a = self._int(0, self.OBJ_LOCALS - 1)
            b = self._int(0, self.OBJ_LOCALS - 1)
            return f"d{a} == d{b}"
        if kind == "null":
            return f"d{self._int(0, self.OBJ_LOCALS - 1)}.link == null"
        return "g0 != null"

    # -- statements -------------------------------------------------------------

    def statements(self, budget: int, depth: int,
                   callable_helpers: List[str]) -> List[str]:
        result: List[str] = []
        while budget > 0:
            kind = self._choice(
                ["assign_int", "assign_int", "store_field", "store_field",
                 "load_field", "rebind", "link", "escape", "global_int",
                 "read_global", "if", "loop", "sync", "call"])
            if kind in ("if", "loop", "sync") and depth >= 2:
                kind = "assign_int"
            if kind == "call" and not callable_helpers:
                kind = "store_field"

            if kind == "assign_int":
                result.append(
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{self.int_expr()};")
                budget -= 1
            elif kind == "store_field":
                result.append(
                    f"d{self._int(0, self.OBJ_LOCALS - 1)}"
                    f".f{self._int(0, 1)} = {self.int_expr(1)};")
                budget -= 1
            elif kind == "load_field":
                result.append(
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"d{self._int(0, self.OBJ_LOCALS - 1)}"
                    f".f{self._int(0, 1)};")
                budget -= 1
            elif kind == "rebind":
                result.append(
                    f"d{self._int(0, self.OBJ_LOCALS - 1)} = new Data();")
                budget -= 1
            elif kind == "link":
                target = self._choice(
                    [f"d{self._int(0, self.OBJ_LOCALS - 1)}", "null"])
                result.append(
                    f"d{self._int(0, self.OBJ_LOCALS - 1)}.link = "
                    f"{target};")
                budget -= 1
            elif kind == "escape":
                result.append(
                    f"g0 = d{self._int(0, self.OBJ_LOCALS - 1)};")
                budget -= 1
            elif kind == "global_int":
                result.append(f"gi = {self.int_expr(1)};")
                budget -= 1
            elif kind == "read_global":
                result.append(
                    "if (g0 != null) { "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = g0.f0; }}")
                budget -= 1
            elif kind == "if":
                then_body = self.statements(self._int(1, 3), depth + 1,
                                            callable_helpers)
                else_body = (self.statements(self._int(1, 2), depth + 1,
                                             callable_helpers)
                             if self._int(0, 1) else None)
                text = (f"if ({self.condition()}) "
                        f"{{ {' '.join(then_body)} }}")
                if else_body is not None:
                    text += f" else {{ {' '.join(else_body)} }}"
                result.append(text)
                budget -= 2
            elif kind == "loop":
                var = self.fresh_name("i")
                body = self.statements(self._int(1, 3), depth + 1,
                                       callable_helpers)
                bound = self._int(1, 5)
                result.append(
                    f"for (int {var} = 0; {var} < {bound}; "
                    f"{var} = {var} + 1) {{ {' '.join(body)} }}")
                budget -= 3
            elif kind == "sync":
                body = self.statements(self._int(1, 2), depth + 1,
                                       callable_helpers)
                result.append(
                    f"synchronized (d{self._int(0, self.OBJ_LOCALS - 1)})"
                    f" {{ {' '.join(body)} }}")
                budget -= 2
            elif kind == "call":
                helper = self._choice(callable_helpers)
                result.append(
                    f"x{self._int(0, self.INT_LOCALS - 1)} = {helper}("
                    f"{self.int_expr(1)}, {self.int_expr(1)});")
                budget -= 1
        return result

    def method_body(self, budget: int, callable_helpers) -> str:
        lines = [
            "int x0 = a;",
            "int x1 = b;",
            f"int x2 = {self._int(-8, 8)};",
            "Data d0 = new Data();",
            "Data d1 = new Data();",
        ]
        lines += self.statements(budget, 0, callable_helpers)
        lines.append("return x0 + x1 * 3 + x2 + d0.f0 + d0.f1 "
                     "+ d1.f0 + d1.f1;")
        return "\n                ".join(lines)

    def generate(self) -> str:
        helper2 = self.method_body(self._int(2, 5), [])
        helper1 = self.method_body(self._int(2, 6), ["h2"])
        entry = self.method_body(self._int(4, 10), ["h1", "h2"])
        return f"""
            class Data {{ int f0; int f1; Data link; }}
            class Main {{
                static Data g0;
                static int gi;
                static int h2(int a, int b) {{
                    {helper2}
                }}
                static int h1(int a, int b) {{
                    {helper1}
                }}
                static int entry(int a, int b) {{
                    {entry}
                }}
            }}
        """
