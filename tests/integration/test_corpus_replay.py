"""Replay the persisted fuzz corpus.

Every ``tests/corpus/*.jasm`` reproducer (seed entries and any shrunk
failure the fuzzer ever wrote) is re-assembled and re-run under all
three engines; results must match the recorded expectations and all
differential invariants must hold.  This keeps old fuzz findings fixed
forever and pins the interpreter's semantics for the seed programs.
"""

import glob
import json
import os

import pytest

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "corpus")
ENTRIES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.jasm")))


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "jasm_path", ENTRIES,
    ids=[os.path.splitext(os.path.basename(p))[0] for p in ENTRIES])
def test_corpus_entry_replays_clean(jasm_path):
    from repro.verify.fuzz import replay_corpus_entry
    failure = replay_corpus_entry(jasm_path)
    assert failure is None, failure


@pytest.mark.parametrize(
    "jasm_path", ENTRIES,
    ids=[os.path.splitext(os.path.basename(p))[0] for p in ENTRIES])
def test_corpus_jasm_round_trips(jasm_path):
    """to_asm(assemble(text)) is a fixpoint for every corpus entry."""
    from repro.bytecode.asmtext import assemble, to_asm
    with open(jasm_path) as handle:
        text = handle.read()
    reassembled = to_asm(assemble(text))
    assert to_asm(assemble(reassembled)) == reassembled


def test_corpus_sidecars_are_complete():
    for jasm_path in ENTRIES:
        meta_path = jasm_path[:-len(".jasm")] + ".json"
        assert os.path.exists(meta_path), f"missing {meta_path}"
        with open(meta_path) as handle:
            meta = json.load(handle)
        for key in ("category", "entry", "probe_calls", "expected",
                    "source"):
            assert key in meta, f"{meta_path} lacks {key!r}"
        for key in ("results", "allocations", "monitor_enters",
                    "monitor_exits", "g0", "gi"):
            assert key in meta["expected"], \
                f"{meta_path} expected lacks {key!r}"
