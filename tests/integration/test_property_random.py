"""Property-based differential testing (hypothesis).

For randomly generated programs, every execution engine and every
compiler configuration must agree on the result, keep monitors balanced,
and PEA must never increase the dynamic allocation count — the paper's
"at most as many dynamic allocations as in the original code".
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bytecode import Interpreter
from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

from fuzz_seed import hypothesis_seed
from program_generator import ProgramGenerator

CONFIGS = (
    ("no_ea", CompilerConfig.no_ea),
    ("equi", CompilerConfig.equi_escape),
    ("pea", CompilerConfig.partial_escape),
)

_SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much])


def run_all(source, args):
    """Run under the interpreter + the three compiled configurations;
    returns {name: (result, heap_delta)}."""
    outcomes = {}
    program = compile_source(source)
    interp = Interpreter(program)
    before = interp.heap.stats.copy()
    result = interp.call("Main.entry", *args)
    outcomes["interp"] = (result, interp.heap.stats.delta(before))
    for name, factory in CONFIGS:
        prog = compile_source(source)
        vm = VM(prog, factory(compile_threshold=3))
        for _ in range(6):
            vm.call("Main.entry", *args)
            prog.reset_statics()
        before = vm.heap_snapshot()
        value = vm.call("Main.entry", *args)
        outcomes[name] = (value, vm.heap_snapshot().delta(before))
    return outcomes


@hypothesis_seed
@_SETTINGS
@given(data=st.data(),
       a=st.integers(min_value=-20, max_value=20),
       b=st.integers(min_value=-20, max_value=20))
def test_differential_semantics(data, a, b):
    source = ProgramGenerator.from_hypothesis(data.draw).generate()
    outcomes = run_all(source, (a, b))
    reference_result = outcomes["interp"][0]
    for name, (result, heap) in outcomes.items():
        assert result == reference_result, (name, source)
        assert heap.monitor_enters == heap.monitor_exits, (name, source)
    assert outcomes["pea"][1].allocations <= \
        outcomes["no_ea"][1].allocations, source
    assert outcomes["equi"][1].allocations <= \
        outcomes["no_ea"][1].allocations, source


@hypothesis_seed
@_SETTINGS
@given(data=st.data())
def test_compilation_never_crashes_and_graph_verifies(data):
    source = ProgramGenerator.from_hypothesis(data.draw).generate()
    program = compile_source(source)
    from repro.jit import Compiler
    from repro.verify import verify_graph
    compiler = Compiler(program, CompilerConfig.partial_escape())
    for name in ("entry", "h1", "h2"):
        result = compiler.compile(program.method(f"Main.{name}"))
        verify_graph(result.graph)


@hypothesis_seed
@_SETTINGS
@given(data=st.data(),
       a=st.integers(min_value=-10, max_value=10))
def test_equi_escape_never_beats_pea_on_allocations(data, a):
    """Flow-sensitivity strictly refines the flow-insensitive analysis:
    PEA removes at least the allocations equi-escape removes."""
    source = ProgramGenerator.from_hypothesis(data.draw).generate()
    outcomes = run_all(source, (a, 1 - a))
    assert outcomes["pea"][1].allocations <= \
        outcomes["equi"][1].allocations, source
