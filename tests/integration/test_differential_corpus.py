"""Hand-written differential corpus: realistic programs executed under
every engine/configuration, checking results, heap effects and the
allocation-monotonicity guarantee."""

import pytest

from vm_harness import run_everywhere


def test_linked_list_building_and_sum():
    runs = run_everywhere("""
        class Node { int value; Node next; }
        class C {
            static int m(int n) {
                Node head = null;
                for (int i = 0; i < n; i = i + 1) {
                    Node node = new Node();
                    node.value = i;
                    node.next = head;
                    head = node;
                }
                int sum = 0;
                while (head != null) {
                    sum = sum + head.value;
                    head = head.next;
                }
                return sum;
            }
        }
    """, "C.m", (25,))
    # Every node is reachable through the list during the second loop;
    # they must all be real.
    assert runs["pea"].heap.allocations == 25


def test_string_keyed_lookup():
    run_everywhere("""
        class Entry { String key; int value; }
        class C {
            static int m(int n) {
                Entry e1 = new Entry();
                e1.key = "alpha";
                e1.value = 10;
                Entry e2 = new Entry();
                e2.key = "beta";
                e2.value = 20;
                int total = 0;
                for (int i = 0; i < n; i = i + 1) {
                    String probe = "alpha";
                    if (i % 2 == 0) { probe = "beta"; }
                    if (e1.key == probe) { total = total + e1.value; }
                    if (e2.key == probe) { total = total + e2.value; }
                }
                return total;
            }
        }
    """, "C.m", (10,))


def test_matrix_multiply_with_flat_arrays():
    run_everywhere("""
        class C {
            static int m(int n) {
                int[] a = new int[n * n];
                int[] b = new int[n * n];
                int[] c = new int[n * n];
                for (int i = 0; i < n * n; i = i + 1) {
                    a[i] = i + 1;
                    b[i] = i * 2 - 3;
                }
                for (int i = 0; i < n; i = i + 1) {
                    for (int j = 0; j < n; j = j + 1) {
                        int acc = 0;
                        for (int k = 0; k < n; k = k + 1) {
                            acc = acc + a[i * n + k] * b[k * n + j];
                        }
                        c[i * n + j] = acc;
                    }
                }
                int checksum = 0;
                for (int i = 0; i < n * n; i = i + 1) {
                    checksum = checksum ^ c[i];
                }
                return checksum;
            }
        }
    """, "C.m", (5,))


def test_visitor_over_class_hierarchy():
    run_everywhere("""
        class Shape { int area() { return 0; } }
        class Square extends Shape {
            int side;
            Square(int side) { this.side = side; }
            int area() { return side * side; }
        }
        class Rect extends Shape {
            int w; int h;
            Rect(int w, int h) { this.w = w; this.h = h; }
            int area() { return w * h; }
        }
        class C {
            static int m(int n) {
                int total = 0;
                for (int i = 0; i < n; i = i + 1) {
                    Shape s = null;
                    if (i % 3 == 0) { s = new Square(i); }
                    else {
                        if (i % 3 == 1) { s = new Rect(i, i + 1); }
                        else { s = new Shape(); }
                    }
                    total = total + s.area();
                    if (s instanceof Square) { total = total + 1; }
                }
                return total;
            }
        }
    """, "C.m", (20,))


def test_state_machine_with_boxed_states():
    run_everywhere("""
        class State { int id; State(int id) { this.id = id; } }
        class C {
            static int m(int steps) {
                State current = new State(0);
                int trace = 0;
                for (int i = 0; i < steps; i = i + 1) {
                    int next = (current.id * 3 + i) % 7;
                    current = new State(next);
                    trace = trace * 7 + current.id;
                    trace = trace % 1000003;
                }
                return trace;
            }
        }
    """, "C.m", (30,))


def test_accumulator_passed_between_methods():
    runs = run_everywhere("""
        class Acc {
            int total;
            void add(int v) { total = total + v; }
        }
        class C {
            static void addRange(Acc acc, int from, int to) {
                for (int i = from; i < to; i = i + 1) { acc.add(i); }
            }
            static int m(int n) {
                Acc acc = new Acc();
                addRange(acc, 0, n);
                addRange(acc, n, n * 2);
                return acc.total;
            }
        }
    """, "C.m", (10,))
    # After inlining both calls, the accumulator never escapes.
    assert runs["pea"].heap.allocations == 0


def test_exception_style_error_signalling():
    from repro.bytecode import ThrownException
    source = """
        class Err { int code; Err(int code) { this.code = code; } }
        class C {
            static int checked(int v) {
                if (v < 0) { throw new Err(v); }
                return v * 2;
            }
            static int m(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + checked(i);
                }
                return acc;
            }
        }
    """
    run_everywhere(source, "C.m", (10,))
    # And the throwing path behaves identically everywhere.
    from vm_harness import run_config, run_interpreted
    from repro.jit import CompilerConfig
    with pytest.raises(ThrownException):
        run_interpreted(source, "C.checked", (-1,))
    with pytest.raises(ThrownException):
        run_config(source, "C.checked", (-1,),
                   CompilerConfig.partial_escape(),
                   warmup_args=(5,))


def test_object_graph_rotation():
    run_everywhere("""
        class Cell { Cell next; int v; }
        class C {
            static int m(int n) {
                Cell a = new Cell();
                Cell b = new Cell();
                Cell c = new Cell();
                a.next = b; b.next = c; c.next = a;
                a.v = 1; b.v = 2; c.v = 3;
                Cell cursor = a;
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + cursor.v;
                    cursor = cursor.next;
                }
                return acc;
            }
        }
    """, "C.m", (10,))


def test_global_cache_with_eviction():
    run_everywhere("""
        class CacheLine {
            int tag; int data;
            CacheLine(int tag, int data) { this.tag = tag; this.data = data; }
        }
        class C {
            static CacheLine line0;
            static CacheLine line1;
            static int lookups;
            static int m(int n) {
                int hits = 0;
                for (int i = 0; i < n; i = i + 1) {
                    int tag = (i / 4) % 3;
                    lookups = lookups + 1;
                    if (line0 != null && line0.tag == tag) {
                        hits = hits + line0.data;
                    } else {
                        if (line1 != null && line1.tag == tag) {
                            hits = hits + line1.data;
                            line1 = line0;
                        }
                        line0 = new CacheLine(tag, tag * 100);
                    }
                }
                return hits + lookups;
            }
        }
    """, "C.m", (40,))


def test_synchronized_producer_consumer_queue():
    run_everywhere("""
        class Queue {
            int[] items;
            int head; int tail;
            Queue(int capacity) { this.items = new int[capacity]; }
            synchronized void put(int v) {
                items[tail % items.length] = v;
                tail = tail + 1;
            }
            synchronized int take() {
                int v = items[head % items.length];
                head = head + 1;
                return v;
            }
        }
        class C {
            static int m(int n) {
                Queue q = new Queue(16);
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    q.put(i * 3);
                    if (i % 2 == 1) { acc = acc + q.take(); }
                }
                return acc;
            }
        }
    """, "C.m", (16,))


def test_nested_conditionals_with_partial_escape():
    run_everywhere("""
        class Buf { int v; }
        class C {
            static Buf spill;
            static int m(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    Buf b = new Buf();
                    b.v = i * i;
                    if (i % 8 == 0) {
                        if (i % 16 == 0) { spill = b; }
                        acc = acc + b.v * 2;
                    } else {
                        acc = acc + b.v;
                    }
                }
                return acc;
            }
        }
    """, "C.m", (32,))


def test_recursion_with_objects():
    run_everywhere("""
        class Frame { int depth; Frame(int depth) { this.depth = depth; } }
        class C {
            static int descend(int depth) {
                Frame f = new Frame(depth);
                if (f.depth <= 0) { return 0; }
                return f.depth + descend(f.depth - 1);
            }
            static int m(int n) { return descend(n); }
        }
    """, "C.m", (12,))
