"""Calibration tool: solves each workload's ballast constants so its
measured Table 1 deltas land near the paper's row.

Not a benchmark itself — run manually when workloads change::

    python benchmarks/calibrate.py [workload ...]

It measures the un-ballasted workload, solves analytically for the
escaping-bytes / allocation-count ballast, then iterates on the compute
ballast (crunch rounds) until the simulated speedup converges to the
paper's value.  The result is pasted into
``src/repro/benchsuite/workloads/tuning.py``.
"""

from __future__ import annotations

import copy
import sys

from repro.benchsuite.harness import compare_workload
# Import the RAW (un-ballasted) definitions: calibration must not see
# the currently-applied tuning.
from repro.benchsuite.workloads.base import Workload, apply_ballast
from repro.benchsuite.workloads.dacapo import DACAPO
from repro.benchsuite.workloads.scaladacapo import SCALADACAPO
from repro.benchsuite.workloads.specjbb import SPECJBB_ALL

ALL_WORKLOADS = DACAPO + SCALADACAPO + SPECJBB_ALL

#: Cost-model constants (mirrors CostModel defaults).
MINI_BYTES = 24.0
MINI_ALLOC_CYCLES = 24 + MINI_BYTES
RETAINED_FIXED_BYTES = 48.0  # holder object + array header


def measure(workload: Workload):
    comparison = compare_workload(copy.copy(workload))
    without, with_pea = comparison.without, comparison.with_pea
    return {
        "bytes0": without.kb_per_iteration * 1024,
        "bytes1": with_pea.kb_per_iteration * 1024,
        "count0": without.allocations_per_iteration,
        "count1": with_pea.allocations_per_iteration,
        "cycles0": without.cycles_per_iteration,
        "cycles1": with_pea.cycles_per_iteration,
        "speed": comparison.speedup_pct,
        "mb_pct": comparison.kb_delta_pct,
        "allocs_pct": comparison.allocs_delta_pct,
    }


def solve(workload: Workload, passes: int = 4):
    paper = workload.paper
    base = measure(workload)
    size = workload.iteration_size

    temp_bytes = base["bytes0"] - base["bytes1"]
    temp_count = base["count0"] - base["count1"]

    minis = 0
    retain = 0
    if paper.allocs_delta_pct < 0 and temp_count > 0:
        target_total = temp_count / (-paper.allocs_delta_pct / 100.0)
        extra = max(0.0, target_total - base["count0"])
        minis = max(0, round(extra / size))
    if paper.mb_delta_pct < 0 and temp_bytes > 0:
        target_total = temp_bytes / (-paper.mb_delta_pct / 100.0)
        extra = max(0.0, target_total - base["bytes0"])
        per_loop = extra / size - MINI_BYTES * minis
        if per_loop > RETAINED_FIXED_BYTES:
            retain = max(0, round((per_loop - RETAINED_FIXED_BYTES) / 8))
    # mini allocations also come with a Retained pair per loop iteration
    if retain and minis >= 2:
        minis = max(0, minis - 2)

    crunch = 0
    removed = base["cycles0"] - base["cycles1"]
    if paper.speedup_pct > 0 and removed > 0:
        for _ in range(passes):
            candidate = apply_ballast(copy.copy(workload), crunch,
                                      retain, minis)
            result = measure(candidate)
            if abs(result["speed"] - paper.speedup_pct) < \
                    max(0.4, 0.10 * abs(paper.speedup_pct)):
                return (crunch, retain, minis), result
            # speedup = R / denom where denom = PEA cycles/iteration;
            # crunch cycles enter denom exactly (native cycle cost).
            removed_now = result["cycles0"] - result["cycles1"]
            denom_needed = removed_now / (paper.speedup_pct / 100.0)
            extra = denom_needed - result["cycles1"]
            crunch = max(0, round(crunch + extra / size))
        candidate = apply_ballast(copy.copy(workload), crunch, retain,
                                  minis)
        return (crunch, retain, minis), measure(candidate)
    candidate = apply_ballast(copy.copy(workload), crunch, retain, minis)
    return (crunch, retain, minis), measure(candidate)


def main(names):
    tuning = {}
    for workload in ALL_WORKLOADS:
        if names and workload.name not in names:
            continue
        if workload.paper and (workload.paper.mb_delta_pct
                               or workload.paper.speedup_pct):
            (crunch, retain, minis), result = solve(workload)
        else:
            (crunch, retain, minis), result = (0, 0, 0), \
                measure(workload)
        tuning[workload.name] = (crunch, retain, minis)
        paper = workload.paper
        print(f"{workload.name:12} crunch={crunch:5} retain={retain:4} "
              f"minis={minis:2} | MB {result['mb_pct']:+6.1f}% "
              f"(paper {paper.mb_delta_pct:+6.1f}%) "
              f"allocs {result['allocs_pct']:+6.1f}% "
              f"(paper {paper.allocs_delta_pct:+6.1f}%) "
              f"speed {result['speed']:+6.1f}% "
              f"(paper {paper.speedup_pct:+6.1f}%)")
        sys.stdout.flush()
    print("\nTUNING = {")
    for name, value in tuning.items():
        print(f"    {name!r}: {value},")
    print("}")


if __name__ == "__main__":
    main(set(sys.argv[1:]))
