"""Microbenchmarks of the analysis itself: compilation throughput of the
Partial Escape Analysis phase on the paper's node patterns (Figures 4-7)
and on the running example.

These measure *compiler* speed (the phase is the paper's "practical
algorithm" claim), not generated-code speed.
"""

import pytest

from repro.frontend import build_graph
from repro.lang import compile_source
from repro.opt import (CanonicalizerPhase, DeadCodeEliminationPhase,
                       GlobalValueNumberingPhase, InliningPhase)
from repro.pea import Effects, PartialEscapePhase, PEAProcessor

PATTERNS = {
    "fig4_scalar_replacement": """
        class Pair { int a; int b; }
        class C { static int m(int x) {
            Pair p = new Pair();
            p.a = x; p.b = x * 2;
            return p.a + p.b;
        } }
    """,
    "fig4_monitors": """
        class Box { int v; }
        class C { static int m(int x) {
            Box b = new Box();
            synchronized (b) { synchronized (b) { b.v = x; } }
            return b.v;
        } }
    """,
    "fig5_escaped_store": """
        class Box { int v; }
        class C {
            static Box g;
            static int m(int x) {
                Box b = new Box();
                g = b;
                b.v = x;
                return b.v;
            }
        }
    """,
    "fig6_merge": """
        class Box { int v; }
        class C {
            static Box g;
            static int m(int x) {
                Box b = new Box();
                if (x > 0) { b.v = 1; } else { g = b; }
                return b.v;
            }
        }
    """,
    "fig7_loop": """
        class Acc { int t; }
        class C { static int m(int n) {
            Acc a = new Acc();
            int i = 0;
            while (i < n) {
                i = i + 1;
                if (i % 3 == 0) { continue; }
                a.t = a.t + i;
            }
            return a.t;
        } }
    """,
    "listing4_cache_key": """
        class Key {
            int idx; Object ref;
            Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
            synchronized boolean sameAs(Key o) {
                return idx == o.idx && ref == o.ref;
            }
        }
        class C {
            static Key cacheKey;
            static int m(int idx) {
                Key key = new Key(idx, null);
                if (cacheKey != null && key.sameAs(cacheKey)) { return 1; }
                cacheKey = key;
                return 0;
            }
        }
    """,
}


def prepared_graph(source):
    program = compile_source(source)
    graph = build_graph(program, program.method("C.m"))
    InliningPhase(program).run(graph)
    CanonicalizerPhase().run(graph)
    GlobalValueNumberingPhase().run(graph)
    DeadCodeEliminationPhase().run(graph)
    return program, graph


@pytest.mark.parametrize("pattern", sorted(PATTERNS))
def test_pea_analysis_throughput(benchmark, pattern):
    """Time the *analysis* (state propagation, no graph mutation)."""
    program, graph = prepared_graph(PATTERNS[pattern])
    benchmark.group = "pea-analysis"

    def analyze():
        effects = Effects(graph)
        processor = PEAProcessor(graph, program, effects)
        tool = processor.run()
        # Discard effects: measure analysis cost only.
        effects.rollback((0, 0, 0))
        return tool.virtualized_allocations

    virtualized = benchmark(analyze)
    assert virtualized >= 1


@pytest.mark.parametrize("pattern", sorted(PATTERNS))
def test_full_phase_throughput(benchmark, pattern):
    """Time the full phase (analysis + effect application) on a fresh
    graph each round."""
    benchmark.group = "pea-phase"
    source = PATTERNS[pattern]

    def compile_with_pea():
        program, graph = prepared_graph(source)
        PartialEscapePhase(program, 1).run(graph)
        return graph.node_count()

    nodes = benchmark(compile_with_pea)
    assert nodes > 0
