"""Table 1, SPECjbb2005 row, without and with PEA.

Formatted table: ``python -m repro.benchsuite.table1 --suite specjbb``.
"""

import pytest

from repro.benchsuite.workloads import by_name

from conftest import bench_iteration


@pytest.mark.parametrize("config", ["no_ea", "pea"])
def test_specjbb_iteration(benchmark, config):
    workload = by_name("specjbb2005")
    benchmark.group = "specjbb2005"
    checksum = bench_iteration(benchmark, workload, config)
    assert isinstance(checksum, int)
