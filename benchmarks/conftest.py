"""Shared fixtures for the pytest-benchmark harness.

Each benchmark measures one *benchmark iteration* (``Bench.iterate``)
on a pre-warmed VM.  Wall time here reflects the simulator's speed; the
paper-relevant metrics — simulated cycles, allocated bytes, allocation
and monitor counts — are attached to each benchmark's ``extra_info`` and
summarized by the Table 1 / comparison report generators
(``python -m repro.benchsuite.table1``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.benchsuite.workloads import Workload
from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

_vm_cache: Dict[Tuple[str, str], VM] = {}

CONFIG_FACTORIES = {
    "no_ea": CompilerConfig.no_ea,
    "equi": CompilerConfig.equi_escape,
    "pea": CompilerConfig.partial_escape,
}


def warmed_vm(workload: Workload, config_name: str) -> VM:
    """A VM with the workload's hot code compiled (cached per session)."""
    key = (workload.name, config_name)
    vm = _vm_cache.get(key)
    if vm is None:
        program = compile_source(workload.source,
                                 natives=workload.natives or None)
        vm = VM(program, CONFIG_FACTORIES[config_name]())
        for _ in range(min(workload.warmup_iterations, 25)):
            vm.call(workload.entry, workload.iteration_size)
            program.reset_statics()
        _vm_cache[key] = vm
    return vm


def bench_iteration(benchmark, workload: Workload, config_name: str):
    """Benchmark one iteration; returns the checksum."""
    vm = warmed_vm(workload, config_name)
    heap_before = vm.heap_snapshot()
    cycles_before = vm.cycles_snapshot()
    iterations = {"n": 0}

    def one_iteration():
        iterations["n"] += 1
        result = vm.call(workload.entry, workload.iteration_size)
        vm.program.reset_statics()
        return result

    checksum = benchmark(one_iteration)
    count = max(1, iterations["n"])
    heap = vm.heap_snapshot().delta(heap_before)
    benchmark.extra_info.update({
        "config": config_name,
        "checksum": checksum,
        "sim_cycles_per_iteration": round(
            (vm.cycles_snapshot() - cycles_before) / count),
        "kb_per_iteration": round(
            heap.allocated_bytes / count / 1024.0, 2),
        "allocations_per_iteration": round(heap.allocations / count, 1),
        "monitor_ops_per_iteration": round(
            heap.monitor_operations / count, 1),
    })
    return checksum
