"""Table 1, DaCapo block: each shown benchmark without and with PEA.

The full formatted table (including the MB / allocation deltas and the
suite average with the quiet benchmarks) is produced by::

    python -m repro.benchsuite.table1 --suite dacapo
"""

import pytest

from repro.benchsuite.workloads import DACAPO_SHOWN, by_name

from conftest import bench_iteration


@pytest.mark.parametrize("config", ["no_ea", "pea"])
@pytest.mark.parametrize("name", [w.name for w in DACAPO_SHOWN])
def test_dacapo_iteration(benchmark, name, config):
    workload = by_name(name)
    benchmark.group = f"dacapo:{name}"
    checksum = bench_iteration(benchmark, workload, config)
    assert isinstance(checksum, int)


@pytest.mark.parametrize("name", [w.name for w in DACAPO_SHOWN])
def test_dacapo_configs_agree(name):
    """Both configurations must compute the same checksum."""
    from conftest import warmed_vm
    workload = by_name(name)
    results = set()
    for config in ("no_ea", "pea"):
        vm = warmed_vm(workload, config)
        results.add(vm.call(workload.entry, workload.iteration_size))
        vm.program.reset_statics()
    assert len(results) == 1
