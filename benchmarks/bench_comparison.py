"""Section 6.2: flow-insensitive EA vs Partial Escape Analysis.

Representative benchmarks under all three configurations; the suite-level
averages the paper quotes (0.9 vs 2.2 / 7.4 vs 10.4 / 5.4 vs 8.7 %) are
produced by ``python -m repro.benchsuite.comparison``.
"""

import pytest

from repro.benchsuite.workloads import by_name

from conftest import bench_iteration, warmed_vm

REPRESENTATIVE = ["h2", "sunflow", "factorie", "specs", "specjbb2005"]


@pytest.mark.parametrize("config", ["no_ea", "equi", "pea"])
@pytest.mark.parametrize("name", REPRESENTATIVE)
def test_three_configs(benchmark, name, config):
    workload = by_name(name)
    benchmark.group = f"comparison:{name}"
    bench_iteration(benchmark, workload, config)


@pytest.mark.parametrize("name", REPRESENTATIVE)
def test_pea_refines_equi_escape(name):
    """PEA removes at least the allocations the baseline EA removes."""
    workload = by_name(name)
    allocations = {}
    for config in ("no_ea", "equi", "pea"):
        vm = warmed_vm(workload, config)
        before = vm.heap_snapshot()
        vm.call(workload.entry, workload.iteration_size)
        vm.program.reset_statics()
        allocations[config] = \
            vm.heap_snapshot().delta(before).allocations
    assert allocations["pea"] <= allocations["equi"] <= \
        allocations["no_ea"]
