"""Ablations of the design choices DESIGN.md calls out.

Each ablation disables one ingredient of the full system and measures
the factorie analog (the workload with the largest PEA win), so the
contribution of each piece is visible:

- ``full``           : the complete pipeline;
- ``single_pass``    : PEA applied once instead of twice;
- ``no_arrays``      : array virtualization off (Section 5.2's virtual
                       arrays);
- ``no_check_folds`` : no compile-time folding of reference
                       equality/null/type checks on virtual objects
                       (the v8-style "very local" restriction the paper
                       contrasts against);
- ``no_read_elim``   : no load/store forwarding after EA;
- ``no_inlining``    : no inlining — the paper stresses that PEA "is
                       particularly effective if it can interact with
                       other parts of the compiler, such as inlining";
- ``no_speculation`` : no profile-driven branch pruning (rare escaping
                       branches rejoin and force materialization).
"""

import pytest

from repro.benchsuite.workloads import by_name
from repro.jit import VM, CompilerConfig
from repro.lang import compile_source

ABLATIONS = {
    "full": {},
    "single_pass": {"pea_iterations": 1},
    "no_arrays": {"pea_virtualize_arrays": False},
    "no_check_folds": {"pea_fold_checks": False},
    "no_read_elim": {"read_elimination": False},
    "no_inlining": {"inline": False},
    "no_speculation": {"speculate_branches": False},
}

_cache = {}


def measure(ablation: str):
    key = ablation
    if key in _cache:
        return _cache[key]
    workload = by_name("factorie")
    config = CompilerConfig.partial_escape(**ABLATIONS[ablation])
    program = compile_source(workload.source,
                             natives=workload.natives or None)
    vm = VM(program, config)
    for _ in range(25):
        vm.call(workload.entry, workload.iteration_size)
        program.reset_statics()
    heap_before = vm.heap_snapshot()
    cycles_before = vm.cycles_snapshot()
    checksum = vm.call(workload.entry, workload.iteration_size)
    result = {
        "checksum": checksum,
        "allocations": vm.heap_snapshot().delta(heap_before).allocations,
        "cycles": vm.cycles_snapshot() - cycles_before,
        "vm": vm,
        "workload": workload,
    }
    _cache[key] = result
    return result


@pytest.mark.parametrize("ablation", sorted(ABLATIONS))
def test_ablation_iteration(benchmark, ablation):
    result = measure(ablation)
    vm, workload = result["vm"], result["workload"]
    benchmark.group = "ablation:factorie"

    def one_iteration():
        value = vm.call(workload.entry, workload.iteration_size)
        vm.program.reset_statics()
        return value

    benchmark(one_iteration)
    benchmark.extra_info.update({
        "ablation": ablation,
        "allocations_per_iteration": result["allocations"],
        "sim_cycles_per_iteration": round(result["cycles"]),
    })


def test_ablations_preserve_semantics():
    checksums = {name: measure(name)["checksum"] for name in ABLATIONS}
    assert len(set(checksums.values())) == 1, checksums


def test_inlining_is_load_bearing():
    """Without inlining, constructor calls make every receiver escape."""
    assert measure("no_inlining")["allocations"] > \
        measure("full")["allocations"]


def test_each_ingredient_contributes_or_is_neutral():
    full = measure("full")["allocations"]
    for name in ("single_pass", "no_arrays", "no_inlining"):
        assert measure(name)["allocations"] >= full, name
