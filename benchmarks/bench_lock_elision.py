"""Section 6's "Number of Locks": monitor-operation reductions.

The paper observes significant monitor reductions only on tomcat (−4%)
and SPECjbb2005 (−3.8%); the lock-heavy analogs here expose the counter
so the effect is measurable (also see ``table1 --locks``).
"""

import pytest

from repro.benchsuite.workloads import by_name

from conftest import bench_iteration, warmed_vm

LOCKY = ["tomcat", "specjbb2005", "actors", "fop"]


@pytest.mark.parametrize("config", ["no_ea", "pea"])
@pytest.mark.parametrize("name", LOCKY)
def test_lock_heavy_iteration(benchmark, name, config):
    workload = by_name(name)
    benchmark.group = f"locks:{name}"
    bench_iteration(benchmark, workload, config)


@pytest.mark.parametrize("name", LOCKY)
def test_pea_never_adds_monitor_operations(name):
    workload = by_name(name)
    ops = {}
    for config in ("no_ea", "pea"):
        vm = warmed_vm(workload, config)
        before = vm.heap_snapshot()
        vm.call(workload.entry, workload.iteration_size)
        vm.program.reset_statics()
        ops[config] = vm.heap_snapshot().delta(before).monitor_operations
    assert ops["pea"] <= ops["no_ea"]
