"""Table 1, ScalaDaCapo block: each benchmark without and with PEA.

Formatted table: ``python -m repro.benchsuite.table1 --suite
scaladacapo``.
"""

import pytest

from repro.benchsuite.workloads import SCALADACAPO, by_name

from conftest import bench_iteration


@pytest.mark.parametrize("config", ["no_ea", "pea"])
@pytest.mark.parametrize("name", [w.name for w in SCALADACAPO])
def test_scaladacapo_iteration(benchmark, name, config):
    workload = by_name(name)
    benchmark.group = f"scaladacapo:{name}"
    checksum = bench_iteration(benchmark, workload, config)
    assert isinstance(checksum, int)
