"""Sea-of-nodes IR: the node base class and edge machinery.

The IR follows Graal IR's structure (Duboscq et al., APPLC 2013), which the
paper's Figures 2-8 use:

- **Fixed nodes** have a position in control flow.  Most are
  "fixed-with-next" (one successor); control splits (If) have several;
  control sinks (Return, Deoptimize) have none; Ends feed Merges.
- **Floating nodes** (constants, parameters, arithmetic, phis, frame
  states) have no control position and hang off their users purely by
  data edges.

Every node tracks its *usages* (the nodes that have it as an input), so
optimizations can replace a node everywhere in O(usages).  Input slots are
declared per class via ``_input_slots`` / ``_input_lists`` and
``_successor_slots``; ``__init_subclass__`` generates properties that keep
the usage/predecessor bookkeeping consistent on every assignment.

One deliberate deviation from Graal, anticipated by the paper's Section 7:
all *virtualizable* nodes (allocation, field access, monitors, reference
equality, type checks) are fixed in control flow, so Partial Escape
Analysis can run without a schedule.  The paper notes that "by adding
simple invariants to the Graal IR ... the analysis could be performed
without a schedule" — this IR adopts that invariant.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple


class IRError(Exception):
    """A structural error in the graph."""


class NodeInputList:
    """A variable-arity input list that maintains usage bookkeeping."""

    __slots__ = ("_owner", "_items")

    def __init__(self, owner: "Node"):
        self._owner = owner
        self._items: List[Optional["Node"]] = []

    # -- list protocol -----------------------------------------------------

    def __len__(self):
        return len(self._items)

    def __iter__(self) -> Iterator[Optional["Node"]]:
        return iter(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def __setitem__(self, index, value: Optional["Node"]):
        old = self._items[index]
        if old is not None:
            old._remove_usage(self._owner)
        self._items[index] = value
        if value is not None:
            value._add_usage(self._owner)

    def append(self, value: Optional["Node"]):
        self._items.append(value)
        if value is not None:
            value._add_usage(self._owner)

    def extend(self, values):
        for value in values:
            self.append(value)

    def insert(self, index, value: Optional["Node"]):
        self._items.insert(index, value)
        if value is not None:
            value._add_usage(self._owner)

    def pop(self, index=-1):
        value = self._items.pop(index)
        if value is not None:
            value._remove_usage(self._owner)
        return value

    def remove(self, value: "Node"):
        self._items.remove(value)
        if value is not None:
            value._remove_usage(self._owner)

    def index(self, value) -> int:
        return self._items.index(value)

    def clear(self):
        while self._items:
            self.pop()

    def set_all(self, values):
        self.clear()
        self.extend(values)

    def snapshot(self) -> List[Optional["Node"]]:
        return list(self._items)

    def __repr__(self):
        return f"NodeInputList({self._items!r})"


def _make_input_property(name: str):
    def getter(self: "Node"):
        return self._ins.get(name)

    def setter(self: "Node", value: Optional["Node"]):
        old = self._ins.get(name)
        if old is value:
            return
        if old is not None:
            old._remove_usage(self)
        self._ins[name] = value
        if value is not None:
            value._add_usage(self)

    return property(getter, setter)


def _make_successor_property(name: str):
    def getter(self: "Node"):
        return self._succs.get(name)

    def setter(self: "Node", value: Optional["Node"]):
        old = self._succs.get(name)
        if old is value:
            return
        if old is not None and old.predecessor is self:
            old.predecessor = None
        self._succs[name] = value
        if value is not None:
            if value.predecessor is not None and value.predecessor is not \
                    self:
                raise IRError(
                    f"{value} already has predecessor "
                    f"{value.predecessor}; cannot attach to {self}")
            value.predecessor = self

    return property(getter, setter)


class Node:
    """Base class of all IR nodes."""

    #: Names of fixed-arity data inputs.
    _input_slots: Tuple[str, ...] = ()
    #: Names of variable-arity data input lists.
    _input_lists: Tuple[str, ...] = ()
    #: Names of control-flow successor slots.
    _successor_slots: Tuple[str, ...] = ()
    #: True for nodes with a control-flow position.
    is_fixed: bool = False
    #: True for nodes PEA can virtualize (see module docstring).
    is_virtualizable: bool = False

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # Generate accessor properties for every slot declared anywhere
        # in the MRO (including plain mixins like StateSplitMixin) that
        # does not have one yet.
        for name in cls._all_input_slots():
            if not isinstance(getattr(cls, name, None), property):
                setattr(cls, name, _make_input_property(name))
        for name in cls._all_successor_slots():
            if not isinstance(getattr(cls, name, None), property):
                setattr(cls, name, _make_successor_property(name))

    def __init__(self, **inputs):
        self.graph: Optional[Any] = None
        self.id: int = -1
        self._ins: Dict[str, Optional[Node]] = {}
        self._in_lists: Dict[str, NodeInputList] = {}
        self._succs: Dict[str, Optional[Node]] = {}
        #: usage -> reference count (a user may reference us twice).
        self._usages: Dict[Node, int] = {}
        self.predecessor: Optional[Node] = None
        for name in self._all_input_lists():
            self._in_lists[name] = NodeInputList(self)
        for name, value in inputs.items():
            if name in self._all_input_slots():
                setattr(self, name, value)
            elif name in self._all_input_lists():
                self._in_lists[name].extend(value)
            else:
                raise TypeError(f"{type(self).__name__} has no input "
                                f"{name!r}")

    # -- class introspection ------------------------------------------------

    @classmethod
    def _all_input_slots(cls) -> Tuple[str, ...]:
        result: Tuple[str, ...] = ()
        for klass in reversed(cls.__mro__):
            result += klass.__dict__.get("_input_slots", ())
        return result

    @classmethod
    def _all_input_lists(cls) -> Tuple[str, ...]:
        result: Tuple[str, ...] = ()
        for klass in reversed(cls.__mro__):
            result += klass.__dict__.get("_input_lists", ())
        return result

    @classmethod
    def _all_successor_slots(cls) -> Tuple[str, ...]:
        result: Tuple[str, ...] = ()
        for klass in reversed(cls.__mro__):
            result += klass.__dict__.get("_successor_slots", ())
        return result

    # -- usages -----------------------------------------------------------------

    def _add_usage(self, user: "Node"):
        self._usages[user] = self._usages.get(user, 0) + 1

    def _remove_usage(self, user: "Node"):
        count = self._usages.get(user, 0)
        if count <= 1:
            self._usages.pop(user, None)
        else:
            self._usages[user] = count - 1

    @property
    def usages(self) -> List["Node"]:
        """The nodes using this node as an input (deterministic order)."""
        return list(self._usages.keys())

    def usage_count(self) -> int:
        return sum(self._usages.values())

    def has_no_usages(self) -> bool:
        return not self._usages

    # -- inputs ------------------------------------------------------------------

    def input_list(self, name: str) -> NodeInputList:
        return self._in_lists[name]

    def inputs(self) -> Iterator["Node"]:
        """All non-None data inputs, slots first then lists."""
        for name in self._all_input_slots():
            value = self._ins.get(name)
            if value is not None:
                yield value
        for name in self._all_input_lists():
            for value in self._in_lists[name]:
                if value is not None:
                    yield value

    def named_inputs(self) -> Iterator[Tuple[str, "Node"]]:
        for name in self._all_input_slots():
            value = self._ins.get(name)
            if value is not None:
                yield name, value
        for name in self._all_input_lists():
            for index, value in enumerate(self._in_lists[name]):
                if value is not None:
                    yield f"{name}[{index}]", value

    def replace_input(self, old: "Node", new: Optional["Node"]):
        """Replace every occurrence of *old* in this node's inputs."""
        for name in self._all_input_slots():
            if self._ins.get(name) is old:
                setattr(self, name, new)
        for name in self._all_input_lists():
            node_list = self._in_lists[name]
            for index, value in enumerate(node_list):
                if value is old:
                    node_list[index] = new

    def clear_inputs(self):
        for name in self._all_input_slots():
            setattr(self, name, None)
        for name in self._all_input_lists():
            self._in_lists[name].clear()

    # -- successors --------------------------------------------------------------

    def successors(self) -> Iterator["Node"]:
        for name in self._all_successor_slots():
            value = self._succs.get(name)
            if value is not None:
                yield value

    def clear_successors(self):
        for name in self._all_successor_slots():
            setattr(self, name, None)

    # -- graph-wide edits -----------------------------------------------------------

    def replace_at_usages(self, replacement: Optional["Node"]):
        """Replace this node with *replacement* at every usage."""
        for user in self.usages:
            user.replace_input(self, replacement)

    def safe_delete(self):
        """Remove this node from the graph; it must be unused and
        (if fixed) already unlinked from control flow."""
        if self._usages:
            raise IRError(f"deleting {self} which still has usages "
                          f"{self.usages}")
        if self.predecessor is not None:
            raise IRError(f"deleting {self} which still has a predecessor")
        self.clear_inputs()
        self.clear_successors()
        if self.graph is not None:
            self.graph._unregister(self)

    # -- display ---------------------------------------------------------------------

    def node_name(self) -> str:
        name = type(self).__name__
        return name[:-4] if name.endswith("Node") else name

    def extra_repr(self) -> str:
        """Subclass hook: extra text for dumps."""
        return ""

    def __repr__(self):
        extra = self.extra_repr()
        extra = f" {extra}" if extra else ""
        return f"{self.id}|{self.node_name()}{extra}"

    # Nodes are identity-hashed; never define __eq__.
    __hash__ = object.__hash__


class FloatingNode(Node):
    """A node without a control-flow position."""

    is_fixed = False


class FixedNode(Node):
    """A node with a control-flow position."""

    is_fixed = True


class FixedWithNextNode(FixedNode):
    """A fixed node with exactly one successor, named ``next``."""

    _successor_slots = ("next",)


class ControlSinkNode(FixedNode):
    """A fixed node that ends control flow (no successors)."""


class ControlSplitNode(FixedNode):
    """A fixed node with multiple successors."""
