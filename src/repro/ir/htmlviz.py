"""Standalone HTML visualization of IR graphs (an IGV-lite).

Produces a self-contained HTML file: fixed nodes laid out top-to-bottom
in control-flow order (one column per branch where possible), floating
inputs drawn as thin gray edges, control flow as bold edges.  No
external dependencies — the layout is computed here and rendered as
inline SVG.

Usage::

    from repro.ir.htmlviz import write_html
    write_html(graph, "graph.html")
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional, Tuple

from .graph import Graph
from .node import Node
from .nodes import (BeginNode, DeoptimizeNode, EndNode, FixedGuardNode,
                    FrameStateNode, IfNode, LoopBeginNode, LoopEndNode,
                    MergeNode, MonitorEnterNode, MonitorExitNode,
                    NewArrayNode, NewInstanceNode, ReturnNode, StartNode,
                    VirtualObjectNode)

_NODE_W = 190
_NODE_H = 30
_X_GAP = 40
_Y_GAP = 26

_CATEGORY_COLORS = {
    "control": "#ffd9a0",
    "allocation": "#ffb3b3",
    "monitor": "#d0b3ff",
    "guard": "#fff3a0",
    "sink": "#c9c9c9",
    "floating": "#d6e8ff",
    "state": "#e8e8e8",
}


def _category(node: Node) -> str:
    if isinstance(node, (NewInstanceNode, NewArrayNode)):
        return "allocation"
    if isinstance(node, (MonitorEnterNode, MonitorExitNode)):
        return "monitor"
    if isinstance(node, FixedGuardNode):
        return "guard"
    if isinstance(node, (ReturnNode, DeoptimizeNode)):
        return "sink"
    if isinstance(node, (FrameStateNode, VirtualObjectNode)):
        return "state"
    if node.is_fixed:
        return "control"
    return "floating"


def _control_order(graph: Graph) -> List[Node]:
    """Fixed nodes in a stable control-flow-ish order (as dump_graph)."""
    order: List[Node] = []
    seen = set()
    worklist: List[Node] = [graph.start] if graph.start else []
    while worklist:
        node = worklist.pop(0)
        if node is None or node in seen:
            continue
        seen.add(node)
        order.append(node)
        if isinstance(node, EndNode):
            merge = node.merge()
            if merge is not None and merge not in seen and \
                    all(end in seen for end in merge.ends):
                worklist.append(merge)
            continue
        if isinstance(node, LoopEndNode):
            continue
        for succ in node.successors():
            worklist.append(succ)
    return order


def layout(graph: Graph, include_states: bool = False
           ) -> Dict[Node, Tuple[int, int]]:
    """Assign (x, y) pixel positions: fixed spine in column 0+, floating
    nodes in side columns near their first user."""
    positions: Dict[Node, Tuple[int, int]] = {}
    fixed = _control_order(graph)
    for row, node in enumerate(fixed):
        positions[node] = (0, row)
    row_of = {node: r for (node, r) in
              ((n, positions[n][1]) for n in fixed)}
    # Floating nodes: column 1..N at the row of their earliest user.
    occupancy: Dict[int, set] = {}
    for node in graph.nodes():
        if node in positions or node.is_fixed:
            continue
        if not include_states and isinstance(
                node, (FrameStateNode, VirtualObjectNode)):
            continue
        user_rows = [row_of.get(u) for u in node.usages]
        user_rows = [r for r in user_rows if r is not None]
        row = min(user_rows) if user_rows else 0
        column = 1
        while row in occupancy.get(column, set()):
            column += 1
        occupancy.setdefault(column, set()).add(row)
        positions[node] = (column, row)
    return positions


def render_svg(graph: Graph, include_states: bool = False) -> str:
    positions = layout(graph, include_states)
    if not positions:
        return "<svg/>"

    def pixel(position):
        column, row = position
        return (20 + column * (_NODE_W + _X_GAP),
                20 + row * (_NODE_H + _Y_GAP))

    width = 60 + (1 + max(c for c, _ in positions.values())) * \
        (_NODE_W + _X_GAP)
    height = 60 + (1 + max(r for _, r in positions.values())) * \
        (_NODE_H + _Y_GAP)

    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
             f'height="{height}" font-family="monospace" font-size="11">']
    # Edges first.
    for node, position in positions.items():
        x1, y1 = pixel(position)
        for succ in node.successors():
            if succ not in positions:
                continue
            x2, y2 = pixel(positions[succ])
            parts.append(
                f'<line x1="{x1 + _NODE_W // 2}" y1="{y1 + _NODE_H}" '
                f'x2="{x2 + _NODE_W // 2}" y2="{y2}" stroke="#333" '
                'stroke-width="2.2" marker-end="url(#arrow)"/>')
        for name, inp in node.named_inputs():
            if inp not in positions:
                continue
            x2, y2 = pixel(positions[inp])
            parts.append(
                f'<line x1="{x1}" y1="{y1 + _NODE_H // 2}" '
                f'x2="{x2 + _NODE_W}" y2="{y2 + _NODE_H // 2}" '
                'stroke="#9ab" stroke-width="1" stroke-dasharray="4 2"/>')
    parts.append(
        '<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="7" markerHeight="7" orient="auto-start-reverse">'
        '<path d="M 0 0 L 10 5 L 0 10 z" fill="#333"/></marker></defs>')
    # Nodes on top.
    for node, position in positions.items():
        x, y = pixel(position)
        fill = _CATEGORY_COLORS[_category(node)]
        label = html.escape(repr(node))[:34]
        parts.append(
            f'<g><rect x="{x}" y="{y}" width="{_NODE_W}" '
            f'height="{_NODE_H}" rx="6" fill="{fill}" stroke="#555"/>'
            f'<text x="{x + 8}" y="{y + 19}">{label}</text>'
            f'<title>{html.escape(repr(node))}\n'
            + html.escape("\n".join(
                f"{name} <- {value!r}"
                for name, value in node.named_inputs()))
            + "</title></g>")
    parts.append("</svg>")
    return "".join(parts)


def render_html(graph: Graph, include_states: bool = False) -> str:
    name = html.escape(repr(graph))
    legend = "".join(
        f'<span style="background:{color};padding:2px 8px;'
        f'margin-right:6px;border:1px solid #555;border-radius:4px">'
        f"{kind}</span>"
        for kind, color in _CATEGORY_COLORS.items())
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{name}</title></head>
<body style="font-family:sans-serif">
<h2>{name}</h2>
<p>{legend}</p>
<p>bold edges = control flow (downward); dashed = data inputs.</p>
<div style="overflow:auto">{render_svg(graph, include_states)}</div>
</body></html>"""


def write_html(graph: Graph, path: str,
               include_states: bool = False) -> str:
    """Write the visualization to *path*; returns the path."""
    with open(path, "w") as handle:
        handle.write(render_html(graph, include_states))
    return path
