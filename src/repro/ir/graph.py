"""The IR graph container."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from .node import (FixedNode, FixedWithNextNode, IRError, Node,
                   NodeInputList)
from .nodes.control import (BeginNode, DeoptimizeNode, EndNode, IfNode,
                            LoopBeginNode, LoopEndNode, LoopExitNode,
                            MergeNode, ReturnNode, StartNode)
from .nodes.framestate import FrameStateNode
from .nodes.values import ConstantNode, ParameterNode, PhiNode


class Graph:
    """A compilation unit's IR: a registry of nodes rooted at ``start``.

    Nodes may be created detached (``graph=None``) and registered later
    with :meth:`add`; this is how Partial Escape Analysis builds its
    deferred effects.
    """

    def __init__(self, method=None):
        #: The JMethod this graph was built from (for frame states/dumps).
        self.method = method
        self._nodes: Dict[int, Node] = {}
        self._next_id = 0
        self._constants: Dict[Any, ConstantNode] = {}
        self.start: Optional[StartNode] = None
        self.parameters: List[ParameterNode] = []
        #: On-stack-replacement entry variant: the loop-header bci this
        #: graph enters at (``None`` for a normal method-entry graph).
        self.osr_entry_bci: Optional[int] = None
        #: For an OSR graph: the interpreter local slots (in parameter
        #: order) the entry expects as arguments — the runtime passes
        #: ``[locals_[slot] for slot in osr_local_slots]``.
        self.osr_local_slots: List[int] = []
        #: Deoptless continuation entry: number of operand-stack values
        #: the entry additionally expects *after* the local-slot
        #: parameters (a continuation may enter mid-expression, e.g. at
        #: a branch with its operands still on the stack).  The runtime
        #: passes ``[locals_[s] for s in osr_local_slots] + stack``.
        self.entry_stack_depth: int = 0

    # -- registration ---------------------------------------------------

    def add(self, node: Node) -> Node:
        """Register *node* (and, transitively, any detached inputs)."""
        if node.graph is self:
            return node
        if node.graph is not None:
            raise IRError(f"{node} already belongs to another graph")
        node.graph = self
        node.id = self._next_id
        self._next_id += 1
        self._nodes[node.id] = node
        for inp in node.inputs():
            if inp.graph is None:
                self.add(inp)
        return node

    def _unregister(self, node: Node):
        self._nodes.pop(node.id, None)
        node.graph = None

    def adopt(self, node: Node) -> Node:
        """Move *node* from another graph into this one (inlining)."""
        if node.graph is self:
            return node
        if node.graph is not None:
            node.graph._unregister(node)
        node.graph = None
        return self.add(node)

    def nodes(self) -> Iterator[Node]:
        """All registered nodes in id order (stable)."""
        return iter(list(self._nodes.values()))

    def nodes_of(self, *types) -> Iterator[Node]:
        for node in self.nodes():
            if isinstance(node, types):
                yield node

    def node_count(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node.graph is self

    # -- factories ---------------------------------------------------------

    def constant(self, value) -> ConstantNode:
        """The unique ConstantNode for *value* (constants are GVN'd at
        creation)."""
        key = (type(value).__name__, value)
        existing = self._constants.get(key)
        if existing is not None and existing.graph is self:
            return existing
        node = self.add(ConstantNode(value))
        self._constants[key] = node
        return node

    @property
    def null(self) -> ConstantNode:
        return self.constant(None)

    # -- fixed-node surgery ----------------------------------------------------

    def insert_before(self, anchor: FixedNode, node: FixedWithNextNode):
        """Splice *node* into control flow immediately before *anchor*."""
        self.add(node)
        predecessor = anchor.predecessor
        if predecessor is None:
            raise IRError(f"{anchor} has no predecessor")
        self._replace_successor(predecessor, anchor, node)
        node.next = anchor

    def insert_after(self, anchor: FixedWithNextNode,
                     node: FixedWithNextNode):
        """Splice *node* into control flow immediately after *anchor*."""
        self.add(node)
        successor = anchor.next
        anchor.next = node
        node.next = successor

    @staticmethod
    def _replace_successor(predecessor: Node, old: Node, new: Node):
        for name in predecessor._all_successor_slots():
            if predecessor._succs.get(name) is old:
                setattr(predecessor, name, new)
                return
        raise IRError(f"{old} is not a successor of {predecessor}")

    def remove_fixed(self, node: FixedWithNextNode):
        """Unlink a fixed-with-next node from control flow and delete it.

        The node must have no remaining (value) usages.
        """
        successor = node.next
        predecessor = node.predecessor
        node.next = None
        if predecessor is not None:
            self._replace_successor(predecessor, node, successor)
        node.replace_at_usages(None)  # only frame states may linger
        node.safe_delete()

    def replace_fixed(self, node: FixedWithNextNode, replacement: Node):
        """Replace a fixed node's value with *replacement* at all usages,
        then unlink and delete it."""
        node.replace_at_usages(replacement)
        self.remove_fixed(node)

    # -- verification -------------------------------------------------------------

    def verify(self):
        """Check structural invariants; raises IRError on violation."""
        for node in self.nodes():
            if node.id not in self._nodes or self._nodes[node.id] is not \
                    node:
                raise IRError(f"{node} broken registration")
            for inp in node.inputs():
                if inp.graph is not self:
                    raise IRError(
                        f"{node} has unregistered input {inp}")
                if node not in inp._usages:
                    raise IRError(
                        f"{node} missing from usages of its input {inp}")
            for succ in node.successors():
                if succ.graph is not self:
                    raise IRError(
                        f"{node} has unregistered successor {succ}")
                if succ.predecessor is not node:
                    raise IRError(
                        f"{succ}.predecessor is {succ.predecessor}, "
                        f"expected {node}")
            if isinstance(node, MergeNode):
                arity = node.phi_input_count()
                for phi in node.phis():
                    if len(phi.values) != arity:
                        raise IRError(
                            f"{phi} has {len(phi.values)} inputs, merge "
                            f"{node} expects {arity}")
                for end in node.ends:
                    if not isinstance(end, EndNode):
                        raise IRError(f"{node} end {end} is not an End")
            if isinstance(node, PhiNode):
                if node.merge is None or node.merge.graph is not self:
                    raise IRError(f"{phi_desc(node)} has no merge")
            if isinstance(node, FixedWithNextNode):
                if node.next is None and node.graph is self:
                    raise IRError(f"{node} has no next")
        if self.start is not None:
            self._verify_reachability()

    def _verify_reachability(self):
        """Every fixed node reachable from start must be registered and
        form a well-formed control-flow graph."""
        seen = set()
        worklist: List[Node] = [self.start]
        while worklist:
            node = worklist.pop()
            if node in seen:
                continue
            seen.add(node)
            if node.graph is not self:
                raise IRError(f"reachable node {node} not registered")
            for succ in node.successors():
                worklist.append(succ)
            if isinstance(node, EndNode):
                merge = node.merge()
                if merge is None:
                    raise IRError(f"{node} feeds no merge")
                worklist.append(merge)
            if isinstance(node, LoopEndNode):
                if node.loop_begin is None:
                    raise IRError(f"{node} has no loop begin")

    # -- dump helper --------------------------------------------------------

    def __repr__(self):
        name = self.method.qualified_name if self.method else "?"
        return f"<Graph {name}: {self.node_count()} nodes>"


def phi_desc(phi: PhiNode) -> str:
    return repr(phi)
