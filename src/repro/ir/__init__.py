"""Graal-style sea-of-nodes SSA intermediate representation."""

from . import nodes
from .dot import to_dot
from .htmlviz import render_html, write_html
from .graph import Graph
from .node import (ControlSinkNode, ControlSplitNode, FixedNode,
                   FixedWithNextNode, FloatingNode, IRError, Node,
                   NodeInputList)
from .printer import dump_graph, format_node

__all__ = [
    "nodes", "to_dot", "render_html", "write_html", "Graph", "ControlSinkNode", "ControlSplitNode",
    "FixedNode", "FixedWithNextNode", "FloatingNode", "IRError", "Node",
    "NodeInputList", "dump_graph", "format_node",
]
