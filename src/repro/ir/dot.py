"""Graphviz export of IR graphs (control edges bold and downward, data
edges thin and upward, matching the paper's Figure 2 conventions)."""

from __future__ import annotations

from .graph import Graph
from .nodes.framestate import FrameStateNode


def to_dot(graph: Graph, include_framestates: bool = False) -> str:
    """Render *graph* as a Graphviz ``digraph`` string."""
    lines = ["digraph ir {", '  node [shape=box, fontname="monospace"];']
    for node in graph.nodes():
        if not include_framestates and isinstance(node, FrameStateNode):
            continue
        label = repr(node).replace('"', '\\"')
        style = ""
        if node.is_fixed:
            style = ', style=filled, fillcolor="#ffe0a0"'
        lines.append(f'  n{node.id} [label="{label}"{style}];')
    for node in graph.nodes():
        if not include_framestates and isinstance(node, FrameStateNode):
            continue
        for name, inp in node.named_inputs():
            if not include_framestates and isinstance(inp, FrameStateNode):
                continue
            lines.append(
                f'  n{node.id} -> n{inp.id} '
                f'[label="{name}", color=gray, fontsize=9];')
        for succ in node.successors():
            lines.append(
                f"  n{node.id} -> n{succ.id} [style=bold, weight=10];")
    lines.append("}")
    return "\n".join(lines)
