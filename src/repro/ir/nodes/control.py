"""Control-flow nodes: Start, Begin, End, Merge, If, Return, Deoptimize."""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..node import (ControlSinkNode, ControlSplitNode, FixedNode,
                    FixedWithNextNode, IRError)


class StartNode(FixedWithNextNode):
    """The unique entry of a graph."""


class BeginNode(FixedWithNextNode):
    """Marks the entry of a basic block after a control split."""


class EndNode(FixedNode):
    """Ends a branch; a forward input to exactly one MergeNode."""

    def merge(self) -> Optional["MergeNode"]:
        for user in self.usages:
            if isinstance(user, MergeNode):
                return user
        return None


class MergeNode(FixedWithNextNode):
    """A control-flow join.  Its forward predecessors are EndNodes held in
    the ``ends`` input list; data joins are expressed by PhiNodes whose
    ``merge`` input points here."""

    _input_lists = ("ends",)

    @property
    def ends(self):
        return self.input_list("ends")

    def add_end(self, end: EndNode):
        self.ends.append(end)

    def end_index(self, end: EndNode) -> int:
        """The phi-input index corresponding to forward end *end*."""
        return self.ends.index(end)

    def phis(self) -> Iterator["PhiNode"]:
        from .values import PhiNode
        for user in self.usages:
            if isinstance(user, PhiNode) and user.merge is self:
                yield user

    def phi_input_count(self) -> int:
        return len(self.ends)

    def remove_end(self, end: EndNode):
        """Remove a forward end and the matching phi inputs."""
        index = self.ends.index(end)
        for phi in list(self.phis()):
            phi.values.pop(index)
        self.ends.pop(index)


class LoopBeginNode(MergeNode):
    """A loop header.  Forward entry arrives via ``ends`` (exactly one
    after graph building); back edges are LoopEndNodes in ``loop_ends``.
    Phi inputs are ordered: forward ends first, then loop ends."""

    _input_lists = ("loop_ends",)

    @property
    def loop_ends(self):
        return self.input_list("loop_ends")

    def add_loop_end(self, loop_end: "LoopEndNode"):
        self.loop_ends.append(loop_end)
        loop_end.loop_begin = self

    def phi_input_count(self) -> int:
        return len(self.ends) + len(self.loop_ends)

    def end_index(self, end: FixedNode) -> int:
        """Phi-input index for a forward end or a loop end."""
        if isinstance(end, LoopEndNode):
            return len(self.ends) + self.loop_ends.index(end)
        return self.ends.index(end)


class LoopEndNode(FixedNode):
    """A back edge: jumps to its loop's LoopBeginNode."""

    _input_slots = ("loop_begin",)


class LoopExitNode(FixedWithNextNode):
    """Marks control flow leaving a loop."""

    _input_slots = ("loop_begin",)


class IfNode(ControlSplitNode):
    """A two-way control split on an int condition (0 = false)."""

    _input_slots = ("condition",)
    _successor_slots = ("true_successor", "false_successor")

    #: Estimated probability that the condition is true (from profiling).
    true_probability: float = 0.5

    def extra_repr(self):
        return f"p={self.true_probability:.2f}"


class ReturnNode(ControlSinkNode):
    """Method return; ``value`` is None for void methods."""

    _input_slots = ("value",)


class DeoptimizeNode(ControlSinkNode):
    """Transfers execution to the interpreter at ``state``.

    ``reason`` is a diagnostic tag (``"null_check"``, ``"bounds_check"``,
    ``"unreached"``, ``"throw"``, ...).
    """

    _input_slots = ("state",)

    def __init__(self, reason: str = "deopt", **inputs):
        super().__init__(**inputs)
        self.reason = reason

    def extra_repr(self):
        return self.reason
