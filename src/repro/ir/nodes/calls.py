"""Method invocation nodes."""

from __future__ import annotations

from ...bytecode.instructions import MethodRef
from ..node import FixedWithNextNode
from .memory import StateSplitMixin


class InvokeNode(StateSplitMixin, FixedWithNextNode):
    """A (not yet inlined) call.

    ``kind`` is ``"static"``, ``"virtual"`` or ``"special"``.  ``bci`` is
    the position of the invoke in the *surrounding* method's bytecode,
    used to build outer frame states when the callee is inlined.

    ``state_before`` (virtual calls only) captures the frame *including
    the arguments still on the stack*: it is the deopt target of the
    type-speculation guard inserted by profile-guided inlining — the
    interpreter re-executes the invokevirtual and dispatches honestly.

    Any reference argument of a non-inlined invoke escapes: the callee is
    outside the compilation scope.
    """

    _input_slots = ("state_before",)
    _input_lists = ("arguments",)

    def __init__(self, kind: str, target: MethodRef, return_type: str,
                 bci: int, **inputs):
        super().__init__(**inputs)
        self.kind = kind
        self.target = target
        self.return_type = return_type
        self.bci = bci
        #: The method whose bytecode contains this invoke (profiling key).
        self.source_method = None

    @property
    def arguments(self):
        return self.input_list("arguments")

    @property
    def has_value(self) -> bool:
        return self.return_type != "void"

    def extra_repr(self):
        return f"{self.kind} {self.target}"
