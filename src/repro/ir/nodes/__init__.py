"""All IR node classes, re-exported flat."""

from .calls import InvokeNode
from .control import (BeginNode, DeoptimizeNode, EndNode, IfNode,
                      LoopBeginNode, LoopEndNode, LoopExitNode, MergeNode,
                      ReturnNode, StartNode)
from .framestate import FrameStateNode
from .guards import FixedGuardNode
from .memory import (AccessFieldNode, ArrayLengthNode, LoadFieldNode,
                     LoadIndexedNode, LoadStaticNode, StateSplitMixin,
                     StoreFieldNode, StoreIndexedNode, StoreStaticNode)
from .objects import (InstanceOfNode, IsNullNode, NewArrayNode,
                      NewInstanceNode, RefEqualsNode)
from .sync import MonitorEnterNode, MonitorExitNode
from .values import (ARITHMETIC_EVAL, COMMUTATIVE_OPS, COMPARE_EVAL,
                     MIRRORED_COMPARE, NEGATED_COMPARE,
                     BinaryArithmeticNode, ConditionalNode, ConstantNode,
                     IntCompareNode, NegNode, ParameterNode, PhiNode)
from .virtual import (EscapeObjectStateNode, VirtualArrayNode,
                      VirtualInstanceNode, VirtualObjectNode)

__all__ = [
    "InvokeNode",
    "BeginNode", "DeoptimizeNode", "EndNode", "IfNode", "LoopBeginNode",
    "LoopEndNode", "LoopExitNode", "MergeNode", "ReturnNode", "StartNode",
    "FrameStateNode", "FixedGuardNode",
    "AccessFieldNode", "ArrayLengthNode", "LoadFieldNode",
    "LoadIndexedNode", "LoadStaticNode", "StateSplitMixin",
    "StoreFieldNode", "StoreIndexedNode", "StoreStaticNode",
    "InstanceOfNode", "IsNullNode", "NewArrayNode", "NewInstanceNode",
    "RefEqualsNode",
    "MonitorEnterNode", "MonitorExitNode",
    "ARITHMETIC_EVAL", "COMMUTATIVE_OPS", "COMPARE_EVAL",
    "MIRRORED_COMPARE", "NEGATED_COMPARE", "BinaryArithmeticNode",
    "ConditionalNode", "ConstantNode", "IntCompareNode", "NegNode",
    "ParameterNode", "PhiNode",
    "EscapeObjectStateNode", "VirtualArrayNode", "VirtualInstanceNode",
    "VirtualObjectNode",
]
