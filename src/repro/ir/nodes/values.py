"""Floating value nodes: constants, parameters, phis, arithmetic."""

from __future__ import annotations

from typing import Any, Optional

from ...bytecode.interpreter import (java_div, java_rem, java_shl, java_shr,
                                     wrap_int)
from ..node import FloatingNode, IRError


class ConstantNode(FloatingNode):
    """A compile-time constant: int, bool (as int), str or None (null)."""

    def __init__(self, value: Any, **inputs):
        super().__init__(**inputs)
        self.value = value

    @property
    def is_null(self):
        return self.value is None

    def extra_repr(self):
        return repr(self.value)


class ParameterNode(FloatingNode):
    """The *index*-th parameter of the compiled method."""

    def __init__(self, index: int, **inputs):
        super().__init__(**inputs)
        self.index = index

    def extra_repr(self):
        return f"P({self.index})"


class PhiNode(FloatingNode):
    """An SSA phi attached to a MergeNode.

    ``values[i]`` corresponds to the merge's i-th predecessor (forward
    ends first, then loop ends for loop headers).
    """

    _input_slots = ("merge",)
    _input_lists = ("values",)

    @property
    def values(self):
        return self.input_list("values")

    def value_at(self, index: int):
        return self.values[index]

    def set_value_at(self, index: int, value):
        self.values[index] = value

    def is_degenerate(self) -> Optional["PhiNode"]:
        """If all inputs are the same node (or self), return that node."""
        unique = None
        for value in self.values:
            if value is self or value is None:
                continue
            if unique is None:
                unique = value
            elif unique is not value:
                return None
        return unique

    def extra_repr(self):
        return f"({', '.join(str(v.id) if v else '?' for v in self.values)})"


#: Arithmetic ops usable with BinaryArithmeticNode, with evaluators.
ARITHMETIC_EVAL = {
    "add": lambda a, b: wrap_int(a + b),
    "sub": lambda a, b: wrap_int(a - b),
    "mul": lambda a, b: wrap_int(a * b),
    "div": java_div,
    "rem": java_rem,
    "and": lambda a, b: wrap_int(a & b),
    "or": lambda a, b: wrap_int(a | b),
    "xor": lambda a, b: wrap_int(a ^ b),
    "shl": java_shl,
    "shr": java_shr,
}

#: Commutative subset (used by global value numbering).
COMMUTATIVE_OPS = frozenset(("add", "mul", "and", "or", "xor"))

#: Integer comparison ops, with evaluators producing 0/1.
#: "below" is the bounds-check compare: ``0 <= a < b`` (an unsigned
#: below when b is a non-negative array length).
COMPARE_EVAL = {
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "below": lambda a, b: 1 if 0 <= a < b else 0,
}

#: Mirror op when operands are swapped (x < y  <=>  y > x).
MIRRORED_COMPARE = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge",
                    "gt": "lt", "ge": "le"}

#: Negated op (for branch polarity flips).
NEGATED_COMPARE = {"eq": "ne", "ne": "eq", "lt": "ge", "le": "gt",
                   "gt": "le", "ge": "lt"}


class BinaryArithmeticNode(FloatingNode):
    """``op(x, y)`` over 64-bit wrapping integers."""

    _input_slots = ("x", "y")

    def __init__(self, op: str, **inputs):
        if op not in ARITHMETIC_EVAL:
            raise IRError(f"unknown arithmetic op {op!r}")
        super().__init__(**inputs)
        self.op = op

    def evaluate(self, x: int, y: int) -> int:
        return ARITHMETIC_EVAL[self.op](x, y)

    def extra_repr(self):
        return self.op


class NegNode(FloatingNode):
    """Integer negation."""

    _input_slots = ("value",)


class IntCompareNode(FloatingNode):
    """``op(x, y)`` over ints, producing 0 or 1."""

    _input_slots = ("x", "y")

    def __init__(self, op: str, **inputs):
        if op not in COMPARE_EVAL:
            raise IRError(f"unknown compare op {op!r}")
        super().__init__(**inputs)
        self.op = op

    def evaluate(self, x: int, y: int) -> int:
        return COMPARE_EVAL[self.op](x, y)

    def extra_repr(self):
        return self.op


class ConditionalNode(FloatingNode):
    """``condition ? true_value : false_value`` (select)."""

    _input_slots = ("condition", "true_value", "false_value")
