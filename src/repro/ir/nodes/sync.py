"""Synchronization nodes."""

from __future__ import annotations

from ..node import FixedWithNextNode
from .memory import StateSplitMixin


class MonitorEnterNode(StateSplitMixin, FixedWithNextNode):
    """Acquire the monitor of ``object``.

    Virtualizable: entering a monitor on a virtual object just increments
    the object state's lock count (Figure 4 (c))."""

    _input_slots = ("object",)
    is_virtualizable = True


class MonitorExitNode(StateSplitMixin, FixedWithNextNode):
    """Release the monitor of ``object`` (Figure 4 (d))."""

    _input_slots = ("object",)
    is_virtualizable = True
