"""Memory access nodes.  All are fixed in control flow (see the module
docstring of :mod:`repro.ir.node` for why) and the stores are
"state splits": they carry the frame state *after* their side effect,
exactly as described in Section 2 of the paper."""

from __future__ import annotations

from ...bytecode.instructions import FieldRef
from ..node import FixedWithNextNode


class StateSplitMixin:
    """Mixin for nodes with an observable side effect.

    ``state_after`` maps the machine state after this node back to Java VM
    state; deoptimization at any later non-side-effecting node re-executes
    from here.
    """

    _input_slots = ("state_after",)


class AccessFieldNode(FixedWithNextNode):
    """Base for instance field accesses."""

    _input_slots = ("object",)
    is_virtualizable = True

    def __init__(self, field: FieldRef, **inputs):
        super().__init__(**inputs)
        self.field = field

    def extra_repr(self):
        return str(self.field)


class LoadFieldNode(AccessFieldNode):
    """Read ``object.field``."""


class StoreFieldNode(StateSplitMixin, AccessFieldNode):
    """Write ``object.field = value``."""

    _input_slots = ("value",)


class LoadStaticNode(FixedWithNextNode):
    """Read a static field.  Never virtualizable — statics are global."""

    def __init__(self, field: FieldRef, **inputs):
        super().__init__(**inputs)
        self.field = field

    def extra_repr(self):
        return str(self.field)


class StoreStaticNode(StateSplitMixin, FixedWithNextNode):
    """Write a static field; its value input escapes."""

    _input_slots = ("value",)

    def __init__(self, field: FieldRef, **inputs):
        super().__init__(**inputs)
        self.field = field

    def extra_repr(self):
        return str(self.field)


class LoadIndexedNode(FixedWithNextNode):
    """Read ``array[index]``."""

    _input_slots = ("array", "index")
    is_virtualizable = True


class StoreIndexedNode(StateSplitMixin, FixedWithNextNode):
    """Write ``array[index] = value``."""

    _input_slots = ("array", "index", "value")
    is_virtualizable = True


class ArrayLengthNode(FixedWithNextNode):
    """Read ``array.length``."""

    _input_slots = ("array",)
    is_virtualizable = True
