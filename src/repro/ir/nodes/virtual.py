"""Virtual object nodes — the "Id" objects of the paper's Listing 7.

A :class:`VirtualObjectNode` identifies one allocation that Partial Escape
Analysis is tracking.  It carries the allocation's *shape* (type and field
names / array length) but no values: the values live in the flow-sensitive
allocation state during analysis, and in
:class:`EscapeObjectStateNode` entries hung off frame states afterwards.
"""

from __future__ import annotations

import itertools
from typing import List

from ..node import FloatingNode

_virtual_ids = itertools.count(1)


class VirtualObjectNode(FloatingNode):
    """Base: the identity of a tracked allocation."""

    def __init__(self, **inputs):
        super().__init__(**inputs)
        #: Display id matching the paper's "Key (1)" notation.
        self.vid = next(_virtual_ids)

    @property
    def entry_count(self) -> int:
        raise NotImplementedError

    def entry_name(self, index: int) -> str:
        raise NotImplementedError

    def type_name(self) -> str:
        raise NotImplementedError

    def extra_repr(self):
        return f"{self.type_name()} ({self.vid})"


class VirtualInstanceNode(VirtualObjectNode):
    """A tracked object instance; entries are its instance fields."""

    def __init__(self, class_name: str, field_names: List[str], **inputs):
        super().__init__(**inputs)
        self.class_name = class_name
        self.field_names = list(field_names)

    @property
    def entry_count(self) -> int:
        return len(self.field_names)

    def entry_name(self, index: int) -> str:
        return self.field_names[index]

    def field_index(self, name: str) -> int:
        return self.field_names.index(name)

    def type_name(self) -> str:
        return self.class_name


class VirtualArrayNode(VirtualObjectNode):
    """A tracked array of compile-time-constant length."""

    def __init__(self, elem_type: str, length: int, **inputs):
        super().__init__(**inputs)
        self.elem_type = elem_type
        self.length = length

    @property
    def entry_count(self) -> int:
        return self.length

    def entry_name(self, index: int) -> str:
        return f"[{index}]"

    def type_name(self) -> str:
        return f"{self.elem_type}[{self.length}]"


class EscapeObjectStateNode(FloatingNode):
    """A snapshot of a virtual object's contents attached to a frame state.

    ``entries[i]`` is the runtime value of entry *i* of ``virtual_object``
    at the frame state's position; an entry may itself be another
    VirtualObjectNode (nested scalar-replaced objects).  ``lock_count``
    restores elided locks on rematerialization.
    """

    _input_slots = ("virtual_object",)
    _input_lists = ("entries",)

    def __init__(self, lock_count: int = 0, **inputs):
        super().__init__(**inputs)
        self.lock_count = lock_count

    @property
    def entries(self):
        return self.input_list("entries")

    def extra_repr(self):
        locks = f" locks={self.lock_count}" if self.lock_count else ""
        return f"for {self.virtual_object}{locks}"
