"""Frame states: the mapping from optimized code back to Java VM state.

A :class:`FrameStateNode` records, for one method activation, the bytecode
position plus the values of all local variables, the expression stack and
the held method-level locks.  After inlining, states form chains through
``outer`` (the caller's state at the invoke), exactly as described in
Section 2 of the paper.

Deoptimization semantics implemented by :mod:`repro.runtime.deopt`:

- the *innermost* state's ``bci`` names the instruction to re-execute;
- each *outer* state's ``bci`` names the invoke whose result is pending —
  the interpreter resumes at ``bci + 1`` after pushing the callee result.

After Partial Escape Analysis, a frame state may reference
:class:`~repro.ir.nodes.virtual.VirtualObjectNode`s; the matching
:class:`~repro.ir.nodes.virtual.EscapeObjectStateNode` entries in
``virtual_mappings`` carry enough information to rematerialize those
objects (Section 5.5, Figure 8).
"""

from __future__ import annotations

from typing import Optional

from ..node import FloatingNode


class FrameStateNode(FloatingNode):
    """Java VM state at one position of one (possibly inlined) method."""

    _input_slots = ("outer",)
    _input_lists = ("locals_values", "stack_values", "locks",
                    "virtual_mappings")

    def __init__(self, method, bci: int, **inputs):
        super().__init__(**inputs)
        self.method = method
        self.bci = bci

    @property
    def locals_values(self):
        return self.input_list("locals_values")

    @property
    def stack_values(self):
        return self.input_list("stack_values")

    @property
    def locks(self):
        return self.input_list("locks")

    @property
    def virtual_mappings(self):
        return self.input_list("virtual_mappings")

    def outer_chain(self):
        """Yield this state and all outer states, innermost first."""
        state: Optional[FrameStateNode] = self
        while state is not None:
            yield state
            state = state.outer

    def find_mapping(self, virtual_object):
        """The EscapeObjectStateNode for *virtual_object*, or None,
        searching the whole outer chain."""
        for state in self.outer_chain():
            for mapping in state.virtual_mappings:
                if mapping is not None and \
                        mapping.virtual_object is virtual_object:
                    return mapping
        return None

    def extra_repr(self):
        name = self.method.qualified_name if self.method else "?"
        return f"@{name}:{self.bci}"
