"""Speculation: guards that deoptimize instead of raising exceptions.

Graal compiles potentially-trapping operations (null checks, bounds
checks, casts, division) as a *guard* followed by the trap-free
operation.  When a guard fails, execution deoptimizes to the interpreter,
which re-executes the guarded bytecode and raises the proper error.  The
paper's Section 5.5 machinery (virtual objects in frame states) exists
precisely so these deoptimizations still work after scalar replacement.
"""

from __future__ import annotations

from ..node import FixedWithNextNode


class FixedGuardNode(FixedWithNextNode):
    """Deoptimize to ``state`` unless ``condition`` has the expected value.

    The guard passes when ``bool(condition) != negated``; i.e. with
    ``negated=False`` the condition must be true (non-zero).
    """

    _input_slots = ("condition", "state")

    def __init__(self, reason: str = "guard", negated: bool = False,
                 **inputs):
        super().__init__(**inputs)
        self.reason = reason
        self.negated = negated

    def extra_repr(self):
        polarity = "!" if self.negated else ""
        return f"{polarity}{self.reason}"
