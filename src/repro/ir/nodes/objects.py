"""Allocation and reference-typed operations."""

from __future__ import annotations

from ..node import FixedWithNextNode


class NewInstanceNode(FixedWithNextNode):
    """Allocate an instance of ``class_name`` with default field values.

    The primary target of Partial Escape Analysis: processing one of these
    introduces a new virtual object into the allocation state
    (Figure 4 (a) in the paper).
    """

    is_virtualizable = True

    def __init__(self, class_name: str, **inputs):
        super().__init__(**inputs)
        self.class_name = class_name

    def extra_repr(self):
        return self.class_name


class NewArrayNode(FixedWithNextNode):
    """Allocate an array.  Virtualizable only when ``length`` is a
    compile-time constant (the element states must be enumerable)."""

    _input_slots = ("length",)
    is_virtualizable = True

    def __init__(self, elem_type: str, **inputs):
        super().__init__(**inputs)
        self.elem_type = elem_type

    def extra_repr(self):
        return f"{self.elem_type}[]"


class RefEqualsNode(FixedWithNextNode):
    """Reference equality ``x == y`` producing 0/1.

    Virtualizable: "equality checks on object references are always false
    when exactly one of the inputs is virtual; if both inputs are virtual,
    the check will produce true if they refer to the same Id" (Section 5.2).
    """

    _input_slots = ("x", "y")
    is_virtualizable = True


class IsNullNode(FixedWithNextNode):
    """``value == null`` producing 0/1.  A virtual object is never null."""

    _input_slots = ("value",)
    is_virtualizable = True


class InstanceOfNode(FixedWithNextNode):
    """``value instanceof class_name`` producing 0/1.

    Virtualizable: "type checks on virtual objects can also be performed
    at compile time, since the exact type is known" (Section 5.2).
    """

    _input_slots = ("value",)
    is_virtualizable = True

    def __init__(self, class_name: str, **inputs):
        super().__init__(**inputs)
        self.class_name = class_name

    def extra_repr(self):
        return self.class_name
