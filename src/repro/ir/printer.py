"""Textual dumps of IR graphs (the format used in test golden files and
the Figure 2 example dump)."""

from __future__ import annotations

from typing import List, Set

from .graph import Graph
from .node import Node
from .nodes.control import (EndNode, IfNode, LoopBeginNode, LoopEndNode,
                            MergeNode)


def format_node(node: Node) -> str:
    inputs = ", ".join(
        f"{name}={value.id}" for name, value in node.named_inputs())
    inputs = f" [{inputs}]" if inputs else ""
    return f"{node!r}{inputs}"


def dump_graph(graph: Graph, include_floating: bool = True) -> str:
    """Dump the control-flow skeleton in execution order, with floating
    nodes listed afterwards."""
    lines: List[str] = [f"graph {graph!r}"]
    seen: Set[Node] = set()
    worklist: List[Node] = [graph.start] if graph.start else []
    order: List[Node] = []
    while worklist:
        node = worklist.pop(0)
        if node is None or node in seen:
            continue
        seen.add(node)
        order.append(node)
        if isinstance(node, EndNode):
            merge = node.merge()
            if merge is not None and merge not in seen:
                # Only visit a merge once all its forward ends are seen.
                if all(end in seen for end in merge.ends):
                    worklist.append(merge)
            continue
        if isinstance(node, IfNode):
            worklist.append(node.true_successor)
            worklist.append(node.false_successor)
            continue
        if isinstance(node, LoopEndNode):
            continue
        for succ in node.successors():
            worklist.append(succ)
    for node in order:
        indent = "  "
        lines.append(indent + format_node(node))
        if isinstance(node, MergeNode):
            for phi in node.phis():
                lines.append(indent + "  " + format_node(phi))
    if include_floating:
        fixed = set(order)
        floating = [n for n in graph.nodes()
                    if n not in fixed and not n.is_fixed]
        if floating:
            lines.append("  -- floating --")
            for node in sorted(floating, key=lambda n: n.id):
                lines.append("  " + format_node(node))
    return "\n".join(lines)
