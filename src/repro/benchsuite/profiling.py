"""``--profile`` support for the report generators.

Two views, so future performance PRs have a measurement hook:

- a cProfile top-20 (by total time) of the harness run — where the
  *simulator* spends wall-clock time;
- an :class:`~repro.runtime.costmodel.ExecutionStats` per-node-kind
  execution histogram — what the *simulated machine* executes most.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager
from typing import Dict, Optional


@contextmanager
def profiled(profiler: Optional[cProfile.Profile]):
    """Enable *profiler* (if any) for the duration of the block."""
    if profiler is None:
        yield None
        return
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()


def print_profile(profiler: Optional[cProfile.Profile],
                  histogram: Optional[Dict[str, int]],
                  out=sys.stdout, top: int = 20) -> None:
    if profiler is not None:
        print(f"\n-- cProfile: top {top} by total time --", file=out)
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats("tottime").print_stats(top)
    if histogram:
        print("-- simulated machine: node executions by kind --",
              file=out)
        total = sum(histogram.values())
        width = max(len(kind) for kind in histogram)
        for kind, count in sorted(histogram.items(),
                                  key=lambda item: -item[1]):
            share = count / total * 100.0
            print(f"  {kind:<{width}}  {count:>12,}  {share:5.1f}%",
                  file=out)
        print(f"  {'total':<{width}}  {total:>12,}", file=out)
