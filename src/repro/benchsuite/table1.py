"""Regenerates the paper's Table 1: size and number of allocations, and
performance, on the (Scala)DaCapo and SPECjbb2005 analogs.

Usage::

    python -m repro.benchsuite.table1 [--suite dacapo|scaladacapo|specjbb]
                                      [--locks] [--quick]

The table mirrors the paper's layout: per benchmark, KB / iteration
(the paper reports MB — our simulated iterations are smaller), thousands
of allocations / iteration (the paper reports millions), and iterations
per minute on the simulated clock, each without and with Partial Escape
Analysis plus the relative change.  Suite averages include the DaCapo
benchmarks without significant changes, as in the paper's footnote.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import sys
import time
from typing import List, Optional, Sequence

from ..jit import CompilerConfig
from .harness import Comparison, run_suite
from .profiling import print_profile, profiled
from .reporting import num, pct, render_table
from .workloads import (DACAPO, DACAPO_SHOWN, SCALADACAPO, SPECJBB_ALL,
                        SUITES)


def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def table_rows(comparisons: List[Comparison],
               shown: Optional[List[str]] = None) -> List[List[str]]:
    rows = []
    for comparison in comparisons:
        if shown is not None and comparison.workload.name not in shown:
            continue
        without, with_pea = comparison.without, comparison.with_pea
        rows.append([
            comparison.workload.name,
            num(without.kb_per_iteration),
            num(with_pea.kb_per_iteration),
            pct(comparison.kb_delta_pct),
            num(without.allocations_per_iteration / 1000.0, 2),
            num(with_pea.allocations_per_iteration / 1000.0, 2),
            pct(comparison.allocs_delta_pct),
            num(without.iterations_per_minute),
            num(with_pea.iterations_per_minute),
            pct(comparison.speedup_pct),
        ])
    return rows


def average_row(comparisons: List[Comparison], label: str) -> List[str]:
    return [
        label, "", "",
        pct(_average([c.kb_delta_pct for c in comparisons])),
        "", "",
        pct(_average([c.allocs_delta_pct for c in comparisons])),
        "", "",
        pct(_average([c.speedup_pct for c in comparisons])),
    ]


HEADERS = ["benchmark", "KB/it", "KB/it+", "dKB",
           "kAll/it", "kAll/it+", "dAllocs",
           "it/min", "it/min+", "speedup"]


def generate(suites: Sequence[str], quick: bool = False,
             locks: bool = False, out=sys.stdout, jobs: int = 1,
             backend: str = "plan", json_path: Optional[str] = None,
             profile: bool = False) -> dict:
    """Run the selected suites and print Table 1; returns the raw
    comparisons keyed by suite for programmatic use."""
    if profile:
        jobs = 1  # cProfile + histogram need everything in-process
    baseline = CompilerConfig.no_ea(
        execution_backend=backend, collect_node_histogram=profile)
    optimized = CompilerConfig.partial_escape(
        execution_backend=backend, collect_node_histogram=profile)
    histogram = {} if profile else None
    profiler = cProfile.Profile() if profile else None
    results = {}
    wall_clock = {}
    for suite_name in suites:
        workloads = SUITES[suite_name]
        if quick:
            workloads = [w for w in workloads]
            for w in workloads:
                w.warmup_iterations = min(w.warmup_iterations, 25)
        started = time.perf_counter()
        with profiled(profiler):
            comparisons = run_suite(workloads, baseline, optimized,
                                    jobs=jobs, histogram=histogram)
        wall_clock[suite_name] = time.perf_counter() - started
        results[suite_name] = comparisons
        shown = ([w.name for w in DACAPO_SHOWN]
                 if suite_name == "dacapo" else None)
        rows = table_rows(comparisons, shown)
        rows.append(average_row(comparisons, "average"))
        print(f"\n== {suite_name} "
              f"(without PEA vs with PEA) ==", file=out)
        print(render_table(HEADERS, rows), file=out)
        if locks:
            print(f"\n-- {suite_name}: monitor operations/iteration --",
                  file=out)
            lock_rows = [[
                c.workload.name,
                num(c.without.monitor_ops_per_iteration),
                num(c.with_pea.monitor_ops_per_iteration),
                pct(c.monitor_delta_pct)]
                for c in comparisons
                if c.without.monitor_ops_per_iteration > 0]
            print(render_table(["benchmark", "without", "with", "change"],
                               lock_rows), file=out)
    if profile:
        print_profile(profiler, histogram, out=out)
    if json_path:
        _write_json(json_path, results, wall_clock, jobs, backend, quick)
    return results


def _write_json(path: str, results: dict, wall_clock: dict, jobs: int,
                backend: str, quick: bool) -> None:
    """Per-workload cycles/iteration + harness wall-clock, for CI
    tracking (BENCH_table1.json)."""
    payload = {
        "backend": backend,
        "jobs": jobs,
        "quick": quick,
        "suites": {},
    }
    for suite_name, comparisons in results.items():
        payload["suites"][suite_name] = {
            "harness_wall_clock_seconds": round(
                wall_clock[suite_name], 3),
            "workloads": {
                c.workload.name: {
                    "checksum": c.without.checksum,
                    "cycles_per_iteration_no_ea":
                        c.without.cycles_per_iteration,
                    "cycles_per_iteration_pea":
                        c.with_pea.cycles_per_iteration,
                    "deopts_no_ea": c.without.deopts,
                    "deopts_pea": c.with_pea.deopts,
                } for c in comparisons
            },
        }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES) + ["all"],
                        default="all")
    parser.add_argument("--locks", action="store_true",
                        help="also print monitor-operation changes")
    parser.add_argument("--quick", action="store_true",
                        help="fewer warmup iterations")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run workloads in N parallel processes")
    parser.add_argument("--backend", choices=["plan", "legacy"],
                        default="plan",
                        help="compiled-code execution backend")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write per-workload metrics as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile top-20 + per-node-kind execution "
                             "histogram (forces --jobs 1)")
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    generate(suites, quick=args.quick, locks=args.locks, jobs=args.jobs,
             backend=args.backend, json_path=args.json,
             profile=args.profile)


if __name__ == "__main__":
    main()
