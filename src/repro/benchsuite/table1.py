"""Regenerates the paper's Table 1: size and number of allocations, and
performance, on the (Scala)DaCapo and SPECjbb2005 analogs.

Usage::

    python -m repro.benchsuite.table1 [--suite dacapo|scaladacapo|specjbb]
                                      [--locks] [--quick]

The table mirrors the paper's layout: per benchmark, KB / iteration
(the paper reports MB — our simulated iterations are smaller), thousands
of allocations / iteration (the paper reports millions), and iterations
per minute on the simulated clock, each without and with Partial Escape
Analysis plus the relative change.  Suite averages include the DaCapo
benchmarks without significant changes, as in the paper's footnote.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import sys
import time
from typing import List, Optional, Sequence

from ..jit import CompilationCache, CompilerConfig
from .harness import Comparison, run_suite, run_workload
from .profiling import print_profile, profiled
from .reporting import num, pct, render_table
from .workloads import (DACAPO, DACAPO_SHOWN, SCALADACAPO, SPECJBB_ALL,
                        SUITES)


def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def table_rows(comparisons: List[Comparison],
               shown: Optional[List[str]] = None) -> List[List[str]]:
    rows = []
    for comparison in comparisons:
        if shown is not None and comparison.workload.name not in shown:
            continue
        without, with_pea = comparison.without, comparison.with_pea
        rows.append([
            comparison.workload.name,
            num(without.kb_per_iteration),
            num(with_pea.kb_per_iteration),
            pct(comparison.kb_delta_pct),
            num(without.allocations_per_iteration / 1000.0, 2),
            num(with_pea.allocations_per_iteration / 1000.0, 2),
            pct(comparison.allocs_delta_pct),
            num(without.iterations_per_minute),
            num(with_pea.iterations_per_minute),
            pct(comparison.speedup_pct),
        ])
    return rows


def average_row(comparisons: List[Comparison], label: str) -> List[str]:
    return [
        label, "", "",
        pct(_average([c.kb_delta_pct for c in comparisons])),
        "", "",
        pct(_average([c.allocs_delta_pct for c in comparisons])),
        "", "",
        pct(_average([c.speedup_pct for c in comparisons])),
    ]


HEADERS = ["benchmark", "KB/it", "KB/it+", "dKB",
           "kAll/it", "kAll/it+", "dAllocs",
           "it/min", "it/min+", "speedup"]


def generate(suites: Sequence[str], quick: bool = False,
             locks: bool = False, out=sys.stdout, jobs: int = 1,
             backend: str = "plan", json_path: Optional[str] = None,
             profile: bool = False,
             cache: Optional[CompilationCache] = None,
             osr: bool = True,
             fleet: Optional[dict] = None) -> dict:
    """Run the selected suites and print Table 1; returns the raw
    comparisons keyed by suite for programmatic use."""
    if profile:
        jobs = 1  # cProfile + histogram need everything in-process
    baseline = CompilerConfig.no_ea(
        execution_backend=backend, collect_node_histogram=profile,
        osr=osr)
    optimized = CompilerConfig.partial_escape(
        execution_backend=backend, collect_node_histogram=profile,
        osr=osr)
    histogram = {} if profile else None
    profiler = cProfile.Profile() if profile else None
    results = {}
    wall_clock = {}
    for suite_name in suites:
        workloads = SUITES[suite_name]
        if quick:
            workloads = [w for w in workloads]
            for w in workloads:
                w.warmup_iterations = min(w.warmup_iterations, 25)
        started = time.perf_counter()
        with profiled(profiler):
            comparisons = run_suite(workloads, baseline, optimized,
                                    jobs=jobs, histogram=histogram,
                                    cache=cache)
        wall_clock[suite_name] = time.perf_counter() - started
        results[suite_name] = comparisons
        shown = ([w.name for w in DACAPO_SHOWN]
                 if suite_name == "dacapo" else None)
        rows = table_rows(comparisons, shown)
        rows.append(average_row(comparisons, "average"))
        print(f"\n== {suite_name} "
              f"(without PEA vs with PEA) ==", file=out)
        print(render_table(HEADERS, rows), file=out)
        if locks:
            print(f"\n-- {suite_name}: monitor operations/iteration --",
                  file=out)
            lock_rows = [[
                c.workload.name,
                num(c.without.monitor_ops_per_iteration),
                num(c.with_pea.monitor_ops_per_iteration),
                pct(c.monitor_delta_pct)]
                for c in comparisons
                if c.without.monitor_ops_per_iteration > 0]
            print(render_table(["benchmark", "without", "with", "change"],
                               lock_rows), file=out)
    if profile:
        print_profile(profiler, histogram, out=out)
        _print_compile_seconds(results, out)
    if cache is not None:
        stats = cache.stats
        elided = sum(m.warmup_iterations_elided
                     for cs in results.values() for c in cs
                     for m in (c.without, c.with_pea))
        print(f"\ncache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.disk_hits} from disk, {stats.evictions} evicted, "
              f"{elided} warm-up iterations elided", file=out)
    if json_path:
        analysis_ab = _analysis_ab(results, backend=backend,
                                   cache=cache, osr=osr)
        codegen_ab = _codegen_ab(results, osr=osr)
        gc_ab = _gc_ab(results, backend=backend, cache=cache, osr=osr)
        _write_json(json_path, results, wall_clock, jobs, backend, quick,
                    cache, osr, analysis_ab, codegen_ab, fleet, gc_ab)
    return results


def _analysis_ab(results: dict, backend: str,
                 cache: Optional[CompilationCache], osr: bool) -> dict:
    """Per-workload A/B of the interprocedural escape-summary analysis:
    re-run every workload under ``escape_tier="pea+summaries"`` and
    record the deltas against the plain-PEA measurement.  Results, locks and
    deopts must be bit-identical — the analysis may only remove
    allocations (see :mod:`repro.analysis.summaries`)."""
    config = CompilerConfig.partial_escape(
        execution_backend=backend, osr=osr,
        escape_tier="pea+summaries")
    section = {}
    for comparisons in results.values():
        for c in comparisons:
            pea = c.with_pea
            summ = run_workload(c.workload, config, cache=cache)
            section[c.workload.name] = {
                "allocations_per_iteration_pea":
                    pea.allocations_per_iteration,
                "allocations_per_iteration_summaries":
                    summ.allocations_per_iteration,
                "allocations_delta_per_iteration": round(
                    pea.allocations_per_iteration
                    - summ.allocations_per_iteration, 6),
                "materializations_pea": pea.materializations,
                "materializations_summaries": summ.materializations,
                "checksum_identical": summ.checksum == pea.checksum,
                "monitor_ops_identical":
                    summ.monitor_ops_per_iteration
                    == pea.monitor_ops_per_iteration,
                "deopts_identical": summ.deopts == pea.deopts,
            }
    return section


#: The three escape tiers the GC A/B compares.  The PEA arm stacks the
#: connection graph on top (``+cgstack``) so allocations PEA leaves
#: behind but the cheaper analysis can prove non-escaping still leave
#: the heap — that is what keeps the arms totally ordered.
_GC_AB_TIERS = (("none", "none"),
                ("conngraph", "conngraph"),
                ("pea", "pea+summaries+cgstack"))


def _gc_ab(results: dict, backend: str,
           cache: Optional[CompilationCache], osr: bool) -> dict:
    """Three-way escape-tier A/B through the simulated generational
    collector: every workload runs under no escape analysis, the
    connection-graph fast tier, and full PEA, and the section records
    how allocation behavior translates into collector behavior (minor
    collections, pause cycles, promotion).  Checksums must be identical
    — tiers change *where* objects live, never what the program
    computes — and per-iteration allocations must be totally ordered
    ``pea <= conngraph <= none`` (PEA subsumes the connection graph's
    decisions; see :mod:`repro.analysis.conngraph`)."""
    section = {}
    for comparisons in results.values():
        for c in comparisons:
            arms = {}
            for arm, tier in _GC_AB_TIERS:
                config = CompilerConfig(
                    escape_tier=tier, execution_backend=backend, osr=osr)
                m = run_workload(c.workload, config, cache=cache)
                arms[arm] = {
                    "tier": tier,
                    "checksum": m.checksum,
                    "allocations_per_iteration":
                        m.allocations_per_iteration,
                    "kb_per_iteration": m.kb_per_iteration,
                    "gc_minor_collections": m.gc_minor_collections,
                    "gc_pause_cycles": m.gc_pause_cycles,
                    "gc_promoted_kb": m.gc_promoted_kb,
                    "cycles_per_iteration": m.cycles_per_iteration,
                }
            none_, cg, pea = arms["none"], arms["conngraph"], arms["pea"]
            section[c.workload.name] = {
                **arms,
                "checksums_identical":
                    none_["checksum"] == cg["checksum"] == pea["checksum"],
                "allocations_ordered":
                    pea["allocations_per_iteration"]
                    <= cg["allocations_per_iteration"]
                    <= none_["allocations_per_iteration"],
                "pause_cycles_saved_conngraph": round(
                    none_["gc_pause_cycles"] - cg["gc_pause_cycles"], 6),
                "pause_cycles_saved_pea": round(
                    none_["gc_pause_cycles"] - pea["gc_pause_cycles"], 6),
            }
    return section


def _codegen_ab(results: dict, osr: bool) -> dict:
    """Wall-clock A/B of the codegen backend against the threaded-code
    plan backend over every workload the run covered (uncached, so
    neither side hides behind warm-up elision).  The simulated metrics
    must be bit-identical — the backends differ only in how fast real
    time passes — so the section records per-workload wall-clock
    speedups plus the identity verdict."""
    workloads = [c.workload for comparisons in results.values()
                 for c in comparisons]
    per_workload = {}
    totals = {"plan": 0.0, "codegen": 0.0}
    identical = True
    for workload in workloads:
        seconds = {}
        measured = {}
        for backend in ("plan", "codegen"):
            config = CompilerConfig.partial_escape(
                execution_backend=backend, osr=osr)
            started = time.perf_counter()
            measured[backend] = run_workload(workload, config)
            seconds[backend] = time.perf_counter() - started
            totals[backend] += seconds[backend]
        # Bit-identity scope: everything deterministic.  Simulated
        # cycles are excluded — codegen pre-folds each block's cost
        # into one constant, so the float summation *order* differs
        # from the plan backend's per-node accumulation.
        plan_m, codegen_m = measured["plan"], measured["codegen"]
        same = all(
            getattr(plan_m, name) == getattr(codegen_m, name)
            for name in ("checksum", "kb_per_iteration",
                         "allocations_per_iteration",
                         "monitor_ops_per_iteration", "deopts"))
        identical = identical and same
        per_workload[workload.name] = {
            "plan_seconds": round(seconds["plan"], 3),
            "codegen_seconds": round(seconds["codegen"], 3),
            "speedup": round(seconds["plan"]
                             / max(seconds["codegen"], 1e-9), 3),
            "metrics_identical": same,
        }
    return {
        "plan_seconds": round(totals["plan"], 3),
        "codegen_seconds": round(totals["codegen"], 3),
        "speedup": round(totals["plan"]
                         / max(totals["codegen"], 1e-9), 3),
        "metrics_identical": identical,
        "workloads": per_workload,
    }


def _latency_histogram(samples) -> dict:
    """Power-of-two bucketed latency histogram (bucket upper bound ->
    count), compact enough for the JSON payload while still showing the
    bimodal fast/cliff shape."""
    buckets: dict = {}
    for sample in samples:
        bound = 1 << max(1, int(sample)).bit_length()
        buckets[bound] = buckets.get(bound, 0) + 1
    return {str(bound): count for bound, count in sorted(buckets.items())}


def _deoptless_ab() -> dict:
    """Phase-shift tail-latency A/B: drive each phase-shifting workload
    through its flip with deoptless off and on (see
    :mod:`.workloads.phaseshift`) and record post-flip p50/p95/p99
    simulated-cycle latency, the latency histogram, and interpreter
    steps spent bridging deopts after the flip.  Checksums must be
    identical — deoptless only changes *where* the post-deopt half of a
    call executes, never what it computes.  Everything here is
    simulated and deterministic; it lives under ``timing`` because tail
    latency is a performance claim, not a Table 1 metric."""
    from ..jit import VM
    from ..lang import compile_source as compile_mj
    from .harness import percentile
    from .workloads.phaseshift import AB_DRIVERS
    section = {}
    for name, (source, driver) in sorted(AB_DRIVERS.items()):
        sides = {}
        for enabled in (False, True):
            program = compile_mj(source)
            config = CompilerConfig.partial_escape(deoptless=enabled)
            vm = VM(program, config)
            outcome = driver(vm, program)
            latencies = outcome["post_flip_latencies"]
            side = {
                "checksum": outcome["checksum"],
                "post_flip_p50_cycles": percentile(latencies, 50.0),
                "post_flip_p95_cycles": percentile(latencies, 95.0),
                "post_flip_p99_cycles": percentile(latencies, 99.0),
                "interpreter_steps_after_flip":
                    outcome["interpreter_steps_after_flip"],
                "latency_histogram": _latency_histogram(latencies),
            }
            if enabled:
                side.update(vm.deoptless.snapshot())
            sides[enabled] = side
        off, on = sides[False], sides[True]
        section[name] = {
            "off": off,
            "on": on,
            "checksum_identical": off["checksum"] == on["checksum"],
            "p99_speedup": round(
                off["post_flip_p99_cycles"]
                / max(on["post_flip_p99_cycles"], 1e-9), 3),
            "fewer_interpreter_steps_after_flip":
                on["interpreter_steps_after_flip"]
                < off["interpreter_steps_after_flip"],
        }
    return section


def _osr_warmup_ab(workload_name: str = "h2") -> dict:
    """Time one loop-heavy workload's full (uncached) run with and
    without on-stack replacement.  The simulated metrics are identical —
    OSR only moves warm-up iterations from the interpreter into compiled
    code — so the interesting number is real wall-clock."""
    from .workloads import by_name
    workload = by_name(workload_name)
    seconds = {}
    for enabled in (True, False):
        config = CompilerConfig.partial_escape(osr=enabled)
        started = time.perf_counter()
        run_workload(workload, config)
        seconds[enabled] = time.perf_counter() - started
    return {
        "workload": workload_name,
        "osr_seconds": round(seconds[True], 3),
        "no_osr_seconds": round(seconds[False], 3),
    }


def _print_compile_seconds(results: dict, out) -> None:
    """Per-phase compile-time breakdown (satellite of the compilation
    cache work: Compiler aggregates instead of dropping timings)."""
    phases: dict = {}
    total = 0.0
    for comparisons in results.values():
        for c in comparisons:
            for m in (c.without, c.with_pea):
                total += m.compile_seconds
                for phase, seconds in m.compile_phase_seconds.items():
                    phases[phase] = phases.get(phase, 0.0) + seconds
    print(f"\n-- compile time: {total:.3f}s total --", file=out)
    rows = [[phase, f"{seconds:.3f}"]
            for phase, seconds in
            sorted(phases.items(), key=lambda kv: -kv[1])]
    print(render_table(["phase", "seconds"], rows), file=out)


def _write_json(path: str, results: dict, wall_clock: dict, jobs: int,
                backend: str, quick: bool,
                cache: Optional[CompilationCache] = None,
                osr: bool = True,
                analysis_ab: Optional[dict] = None,
                codegen_ab: Optional[dict] = None,
                fleet: Optional[dict] = None,
                gc_ab: Optional[dict] = None) -> None:
    """Benchmark metrics for CI tracking (BENCH_table1.json).

    ``suites`` holds only deterministic, simulated metrics — identical
    across machines, cache modes and cold/warm runs, so CI can diff it
    byte-for-byte.  Wall-clock and compile-time measurements live in the
    separate ``timing`` section."""
    payload = {
        "backend": backend,
        "jobs": jobs,
        "osr": osr,
        "quick": quick,
        "suites": {},
        "timing": {"suites": {}},
    }
    if analysis_ab is not None:
        payload["analysis_ab"] = analysis_ab
    for suite_name, comparisons in results.items():
        payload["suites"][suite_name] = {
            "workloads": {
                c.workload.name: {
                    "checksum": c.without.checksum,
                    "cycles_per_iteration_no_ea":
                        c.without.cycles_per_iteration,
                    "cycles_per_iteration_pea":
                        c.with_pea.cycles_per_iteration,
                    "kb_per_iteration_no_ea": c.without.kb_per_iteration,
                    "kb_per_iteration_pea": c.with_pea.kb_per_iteration,
                    "allocations_per_iteration_no_ea":
                        c.without.allocations_per_iteration,
                    "allocations_per_iteration_pea":
                        c.with_pea.allocations_per_iteration,
                    "monitor_ops_per_iteration_no_ea":
                        c.without.monitor_ops_per_iteration,
                    "monitor_ops_per_iteration_pea":
                        c.with_pea.monitor_ops_per_iteration,
                    "compiled_nodes_no_ea": c.without.compiled_nodes,
                    "compiled_nodes_pea": c.with_pea.compiled_nodes,
                    "deopts_no_ea": c.without.deopts,
                    "deopts_pea": c.with_pea.deopts,
                    "latency_p95_cycles_no_ea":
                        c.without.latency_p95_cycles,
                    "latency_p95_cycles_pea":
                        c.with_pea.latency_p95_cycles,
                    "latency_p99_cycles_no_ea":
                        c.without.latency_p99_cycles,
                    "latency_p99_cycles_pea":
                        c.with_pea.latency_p99_cycles,
                } for c in comparisons
            },
        }
        phase_seconds: dict = {}
        compile_seconds = 0.0
        warmup_elided = 0
        cache_hits = 0
        osr_compilations = 0
        osr_entries = 0
        for c in comparisons:
            for m in (c.without, c.with_pea):
                compile_seconds += m.compile_seconds
                warmup_elided += m.warmup_iterations_elided
                cache_hits += m.cache_hits
                osr_compilations += m.osr_compilations
                osr_entries += m.osr_entries
                for phase, seconds in m.compile_phase_seconds.items():
                    phase_seconds[phase] = \
                        phase_seconds.get(phase, 0.0) + seconds
        payload["timing"]["suites"][suite_name] = {
            "harness_wall_clock_seconds": round(
                wall_clock[suite_name], 3),
            "compile_seconds": {
                "total": round(compile_seconds, 3),
                "phases": {phase: round(seconds, 3)
                           for phase, seconds in phase_seconds.items()},
            },
            "warmup_iterations_elided": warmup_elided,
            "cache_hits": cache_hits,
            "osr_compilations": osr_compilations,
            "osr_entries": osr_entries,
        }
    if codegen_ab is not None:
        payload["timing"]["codegen_ab"] = codegen_ab
    if gc_ab is not None:
        # Escape-tier x generational-collector A/B (see _gc_ab).  The
        # metrics inside are simulated and deterministic; the section
        # lives under ``timing`` because its headline claim — pause
        # cycles saved per tier — is a performance claim.
        payload["timing"]["gc_ab"] = gc_ab
    if fleet is not None:
        # Compile-service fleet benchmark (see benchsuite.fleet):
        # wall-clock/latency numbers are machine-dependent, but
        # dedup_or_hit_rate, checksums_consistent and
        # identity.all_identical are acceptance-gated invariants.
        payload["timing"]["fleet"] = fleet
    if osr:
        # Demonstrate the tentpole's point on real wall-clock: one
        # loop-heavy workload warmed with and without OSR.
        payload["timing"]["osr_warmup_ab"] = _osr_warmup_ab()
    # Deoptless phase-shift A/B: post-flip tail latency and interpreter
    # bridging, deoptless off vs on (simulated, deterministic).
    payload["timing"]["deoptless_ab"] = _deoptless_ab()
    if cache is not None:
        stats = cache.stats.snapshot()
        payload["timing"]["cache"] = {
            name: round(value, 3) if isinstance(value, float) else value
            for name, value in stats.items()}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES) + ["all"],
                        default="all")
    parser.add_argument("--locks", action="store_true",
                        help="also print monitor-operation changes")
    parser.add_argument("--quick", action="store_true",
                        help="fewer warmup iterations")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run workloads in N parallel processes")
    parser.add_argument("--backend",
                        choices=["codegen", "plan", "legacy"],
                        default="plan",
                        help="compiled-code execution backend")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write per-workload metrics as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile top-20 + per-node-kind execution "
                             "histogram (forces --jobs 1)")
    parser.add_argument("--cache", dest="cache", action="store_true",
                        default=True,
                        help="share compiled graphs across VMs "
                             "(default)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="compile every method from scratch")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persist the compilation cache here so "
                             "later runs start warm (implies --cache)")
    parser.add_argument("--no-osr", dest="osr", action="store_false",
                        default=True,
                        help="disable on-stack replacement (hot loops "
                             "wait for the invocation threshold)")
    parser.add_argument("--fleet", action="store_true",
                        help="also run the compile-service fleet "
                             "benchmark and record it under "
                             "timing.fleet in the --json payload")
    parser.add_argument("--fleet-workers", type=int, default=16,
                        metavar="N",
                        help="concurrent VM client processes for "
                             "--fleet (default 16)")
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    cache = None
    if args.cache or args.cache_dir:
        cache = CompilationCache(args.cache_dir)
    fleet_payload = None
    if args.fleet:
        from .fleet import run_fleet
        fleet_payload = run_fleet(workers=args.fleet_workers,
                                  quick=args.quick)
    generate(suites, quick=args.quick, locks=args.locks, jobs=args.jobs,
             backend=args.backend, json_path=args.json,
             profile=args.profile, cache=cache, osr=args.osr,
             fleet=fleet_payload)


if __name__ == "__main__":
    main()
