"""Regenerates the paper's Table 1: size and number of allocations, and
performance, on the (Scala)DaCapo and SPECjbb2005 analogs.

Usage::

    python -m repro.benchsuite.table1 [--suite dacapo|scaladacapo|specjbb]
                                      [--locks] [--quick]

The table mirrors the paper's layout: per benchmark, KB / iteration
(the paper reports MB — our simulated iterations are smaller), thousands
of allocations / iteration (the paper reports millions), and iterations
per minute on the simulated clock, each without and with Partial Escape
Analysis plus the relative change.  Suite averages include the DaCapo
benchmarks without significant changes, as in the paper's footnote.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..jit import CompilerConfig
from .harness import Comparison, run_suite
from .reporting import num, pct, render_table
from .workloads import (DACAPO, DACAPO_SHOWN, SCALADACAPO, SPECJBB_ALL,
                        SUITES)


def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def table_rows(comparisons: List[Comparison],
               shown: Optional[List[str]] = None) -> List[List[str]]:
    rows = []
    for comparison in comparisons:
        if shown is not None and comparison.workload.name not in shown:
            continue
        without, with_pea = comparison.without, comparison.with_pea
        rows.append([
            comparison.workload.name,
            num(without.kb_per_iteration),
            num(with_pea.kb_per_iteration),
            pct(comparison.kb_delta_pct),
            num(without.allocations_per_iteration / 1000.0, 2),
            num(with_pea.allocations_per_iteration / 1000.0, 2),
            pct(comparison.allocs_delta_pct),
            num(without.iterations_per_minute),
            num(with_pea.iterations_per_minute),
            pct(comparison.speedup_pct),
        ])
    return rows


def average_row(comparisons: List[Comparison], label: str) -> List[str]:
    return [
        label, "", "",
        pct(_average([c.kb_delta_pct for c in comparisons])),
        "", "",
        pct(_average([c.allocs_delta_pct for c in comparisons])),
        "", "",
        pct(_average([c.speedup_pct for c in comparisons])),
    ]


HEADERS = ["benchmark", "KB/it", "KB/it+", "dKB",
           "kAll/it", "kAll/it+", "dAllocs",
           "it/min", "it/min+", "speedup"]


def generate(suites: Sequence[str], quick: bool = False,
             locks: bool = False, out=sys.stdout) -> dict:
    """Run the selected suites and print Table 1; returns the raw
    comparisons keyed by suite for programmatic use."""
    results = {}
    for suite_name in suites:
        workloads = SUITES[suite_name]
        if quick:
            workloads = [w for w in workloads]
            for w in workloads:
                w.warmup_iterations = min(w.warmup_iterations, 25)
        comparisons = run_suite(workloads)
        results[suite_name] = comparisons
        shown = ([w.name for w in DACAPO_SHOWN]
                 if suite_name == "dacapo" else None)
        rows = table_rows(comparisons, shown)
        rows.append(average_row(comparisons, "average"))
        print(f"\n== {suite_name} "
              f"(without PEA vs with PEA) ==", file=out)
        print(render_table(HEADERS, rows), file=out)
        if locks:
            print(f"\n-- {suite_name}: monitor operations/iteration --",
                  file=out)
            lock_rows = [[
                c.workload.name,
                num(c.without.monitor_ops_per_iteration),
                num(c.with_pea.monitor_ops_per_iteration),
                pct(c.monitor_delta_pct)]
                for c in comparisons
                if c.without.monitor_ops_per_iteration > 0]
            print(render_table(["benchmark", "without", "with", "change"],
                               lock_rows), file=out)
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES) + ["all"],
                        default="all")
    parser.add_argument("--locks", action="store_true",
                        help="also print monitor-operation changes")
    parser.add_argument("--quick", action="store_true",
                        help="fewer warmup iterations")
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    generate(suites, quick=args.quick, locks=args.locks)


if __name__ == "__main__":
    main()
