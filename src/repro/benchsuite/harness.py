"""The benchmark harness.

Mirrors the paper's process (Section 6.1): each benchmark is warmed up
until its hot methods are compiled, then a number of measured iterations
are averaged.  "Run time" is simulated cycles from the cost model;
"iterations per minute" is derived from a fixed simulated clock so the
numbers read like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..jit import VM, CompilerConfig
from ..lang import compile_source
from .workloads import Workload

#: The simulated machine's clock: cycles per minute (a 2 MHz toy CPU —
#: absolute values are meaningless; only ratios matter).
SIMULATED_CYCLES_PER_MINUTE = 120_000_000.0


@dataclass
class Measurement:
    """Averaged per-iteration metrics for one workload under one
    configuration."""

    workload: str
    config: str
    checksum: int
    kb_per_iteration: float
    allocations_per_iteration: float
    monitor_ops_per_iteration: float
    cycles_per_iteration: float
    compiled_nodes: int
    deopts: int

    @property
    def iterations_per_minute(self) -> float:
        if self.cycles_per_iteration <= 0:
            return float("inf")
        return SIMULATED_CYCLES_PER_MINUTE / self.cycles_per_iteration


def run_workload(workload: Workload, config: CompilerConfig,
                 histogram: Optional[Dict[str, int]] = None
                 ) -> Measurement:
    """Warm up, then measure ``workload.measure_iterations`` iterations.

    When *histogram* is given (and the config sets
    ``collect_node_histogram``), the VM's per-node-kind execution counts
    are accumulated into it."""
    program = compile_source(workload.source, natives=workload.natives
                             or None)
    vm = VM(program, config)
    checksum = 0
    for _ in range(workload.warmup_iterations):
        checksum = vm.call(workload.entry, workload.iteration_size)
        program.reset_statics()

    heap_before = vm.heap_snapshot()
    cycles_before = vm.cycles_snapshot()
    for _ in range(workload.measure_iterations):
        checksum = vm.call(workload.entry, workload.iteration_size)
        program.reset_statics()
    heap_delta = vm.heap_snapshot().delta(heap_before)
    cycles = vm.cycles_snapshot() - cycles_before

    if histogram is not None:
        for kind, count in \
                vm.exec_stats.node_kind_executions.items():
            histogram[kind] = histogram.get(kind, 0) + count

    iterations = workload.measure_iterations
    compiled_nodes = sum(r.node_count for r in vm.compiled.values())
    return Measurement(
        workload=workload.name,
        config=config.label(),
        checksum=checksum,
        kb_per_iteration=heap_delta.allocated_bytes / iterations / 1024.0,
        allocations_per_iteration=heap_delta.allocations / iterations,
        monitor_ops_per_iteration=(heap_delta.monitor_operations
                                   / iterations),
        cycles_per_iteration=cycles / iterations,
        compiled_nodes=compiled_nodes,
        deopts=vm.exec_stats.deopts,
    )


@dataclass
class Comparison:
    """without-PEA vs with-PEA for one workload (one Table 1 line)."""

    workload: Workload
    without: Measurement
    with_pea: Measurement

    def _delta_pct(self, before: float, after: float) -> float:
        if before == 0:
            return 0.0
        return (after - before) / before * 100.0

    @property
    def kb_delta_pct(self) -> float:
        return self._delta_pct(self.without.kb_per_iteration,
                               self.with_pea.kb_per_iteration)

    @property
    def allocs_delta_pct(self) -> float:
        return self._delta_pct(self.without.allocations_per_iteration,
                               self.with_pea.allocations_per_iteration)

    @property
    def monitor_delta_pct(self) -> float:
        return self._delta_pct(self.without.monitor_ops_per_iteration,
                               self.with_pea.monitor_ops_per_iteration)

    @property
    def speedup_pct(self) -> float:
        return self._delta_pct(self.without.iterations_per_minute,
                               self.with_pea.iterations_per_minute)

    def verify(self):
        if self.without.checksum != self.with_pea.checksum:
            raise AssertionError(
                f"{self.workload.name}: checksum mismatch "
                f"{self.without.checksum} vs {self.with_pea.checksum}")


def compare_workload(workload: Workload,
                     baseline: Optional[CompilerConfig] = None,
                     optimized: Optional[CompilerConfig] = None,
                     histogram: Optional[Dict[str, int]] = None
                     ) -> Comparison:
    """Run one workload under the paper's two configurations."""
    comparison = Comparison(
        workload,
        run_workload(workload, baseline or CompilerConfig.no_ea(),
                     histogram),
        run_workload(workload, optimized
                     or CompilerConfig.partial_escape(), histogram),
    )
    comparison.verify()
    return comparison


def _compare_worker(item) -> Comparison:
    """Module-level worker so ProcessPoolExecutor can pickle it."""
    workload, baseline, optimized = item
    return compare_workload(workload, baseline, optimized)


def run_suite(workloads: Sequence[Workload],
              baseline: Optional[CompilerConfig] = None,
              optimized: Optional[CompilerConfig] = None,
              jobs: int = 1,
              histogram: Optional[Dict[str, int]] = None
              ) -> List[Comparison]:
    """Compare every workload; with ``jobs > 1``, fan the (independent)
    per-workload comparisons out over worker processes.  Results are
    reassembled in submission order, so the output is bit-identical to
    a serial run.  ``histogram`` is only honored serially (profiling
    forces ``jobs=1``)."""
    if jobs <= 1:
        return [compare_workload(w, baseline, optimized, histogram)
                for w in workloads]
    from concurrent.futures import ProcessPoolExecutor
    items = [(w, baseline, optimized) for w in workloads]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_compare_worker, items))
