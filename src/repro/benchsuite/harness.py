"""The benchmark harness.

Mirrors the paper's process (Section 6.1): each benchmark is warmed up
until its hot methods are compiled, then a number of measured iterations
are averaged.  "Run time" is simulated cycles from the cost model;
"iterations per minute" is derived from a fixed simulated clock so the
numbers read like the paper's.

With a :class:`~repro.jit.cache.CompilationCache` the harness gets two
further amortizations, neither of which can change a reported metric:

- compiled graphs are shared across VMs and (with a cache directory)
  across harness runs, keyed by content + configuration + the profile
  facts the pipeline consumed;
- **warm-up elision**: a cold run records, per (workload, program,
  full configuration), a snapshot of the profiling state one iteration
  before the end of warm-up, plus the VM state the final warm-up
  iteration reached (compiled-method set, deoptimization and
  invalidation counts, checksum) — stored only if the VM then stayed
  quiescent through the whole *measured* window.  A warm run installs
  the snapshot into a fresh VM, replays just the final warm-up
  iteration (every hot method's invocation count is already past the
  compile threshold, so compilation — served from the cache — happens
  immediately), and verifies the recorded state was reached.  Workload
  iterations are deterministic in (profile, statics, compiled code):
  statics reset every iteration and the replayed iteration starts from
  the recorded profile, so the VM enters the measured window in
  *exactly* the cold run's state and the measurement is an exact
  replay.  If verification fails (stale record, changed thresholds),
  the VM is discarded and the full warm-up runs.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import api
from ..api import VM, CompilerConfig, compile_source
from ..jit.cache import CompilationCache, full_config_fingerprint
from .workloads import Workload

#: The simulated machine's clock: cycles per minute (a 2 MHz toy CPU —
#: absolute values are meaningless; only ratios matter).
SIMULATED_CYCLES_PER_MINUTE = 120_000_000.0


@dataclass
class Measurement:
    """Averaged per-iteration metrics for one workload under one
    configuration."""

    workload: str
    config: str
    checksum: int
    kb_per_iteration: float
    allocations_per_iteration: float
    monitor_ops_per_iteration: float
    cycles_per_iteration: float
    compiled_nodes: int
    deopts: int
    #: Wall-clock / cache observability, excluded from equality: two
    #: runs with identical *metrics* compare equal regardless of how
    #: long compilation took or how much the cache absorbed.
    #: compile_seconds covers everything inside Compiler.compile,
    #: including cache lookups/stores.
    compile_seconds: float = field(default=0.0, compare=False)
    #: Per-phase breakdown of non-cached compilations
    #: (phase name -> seconds), aggregated over every compile.
    compile_phase_seconds: Dict[str, float] = field(
        default_factory=dict, compare=False)
    compile_count: int = field(default=0, compare=False)
    cache_hits: int = field(default=0, compare=False)
    warmup_iterations_run: int = field(default=0, compare=False)
    warmup_iterations_elided: int = field(default=0, compare=False)
    #: On-stack replacement observability.  Excluded from equality:
    #: OSR moves warm-up work between tiers (and warm-up elision skips
    #: it wholesale) without touching the measured-window metrics.
    osr_compilations: int = field(default=0, compare=False)
    osr_entries: int = field(default=0, compare=False)
    #: Partial Escape Analysis observability, summed over the compiled
    #: set (cached compilations carry their PEAResult, so warm runs
    #: report the same counts).  Excluded from equality alongside the
    #: other observability fields.
    virtualized_allocations: int = field(default=0, compare=False)
    materializations: int = field(default=0, compare=False)
    #: Deoptimizations inside the measured window only.  ``deopts``
    #: above is cumulative: with a compile *service*, background
    #: tier-up legitimately shifts *warm-up* deopt timing (speculative
    #: code installs a little later, so a doomed speculation may fire
    #: fewer times before invalidation), while the drain barrier before
    #: measurement makes the measured window itself deterministic.  The
    #: fleet identity check therefore compares this field, not the
    #: warm-up-polluted cumulative count.  compare=False keeps
    #: Measurement equality semantics unchanged.
    deopts_measured: int = field(default=0, compare=False)
    #: Tail latency over the measured window: per-iteration simulated
    #: cycles at the 95th/99th percentile (nearest-rank).  The mean
    #: (``cycles_per_iteration``) hides the deopt latency cliff — one
    #: interpreted bridge among fast iterations barely moves it but
    #: owns the tail — so phase-shifting workloads gate on these.
    #: Excluded from equality like the other observability fields.
    latency_p95_cycles: float = field(default=0.0, compare=False)
    latency_p99_cycles: float = field(default=0.0, compare=False)
    #: Simulated-collector behavior over the measured window
    #: (per-iteration averages; see :mod:`repro.runtime.gcsim`).  The
    #: pause cycles are *also* folded into ``cycles_per_iteration`` —
    #: these fields break them out so a configuration that trades
    #: allocation for collection work is visible.  compare=False: the
    #: collector is driven entirely by the allocation stream, so these
    #: are observability over facts the compared metrics already pin.
    gc_minor_collections: float = field(default=0.0, compare=False)
    gc_pause_cycles: float = field(default=0.0, compare=False)
    gc_promoted_kb: float = field(default=0.0, compare=False)

    @property
    def iterations_per_minute(self) -> float:
        if self.cycles_per_iteration <= 0:
            return float("inf")
        return SIMULATED_CYCLES_PER_MINUTE / self.cycles_per_iteration


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(0, min(len(ordered), rank) - 1)]


def _harness_key(workload: Workload, program, config: CompilerConfig
                 ) -> str:
    """Key for one workload's warm-up record: everything that shapes
    the replayed iteration sequence."""
    description = (workload.name, workload.entry, workload.iteration_size,
                   workload.warmup_iterations, workload.measure_iterations,
                   program.content_fingerprint(),
                   full_config_fingerprint(config))
    return hashlib.sha256(repr(description).encode()).hexdigest()


def _vm_signature(vm: VM, checksum: int) -> Optional[list]:
    """The VM state a warm-up record certifies (pickle friendly).

    Compiled methods are identified by their cache-entry payload hash,
    not just by name: a VM can legitimately hold code its *current*
    profile would no longer produce (a speculation that deoptimized
    fewer times than the invalidation threshold stays installed), and a
    replay from the recorded profile would compile different graphs for
    those methods.  ``None`` (uncertifiable) when any compiled method
    has no cache entry."""
    compiled = []
    for method in sorted(vm.compiled, key=lambda m: m.qualified_name):
        entry = vm.compiled[method].cache_entry
        if entry is None:
            return None
        compiled.append([method.qualified_name,
                         hashlib.sha256(entry.blob).hexdigest()])
    osr = []
    for method, bci in sorted(vm.osr_compiled,
                              key=lambda k: (k[0].qualified_name, k[1])):
        entry = vm.osr_compiled[(method, bci)].cache_entry
        if entry is None:
            return None
        osr.append([method.qualified_name, bci,
                    hashlib.sha256(entry.blob).hexdigest()])
    return [compiled,
            sorted(m.qualified_name for m in vm._uncompilable),
            osr,
            sorted([m.qualified_name, bci]
                   for m, bci in vm._osr_uncompilable),
            vm.exec_stats.deopts, vm.invalidations, checksum]


def _progress_cycles(vm: VM) -> float:
    """What :meth:`VM.cycles_snapshot` would return, computed
    *read-only*: per-iteration latency sampling must not force
    interpreter-cycle syncs mid-window, because splitting the float
    accumulation into differently-ordered additions can move the last
    bit of ``cycles_per_iteration`` — which is byte-diffed in CI."""
    pending = vm.interpreter.stats.steps - vm._interpreter_steps_counted
    pending_gc = vm.heap.gc.stats.pause_cycles - vm._gc_pause_cycles_counted
    return vm.exec_stats.cycles + pending_gc + \
        pending * vm.config.cost_model.interpreter_step


def _vm_tick(vm: VM) -> Tuple[int, ...]:
    """Cheap per-iteration progress probe for steady-state detection."""
    return (len(vm.compiled), len(vm._uncompilable),
            len(vm.osr_compiled), len(vm._osr_uncompilable),
            vm.exec_stats.deopts, vm.invalidations)


def _profile_snapshot(vm: VM) -> dict:
    """The VM's profiling state (qualified-name keyed, see
    :meth:`~repro.bytecode.interpreter.Profile.snapshot`) plus the
    deopt bookkeeping the harness replays alongside it."""
    snapshot = vm.profile.snapshot()
    snapshot["deopt_counts"] = {m.qualified_name: n
                                for m, n in vm.deopt_counts.items()}
    snapshot["deopts"] = vm.exec_stats.deopts
    snapshot["invalidations"] = vm.invalidations
    return snapshot


def _restore_profile(vm: VM, snapshot: dict) -> None:
    """Install a recorded profiling state into a fresh VM."""
    method = vm.program.method
    vm.profile.restore(vm.program, snapshot)
    vm.deopt_counts = {method(q): n for q, n in
                       snapshot["deopt_counts"].items()}
    vm.exec_stats.deopts = snapshot["deopts"]
    vm.invalidations = snapshot["invalidations"]


def run_workload(workload: Workload, config: CompilerConfig,
                 histogram: Optional[Dict[str, int]] = None,
                 program=None,
                 cache: Optional[CompilationCache] = None
                 ) -> Measurement:
    """Warm up, then measure ``workload.measure_iterations`` iterations.

    When *histogram* is given (and the config sets
    ``collect_node_histogram``), the VM's per-node-kind execution counts
    are accumulated into it.  *program* lets callers hoist the language
    frontend out of per-config runs; when omitted the workload source is
    compiled here.  *cache* enables compiled-graph reuse and warm-up
    elision (see module docstring)."""
    if program is None:
        program = compile_source(workload.source,
                                 natives=workload.natives or None)

    record_key = record = None
    if cache is not None:
        record_key = _harness_key(workload, program, config)
        record = cache.load_harness_record(record_key)

    total_warmup = workload.warmup_iterations
    vm = None
    checksum = 0
    warmup_run = 0
    elided = 0

    if record is not None and total_warmup >= 1:
        # Warm path: restore the recorded profile, replay only the final
        # warm-up iteration, and check the VM reached the recorded state.
        vm = api.compile(program, config=config, cache=cache).vm
        try:
            _restore_profile(vm, record["profile"])
        except Exception:
            vm = record = None  # stale record (e.g. renamed methods)
        if vm is not None:
            checksum = vm.call(workload.entry, workload.iteration_size)
            program.reset_statics()
            warmup_run = 1
            try:
                # Methods the cold run compiled while the entry was
                # still interpreted can be unreachable once their
                # callers compile them inline; materialize them (cache
                # hits) so the compiled set — and the compiled_nodes
                # metric — matches the cold run exactly.
                for qualified, __ in record["signature"][0]:
                    if program.method(qualified) not in vm.compiled:
                        vm.compile_now(qualified)
                # Same for OSR variants (and loops the cold run found
                # un-OSR-able): the replayed iteration may run them
                # compiled from the start, never hitting the backedge
                # that triggered OSR compilation in the cold run.
                for qualified, bci, __ in record["signature"][2]:
                    m = program.method(qualified)
                    if (m, bci) not in vm.osr_compiled:
                        vm._compile_osr(m, bci)
                for qualified, bci in record["signature"][3]:
                    m = program.method(qualified)
                    if (m, bci) not in vm._osr_uncompilable:
                        vm._compile_osr(m, bci)
            except Exception:
                vm = None
            if vm is not None and \
                    _vm_signature(vm, checksum) == record["signature"]:
                elided = total_warmup - 1
            else:
                vm = record = None  # diverged: fall back to full warm-up

    if vm is None:
        # Cold path: full warm-up, snapshotting the profile one
        # iteration before the end so a warm run can rebuild the
        # measurement-entry state by replaying that last iteration.
        vm = api.compile(program, config=config, cache=cache).vm
        warmup_run = 0
        last_tick = _vm_tick(vm)
        steady_iteration = 0
        snapshot = None
        for iteration in range(1, total_warmup + 1):
            if cache is not None and iteration == total_warmup:
                snapshot = _profile_snapshot(vm)
            checksum = vm.call(workload.entry, workload.iteration_size)
            program.reset_statics()
            warmup_run += 1
            tick = _vm_tick(vm)
            if tick != last_tick:
                last_tick = tick
                steady_iteration = iteration
        record = None
        if cache is not None and snapshot is not None and \
                steady_iteration < total_warmup:
            signature = _vm_signature(vm, checksum)
            if signature is not None:
                record = {"profile": snapshot, "signature": signature}

    # Background-tier-up barrier: install every in-flight compile
    # service reply before measuring, so the measured window always
    # runs the same (fully tiered-up) code whether compiles were
    # synchronous or asynchronous.  No-op without a service.
    vm.finish_pending_compiles()
    warmup_tick = _vm_tick(vm)
    deopts_before_measure = vm.exec_stats.deopts
    # Collector barrier (the simulated System.gc()): drain the nursery
    # so the measured window starts from an empty young generation.
    # Without this, warm-up elision would change *measured* GC timing —
    # a cold run enters measurement with whatever nursery fill N
    # warm-up iterations left behind, a warm run with one iteration's
    # worth — and the first measured collection would land on a
    # different allocation.  Stats stay cumulative/monotone, so the
    # VM's pause-cycle sync bookkeeping remains valid.
    vm.heap.gc.collect_remaining()
    # Fold pending interpreter cycles, then measure from a zeroed
    # counter: float summation from 0.0 is exact across replays, where
    # a snapshot delta would suffer accumulation-order rounding.
    vm.cycles_snapshot()
    vm.exec_stats.cycles = 0.0
    heap_before = vm.heap_snapshot()
    gc_before = vm.gc_snapshot()
    latencies = []
    cycles_before = _progress_cycles(vm)
    for _ in range(workload.measure_iterations):
        checksum = vm.call(workload.entry, workload.iteration_size)
        program.reset_statics()
        cycles_now = _progress_cycles(vm)
        latencies.append(cycles_now - cycles_before)
        cycles_before = cycles_now
    heap_delta = vm.heap_snapshot().delta(heap_before)
    gc_delta = vm.gc_snapshot().delta(gc_before)
    cycles = vm.cycles_snapshot()

    if cache is not None and elided == 0 and record is not None and \
            _vm_tick(vm) == warmup_tick:
        # Cold run went quiescent before the final warm-up iteration and
        # stayed quiescent through the measured window: certify the
        # snapshot for future runs.
        cache.store_harness_record(record_key, record)

    if histogram is not None:
        for kind, count in \
                vm.exec_stats.node_kind_executions.items():
            histogram[kind] = histogram.get(kind, 0) + count

    iterations = workload.measure_iterations
    compiled_nodes = sum(r.node_count for r in vm.compiled.values())
    ea_results = [r.ea_result for r in vm.compiled.values()
                  if r.ea_result is not None]
    return Measurement(
        workload=workload.name,
        config=config.label(),
        checksum=checksum,
        kb_per_iteration=heap_delta.allocated_bytes / iterations / 1024.0,
        allocations_per_iteration=heap_delta.allocations / iterations,
        monitor_ops_per_iteration=(heap_delta.monitor_operations
                                   / iterations),
        cycles_per_iteration=cycles / iterations,
        compiled_nodes=compiled_nodes,
        deopts=vm.exec_stats.deopts,
        compile_seconds=vm.compiler.compile_seconds_total,
        compile_phase_seconds=dict(vm.compiler.phase_seconds),
        compile_count=vm.compiler.compile_count,
        cache_hits=vm.compiler.cache_hit_count,
        warmup_iterations_run=warmup_run,
        warmup_iterations_elided=elided,
        osr_compilations=len(vm.osr_compiled),
        osr_entries=vm.osr_entries,
        virtualized_allocations=sum(r.virtualized_allocations
                                    for r in ea_results),
        materializations=sum(r.materializations for r in ea_results),
        deopts_measured=vm.exec_stats.deopts - deopts_before_measure,
        latency_p95_cycles=percentile(latencies, 95.0),
        latency_p99_cycles=percentile(latencies, 99.0),
        gc_minor_collections=gc_delta.minor_collections / iterations,
        gc_pause_cycles=gc_delta.pause_cycles / iterations,
        gc_promoted_kb=gc_delta.promoted_bytes / iterations / 1024.0,
    )


@dataclass
class Comparison:
    """without-PEA vs with-PEA for one workload (one Table 1 line)."""

    workload: Workload
    without: Measurement
    with_pea: Measurement

    def _delta_pct(self, before: float, after: float) -> float:
        if before == 0:
            return 0.0
        return (after - before) / before * 100.0

    @property
    def kb_delta_pct(self) -> float:
        return self._delta_pct(self.without.kb_per_iteration,
                               self.with_pea.kb_per_iteration)

    @property
    def allocs_delta_pct(self) -> float:
        return self._delta_pct(self.without.allocations_per_iteration,
                               self.with_pea.allocations_per_iteration)

    @property
    def monitor_delta_pct(self) -> float:
        return self._delta_pct(self.without.monitor_ops_per_iteration,
                               self.with_pea.monitor_ops_per_iteration)

    @property
    def speedup_pct(self) -> float:
        return self._delta_pct(self.without.iterations_per_minute,
                               self.with_pea.iterations_per_minute)

    def verify(self):
        if self.without.checksum != self.with_pea.checksum:
            raise AssertionError(
                f"{self.workload.name}: checksum mismatch "
                f"{self.without.checksum} vs {self.with_pea.checksum}")


def compare_workload(workload: Workload,
                     baseline: Optional[CompilerConfig] = None,
                     optimized: Optional[CompilerConfig] = None,
                     histogram: Optional[Dict[str, int]] = None,
                     cache: Optional[CompilationCache] = None
                     ) -> Comparison:
    """Run one workload under the paper's two configurations.

    The source -> bytecode build is hoisted out of the per-config runs:
    both VMs share one Program (the interpreter's statics are reset
    after every iteration, and profiles live in the VM, so the runs
    cannot observe each other)."""
    program = compile_source(workload.source,
                             natives=workload.natives or None)
    comparison = Comparison(
        workload,
        run_workload(workload, baseline or CompilerConfig.no_ea(),
                     histogram, program=program, cache=cache),
        run_workload(workload, optimized
                     or CompilerConfig.partial_escape(), histogram,
                     program=program, cache=cache),
    )
    comparison.verify()
    return comparison


def _compare_worker(item) -> Comparison:
    """Module-level worker so ProcessPoolExecutor can pickle it."""
    workload, baseline, optimized, cache_dir = item
    cache = CompilationCache(cache_dir) if cache_dir is not None else None
    return compare_workload(workload, baseline, optimized, cache=cache)


def run_suite(workloads: Sequence[Workload],
              baseline: Optional[CompilerConfig] = None,
              optimized: Optional[CompilerConfig] = None,
              jobs: int = 1,
              histogram: Optional[Dict[str, int]] = None,
              cache: Optional[CompilationCache] = None
              ) -> List[Comparison]:
    """Compare every workload; with ``jobs > 1``, fan the (independent)
    per-workload comparisons out over worker processes.  Results are
    reassembled in submission order, so the output is bit-identical to
    a serial run.  ``histogram`` is only honored serially (profiling
    forces ``jobs=1``).  With ``jobs > 1`` the in-process cache level
    cannot cross process boundaries, so workers share through the
    cache's directory (no sharing when it has none)."""
    if jobs <= 1:
        return [compare_workload(w, baseline, optimized, histogram,
                                 cache=cache)
                for w in workloads]
    from concurrent.futures import ProcessPoolExecutor
    cache_dir = cache.cache_dir if cache is not None else None
    items = [(w, baseline, optimized, cache_dir) for w in workloads]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_compare_worker, items))
