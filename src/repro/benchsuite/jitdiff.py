"""``repro jitdiff`` — per-method backend diff, CoreCLR-jitdiff style.

Runs the whole workload corpus twice — once under the threaded-code
``plan`` backend (the base) and once under the generated-Python
``codegen`` backend (the diff) — and reports:

- a per-workload table of wall-clock time, allocations and deopts,
  sorted by wall-clock regression (worst speedup first), plus a
  bit-identity verdict over the deterministic metrics;
- a per-method table of generated-code sizes: threaded-code size is
  ``len(plan.nodes)`` (handler slots), codegen size is
  ``CodegenPlan.code_size`` (bytes of emitted Python source).  Methods
  the structurizer could not express show as ``plan-fallback`` — every
  such row is a codegen coverage gap worth a look.

Any deterministic-metric mismatch between the backends is a correctness
bug, not a perf delta: the run prints the offending workloads and exits
non-zero so CI fails.  Simulated cycles are deliberately outside the
identity scope — codegen pre-folds each block's cost into one constant,
so float summation order differs from the plan backend's per-node
accumulation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from .. import api
from ..api import CompilerConfig, compile_source
from ..jit.cache import CompilationCache
from .reporting import num, render_table
from .workloads import SUITES, Workload

#: The deterministic Measurement scope both backends must agree on.
IDENTITY_FIELDS = ("checksum", "kb_per_iteration",
                   "allocations_per_iteration",
                   "monitor_ops_per_iteration", "deopts")


def _method_sizes(vm) -> Dict[str, dict]:
    """Per compiled method (and OSR variant): which lowering the VM
    executes and how big it is."""
    rows: Dict[str, dict] = {}

    def describe(result) -> dict:
        if result.codegen is not None:
            return {"backend": "codegen",
                    "size": result.codegen.code_size}
        if result.plan is not None:
            return {"backend": "plan", "size": len(result.plan.nodes)}
        return {"backend": "interpreter", "size": result.node_count}

    for method, result in vm.compiled.items():
        rows[method.qualified_name] = describe(result)
    for (method, bci), result in vm.osr_compiled.items():
        rows[f"{method.qualified_name}@osr{bci}"] = describe(result)
    return rows


def _run(workload: Workload, backend: str, osr: bool,
         cache: Optional[CompilationCache]) -> dict:
    """One timed, per-method-instrumented run of *workload* under
    *backend*.  Mirrors the harness's measured window (zeroed cycle
    counter, statics reset per iteration) but keeps the VM so the
    compiled set can be inspected afterwards."""
    program = compile_source(workload.source,
                             natives=workload.natives or None)
    config = CompilerConfig.partial_escape(execution_backend=backend,
                                           osr=osr)
    started = time.perf_counter()
    vm = api.compile(program, config=config, cache=cache).vm
    checksum = 0
    for _ in range(workload.warmup_iterations):
        checksum = vm.call(workload.entry, workload.iteration_size)
        program.reset_statics()
    vm.cycles_snapshot()
    vm.exec_stats.cycles = 0.0
    heap_before = vm.heap_snapshot()
    for _ in range(workload.measure_iterations):
        checksum = vm.call(workload.entry, workload.iteration_size)
        program.reset_statics()
    seconds = time.perf_counter() - started
    heap_delta = vm.heap_snapshot().delta(heap_before)
    cycles = vm.cycles_snapshot()
    iterations = workload.measure_iterations
    return {
        "seconds": seconds,
        "checksum": checksum,
        "kb_per_iteration": heap_delta.allocated_bytes / iterations
        / 1024.0,
        "allocations_per_iteration": heap_delta.allocations / iterations,
        "monitor_ops_per_iteration": heap_delta.monitor_operations
        / iterations,
        "cycles_per_iteration": cycles / iterations,
        "deopts": vm.exec_stats.deopts,
        "osr_entries": vm.osr_entries,
        "methods": _method_sizes(vm),
    }


def run_jitdiff(workloads: Sequence[Workload], osr: bool = True,
                cache: Optional[CompilationCache] = None,
                out=sys.stdout) -> dict:
    """Diff the corpus; returns the full report (also printed)."""
    per_workload = {}
    methods: List[dict] = []
    mismatches: List[str] = []
    totals = {"plan": 0.0, "codegen": 0.0}
    for workload in workloads:
        base = _run(workload, "plan", osr, cache)
        diff = _run(workload, "codegen", osr, cache)
        totals["plan"] += base["seconds"]
        totals["codegen"] += diff["seconds"]
        mismatched = [name for name in IDENTITY_FIELDS
                      if base[name] != diff[name]]
        if mismatched:
            mismatches.append(f"{workload.name}: {', '.join(mismatched)}")
        for label in sorted(set(base["methods"]) | set(diff["methods"])):
            plan_row = base["methods"].get(label)
            codegen_row = diff["methods"].get(label)
            methods.append({
                "workload": workload.name,
                "method": label,
                "plan_size_nodes":
                    plan_row["size"] if plan_row else None,
                "codegen_size_bytes":
                    codegen_row["size"]
                    if codegen_row and codegen_row["backend"] == "codegen"
                    else None,
                "codegen_backend":
                    codegen_row["backend"] if codegen_row else "absent",
            })
        per_workload[workload.name] = {
            "plan_seconds": round(base["seconds"], 3),
            "codegen_seconds": round(diff["seconds"], 3),
            "speedup": round(base["seconds"]
                             / max(diff["seconds"], 1e-9), 3),
            "allocations_per_iteration":
                diff["allocations_per_iteration"],
            "deopts": diff["deopts"],
            "osr_entries": diff["osr_entries"],
            "metrics_identical": not mismatched,
            "mismatched_fields": mismatched,
        }

    # Worst wall-clock regression first, CoreCLR-jitdiff style.
    ordered = sorted(per_workload.items(),
                     key=lambda kv: kv[1]["speedup"])
    rows = [[name, num(entry["plan_seconds"], 3),
             num(entry["codegen_seconds"], 3),
             f"x{entry['speedup']:.2f}",
             num(entry["allocations_per_iteration"], 1),
             str(entry["deopts"]),
             "yes" if entry["metrics_identical"] else "NO"]
            for name, entry in ordered]
    print("\n== jitdiff: plan (base) vs codegen (diff), "
          "sorted by regression ==", file=out)
    print(render_table(["benchmark", "plan s", "codegen s", "speedup",
                        "allocs/it", "deopts", "identical"], rows),
          file=out)

    fallbacks = [m for m in methods
                 if m["codegen_backend"] != "codegen"]
    biggest = sorted(
        (m for m in methods if m["codegen_size_bytes"] is not None),
        key=lambda m: -m["codegen_size_bytes"])[:15]
    print("\n-- largest generated methods --", file=out)
    print(render_table(
        ["benchmark", "method", "plan nodes", "codegen bytes"],
        [[m["workload"], m["method"], str(m["plan_size_nodes"]),
          str(m["codegen_size_bytes"])] for m in biggest]), file=out)
    if fallbacks:
        print(f"\n-- {len(fallbacks)} method(s) not on codegen --",
              file=out)
        print(render_table(
            ["benchmark", "method", "executes as"],
            [[m["workload"], m["method"], m["codegen_backend"]]
             for m in fallbacks]), file=out)
    else:
        print("\nevery compiled method runs on codegen "
              "(no structurizer fallbacks)", file=out)

    speedup = totals["plan"] / max(totals["codegen"], 1e-9)
    print(f"\ntotal: plan {totals['plan']:.3f}s, "
          f"codegen {totals['codegen']:.3f}s, speedup x{speedup:.2f}",
          file=out)
    if mismatches:
        print("\nMETRIC MISMATCHES (correctness bug):", file=out)
        for line in mismatches:
            print(f"  {line}", file=out)
    return {
        "workloads": dict(ordered),
        "methods": methods,
        "totals": {
            "plan_seconds": round(totals["plan"], 3),
            "codegen_seconds": round(totals["codegen"], 3),
            "speedup": round(speedup, 3),
            "codegen_fallbacks": len(fallbacks),
        },
        "metrics_identical": not mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES) + ["all"],
                        default="all")
    parser.add_argument("--quick", action="store_true",
                        help="fewer warmup iterations")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full report as JSON")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persist the compilation cache here")
    parser.add_argument("--no-osr", dest="osr", action="store_false",
                        default=True,
                        help="disable on-stack replacement")
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    workloads = [w for name in suites for w in SUITES[name]]
    if args.quick:
        for w in workloads:
            w.warmup_iterations = min(w.warmup_iterations, 25)
    cache = CompilationCache(args.cache_dir) if args.cache_dir else None
    report = run_jitdiff(workloads, osr=args.osr, cache=cache)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if report["metrics_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
