"""SPECjbb2005 analog (Table 1, last row).

Warehouse transaction processing: orders escape into the warehouse (the
business state), while per-transaction context objects — routing
contexts, lock-protected tallies, audit pairs — are temporary.  The
paper reports −16.1% MB, −38.1% allocations, −3.8% monitor operations
and +8.7% throughput.
"""

from __future__ import annotations

from .base import PaperRow, TRANSACTION_PATTERN, TUPLE_PATTERN, Workload

SPECJBB = Workload(
    name="specjbb2005",
    suite="specjbb",
    description=("Warehouse transactions: escaping orders + "
                 "scalar-replaceable transaction contexts and "
                 "lock-elided audit tallies."),
    paper=PaperRow(-16.1, -38.1, +8.7),
    iteration_size=60,
    source=TRANSACTION_PATTERN + TUPLE_PATTERN + """
class Tally {
    int count;
    synchronized void bump(int n) { count = count + n; }
}
class Ledger {
    int posted;
    synchronized void post(int n) { posted = posted + n; }
}
class Bench {
    static Ledger ledger;
    static int iterate(int size) {
        Warehouse wh = new Warehouse(size);
        ledger = new Ledger();
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            // New-order transaction: the order escapes on commit (5/6).
            check = check + Trading.transact(wh, i, i % 6 != 0);
            // The ledger is shared: its lock is real.
            ledger.post(i & 7);
            // Payment audit: a temporary tally, locks elided (the
            // paper's -3.8% monitor reduction).
            if (i % 50 == 0) {
                Pair audit = Tuples.divMod(i * 53 + 7, 11);
                Tally tally = new Tally();
                tally.bump(audit.first);
                tally.bump(audit.second);
                check = check + tally.count;
            }
        }
        return check + wh.revenue + ledger.posted;
    }
}
""")

SPECJBB_ALL = [SPECJBB]
