"""SPECjbb2005 analog (Table 1, last row).

Warehouse transaction processing: orders escape into the warehouse (the
business state), while per-transaction context objects — routing
contexts, lock-protected tallies, audit pairs — are temporary.  The
paper reports −16.1% MB, −38.1% allocations, −3.8% monitor operations
and +8.7% throughput.
"""

from __future__ import annotations

from .base import PaperRow, TRANSACTION_PATTERN, TUPLE_PATTERN, Workload

SPECJBB = Workload(
    name="specjbb2005",
    suite="specjbb",
    description=("Warehouse transactions: escaping orders + "
                 "scalar-replaceable transaction contexts and "
                 "lock-elided audit tallies."),
    paper=PaperRow(-16.1, -38.1, +8.7),
    iteration_size=60,
    source=TRANSACTION_PATTERN + TUPLE_PATTERN + """
class Tally {
    int count;
    synchronized void bump(int n) { count = count + n; }
}
class RateBook {
    // District/terminal tariff lookup: an unrolled rate table the
    // inliner refuses; it only reads the context, so escape summaries
    // keep the caller's transaction context virtual across the call.
    static int tariff(TxnContext c) {
        int acc = c.district * 7 + c.terminal * 3;
        acc = acc + (c.district + 1) * (c.terminal + 2);
        acc = acc + ((c.district >> 1) + c.terminal * 9);
        acc = acc + (c.district & 7) * 21 + (c.terminal & 3) * 5;
        acc = acc + (c.district + c.terminal) * 11;
        acc = acc + (c.district * 13 + (c.terminal >> 1));
        acc = acc + ((c.district + 3) * (c.district + 5));
        acc = acc + ((c.terminal + 7) * (c.terminal + 9));
        acc = acc + (c.district * 2 + c.terminal * 17);
        acc = acc + ((c.district >> 2) & 15) + ((c.terminal >> 1) & 7);
        return acc & 32767;
    }
}
class Ledger {
    int posted;
    synchronized void post(int n) { posted = posted + n; }
}
class Bench {
    static Ledger ledger;
    static int iterate(int size) {
        Warehouse wh = new Warehouse(size);
        ledger = new Ledger();
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            // New-order transaction: the order escapes on commit (5/6).
            check = check + Trading.transact(wh, i, i % 6 != 0);
            // Tariff probe: the context stays virtual only when the
            // interprocedural summary proves RateBook.tariff read-only.
            TxnContext probe = new TxnContext(i % 10, (i % 4) + 1);
            check = check + RateBook.tariff(probe);
            // The ledger is shared: its lock is real.
            ledger.post(i & 7);
            // Payment audit: a temporary tally, locks elided (the
            // paper's -3.8% monitor reduction).
            if (i % 50 == 0) {
                Pair audit = Tuples.divMod(i * 53 + 7, 11);
                Tally tally = new Tally();
                tally.bump(audit.first);
                tally.bump(audit.second);
                check = check + tally.count;
            }
        }
        return check + wh.revenue + ledger.posted;
    }
}
""")

SPECJBB_ALL = [SPECJBB]
