"""DaCapo 9.12-bach analogs (Table 1, upper block).

Seven benchmarks with significant changes plus the seven
no-significant-change benchmarks that enter the "average" row.
"""

from __future__ import annotations

from .base import (BOXING_PATTERN, BUILDER_PATTERN, CACHE_PATTERN,
                   DISPATCH_PATTERN, MESSAGE_PATTERN, PaperRow,
                   TUPLE_PATTERN, VECTOR_PATTERN, Workload)

FOP = Workload(
    name="fop",
    suite="dacapo",
    description=("XSL-FO formatter analog: layout tokens are short-lived "
                 "(scalar-replaceable, some under locks); the formatted "
                 "output buffers escape and dominate allocated bytes."),
    paper=PaperRow(-3.5, -5.6, +14.4),
    iteration_size=50,
    source=BUILDER_PATTERN + """
class LayoutLock { int owner; }
class FontMetrics {
    // A kerning/advance table evaluation: big enough that the inliner
    // refuses it, but it only *reads* its token -- interprocedural
    // escape summaries prove the parameter non-escaping, so the
    // caller's virtual token survives the call.
    static int advance(Token t) {
        int acc = t.kind * 3 + t.value;
        acc = acc + (t.kind + 1) * (t.value + 7);
        acc = acc + (t.kind * 11 + (t.value & 63));
        acc = acc + ((t.value >> 2) + t.kind * 5);
        acc = acc + (t.kind + t.value) * 3;
        acc = acc + ((t.value & 15) * 9 + t.kind);
        acc = acc + ((t.kind & 3) * 21 + (t.value >> 4));
        acc = acc + (t.value * 2 + t.kind * 13);
        acc = acc + ((t.value >> 1) & 127) + t.kind * 17;
        acc = acc + (t.kind * 29 + (t.value & 31));
        return acc & 65535;
    }
}
class Bench {
    static Buffer page;
    static LayoutLock lock;
    static int iterate(int size) {
        page = new Buffer(size * 4);
        lock = new LayoutLock();
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            // Escaping output lines: one buffer per paragraph.
            Buffer line = new Buffer(24);
            for (int j = 0; j < 6; j = j + 1) {
                check = check + Building.emit(line, i * 6 + j);
            }
            page.push(line.checksum());
            // Measurement token; the page-level lock is real (the
            // LayoutLock escapes), only the token is scalar-replaced.
            Token measure = new Token(i & 3, i);
            check = check + FontMetrics.advance(measure);
            synchronized (lock) {
                check = check + measure.weight();
            }
        }
        return check + page.checksum();
    }
}
""")

H2 = Workload(
    name="h2",
    suite="dacapo",
    description=("In-memory database analog: Listing 4 cache-key lookups "
                 "(partial escape) in front of row storage that escapes "
                 "into the table."),
    paper=PaperRow(-5.2, -5.9, +2.9),
    iteration_size=60,
    source=CACHE_PATTERN + """
class Row {
    int key; int a; int b;
    Row(int key, int a, int b) { this.key = key; this.a = a; this.b = b; }
}
class Table {
    Row[] rows;
    int used;
    Table(int capacity) { this.rows = new Row[capacity]; this.used = 0; }
    void insert(Row row) {
        if (used < rows.length) { rows[used] = row; used = used + 1; }
    }
}
class Bench {
    static int iterate(int size) {
        Table table = new Table(size);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            // Query plan cache: runs of repeated keys hit the cache.
            check = check + KeyCache.getValue((i / 6) % 8);
            // The row itself escapes into the table.
            Row row = new Row(i, i * 3, i * 5);
            table.insert(row);
            check = check + row.a;
        }
        return check;
    }
}
""")

def _jython_route_table(arms: int) -> str:
    """A CPython/Jython-style opcode table: one boxed operand flows into
    every arm and escapes there (pushed onto the operand stack).  Under
    PEA the box is materialized *per arm*, so the compiled dispatch
    method grows by roughly one allocation sequence per opcode — the
    code-size effect behind the paper's jython slowdown."""
    lines = ["class Router {",
             "    static int route(OpStack stack, int op, int v) {",
             "        Operand box = new Operand(v);",
             "        box.tag = v & 15;",
             "        box.aux = v >> 4;",
             "        box.width = (v & 3) + 1;"]
    for arm in range(arms):
        mul = (arm % 7) + 1
        add = (arm * 3) % 17
        mask = (1 << ((arm % 6) + 3)) - 1
        lines.append(
            f"        if (op == {arm}) {{ "
            f"box.value = v * {mul} + {add}; stack.push(box); "
            f"return box.value & {mask}; }}")
    lines.append("        return box.value - 1;")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


JYTHON = Workload(
    name="jython",
    suite="dacapo",
    description=("Interpreter-dispatch analog: one boxed operand flows "
                 "into a many-armed dispatch where each arm escapes it "
                 "into the operand stack — PEA must materialize the box "
                 "per arm, duplicating allocation code.  The compiled "
                 "method grows past the i-cache capacity, reproducing "
                 "the paper's code-size-induced slowdown (-2.1%)."),
    paper=PaperRow(-8.3, -15.2, -2.1),
    iteration_size=40,
    source=DISPATCH_PATTERN + _jython_route_table(30) + """
class Bench {
    static int run(OpStack stack, int i) {
        int check = 0;
        check = check + Dispatch.step(stack, 0, i);
        check = check + Dispatch.step(stack, 1, 0);
        for (int k = 0; k < 9; k = k + 1) {
            check = check + Router.route(stack, (i * 7 + k * 13) % 31,
                                         i + k);
        }
        check = check + Dispatch.step(stack, 2, 3);
        // A scalar-replaceable scratch box (interpreter frame local).
        Operand frame = new Operand(i * 17 + 3);
        check = check + (frame.value & 255);
        Operand top = stack.pop();
        return check + top.value;
    }
    static int iterate(int size) {
        OpStack stack = new OpStack(512);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            check = check + run(stack, i);
            check = check + run(stack, i * 7 + 1);
            check = check + run(stack, i * 13 + 5);
        }
        return check;
    }
}
""")

SUNFLOW = Workload(
    name="sunflow",
    suite="dacapo",
    description=("Raytracer analog: per-sample Vec3 temporaries are "
                 "fully scalar-replaceable; the framebuffer rows escape."),
    paper=PaperRow(-25.7, -30.6, +1.6),
    iteration_size=50,
    source=VECTOR_PATTERN + """
class Framebuffer {
    int[] pixels;
    Framebuffer(int n) { this.pixels = new int[n]; }
}
class ToneMap {
    // Tone-mapping curve over one color vector: too large to inline,
    // reads its argument only -- a summarized non-escaping callee.
    static int curve(Vec3 v) {
        int acc = v.x * 2 + v.y * 3 + v.z * 5;
        acc = acc + (v.x + 1) * (v.y + 2);
        acc = acc + (v.y + 3) * (v.z + 4);
        acc = acc + (v.z + 5) * (v.x + 6);
        acc = acc + ((v.x >> 1) & 255) + ((v.y >> 2) & 127);
        acc = acc + ((v.z >> 3) & 63) + (v.x & 31);
        acc = acc + (v.y & 15) * 7 + (v.z & 7) * 11;
        acc = acc + (v.x + v.y + v.z) * 13;
        acc = acc + (v.x * 4 + v.y * 9 + v.z * 25);
        return acc & 65535;
    }
}
class Bench {
    static int iterate(int size) {
        Framebuffer fb = new Framebuffer(size);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            int color = 0;
            for (int s = 0; s < 4; s = s + 1) {
                color = color + VecMath.shade(i * 4 + s);
            }
            Vec3 px = new Vec3(color & 255, i + 1, color >> 8);
            check = check + ToneMap.curve(px);
            fb.pixels[i] = color;
            check = check + color;
        }
        return check + fb.pixels[size / 2];
    }
}
""")

TOMCAT = Workload(
    name="tomcat",
    suite="dacapo",
    description=("Servlet-container analog: requests escape into the "
                 "session log; per-request header cursors are temporary "
                 "and their synchronization is elided (the paper's 4% "
                 "monitor reduction)."),
    paper=PaperRow(-0.8, -2.4, +4.4),
    iteration_size=50,
    source="""
class Request {
    int route; int length;
    Request(int route, int length) { this.route = route; this.length = length; }
}
class Session {
    Request[] log;
    int used;
    Session(int n) { this.log = new Request[n]; this.used = 0; }
    synchronized void record(Request r) {
        if (used < log.length) { log[used] = r; used = used + 1; }
    }
}
class HeaderCursor {
    int position;
    synchronized int consume(int raw) {
        position = position + 1;
        return (raw >> (position & 7)) & 255;
    }
}
class Bench {
    static Session active;
    static int iterate(int size) {
        Session session = new Session(size);
        active = session;
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            Request req = new Request(i & 15, i * 11);
            session.record(req);
            if (i % 48 == 0) {
                // A temporary parse cursor; its locks are elided -- the
                // paper's ~4% monitor reduction on tomcat.
                HeaderCursor cursor = new HeaderCursor();
                check = check + cursor.consume(req.length);
                check = check + cursor.consume(req.route);
            }
        }
        return check;
    }
}
""")

TRADEBEANS = Workload(
    name="tradebeans",
    suite="dacapo",
    description=("Bean-heavy trading analog: quote value-objects are "
                 "temporary; executed trades escape into the book."),
    paper=PaperRow(-7.8, -11.1, +6.4),
    iteration_size=50,
    source=TUPLE_PATTERN + """
class Quote {
    int symbol; int bid; int ask;
    Quote(int symbol, int bid, int ask) {
        this.symbol = symbol; this.bid = bid; this.ask = ask;
    }
    int spread() { return ask - bid; }
}
class Book {
    int[] positions;
    Book(int n) { this.positions = new int[n]; }
}
class Bench {
    static Quote flagged;
    static int quotes;
    static int iterate(int size) {
        Book book = new Book(64);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            Quote quote = new Quote(i & 63, i * 3 + 1, i * 3 + 4);
            check = check + quote.spread();
            Pair qr = Tuples.divMod(i * 17 + 3, 7);
            check = check + qr.first + qr.second;
            if (quote.spread() > 2) {
                book.positions[quote.symbol] =
                    book.positions[quote.symbol] + quote.bid;
            }
            // Compliance sampling keeps one quote in 64 (after its last
            // use): a partial escape that defeats flow-insensitive EA.
            quotes = quotes + 1;
            if ((quotes & 63) == 21) { flagged = quote; }
        }
        return check + book.positions[3];
    }
}
""")

XALAN = Workload(
    name="xalan",
    suite="dacapo",
    description=("XSLT analog: output DOM nodes escape into the result "
                 "tree; only the occasional traversal cursor is "
                 "temporary."),
    paper=PaperRow(-1.4, -2.2, +1.9),
    iteration_size=50,
    source="""
class DomNode {
    int tag; int text; DomNode sibling;
    DomNode(int tag, int text) { this.tag = tag; this.text = text; }
}
class ResultTree {
    DomNode head;
    int count;
    void append(DomNode n) {
        n.sibling = head;
        head = n;
        count = count + 1;
    }
}
class Walker {
    DomNode current;
    Walker(DomNode start) { this.current = start; }
    int walk() {
        int sum = 0;
        int hops = 0;
        while (current != null && hops < 8) {
            sum = sum + current.text;
            current = current.sibling;
            hops = hops + 1;
        }
        return sum;
    }
}
class Bench {
    static Walker parkedWalker;
    static int walks;
    static int iterate(int size) {
        ResultTree tree = new ResultTree();
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            DomNode node = new DomNode(i & 7, i * 13);
            tree.append(node);
            if (i % 8 == 0) {
                Walker w = new Walker(tree.head);
                check = check + w.walk();
                // Every 8th traversal parks its walker for resumption:
                // a partial escape that defeats flow-insensitive EA.
                walks = walks + 1;
                if ((walks & 7) == 3) { parkedWalker = w; }
            }
        }
        return check + tree.count;
    }
}
""")


def _quiet_workload(name: str, salt: int) -> Workload:
    """One of the DaCapo benchmarks without significant changes: all
    allocations escape into a result structure, so the analyses find
    nothing.  They still enter the suite average like in the paper."""
    return Workload(
        name=name,
        suite="dacapo",
        description=("No-significant-change analog: every allocation "
                     "escapes into the retained result list."),
        paper=PaperRow(0.0, 0.0, 0.0),
        iteration_size=40,
        source=f"""
class Item {{
    int a; int b;
    Item(int a, int b) {{ this.a = a; this.b = b; }}
}}
class Keep {{
    Item[] items;
    int used;
    Keep(int n) {{ this.items = new Item[n]; this.used = 0; }}
    void add(Item it) {{
        if (used < items.length) {{ items[used] = it; used = used + 1; }}
    }}
}}
class Bench {{
    static Keep retained;
    static int iterate(int size) {{
        Keep keep = new Keep(size);
        retained = keep;
        int check = {salt};
        for (int i = 0; i < size; i = i + 1) {{
            Item it = new Item(i * {salt % 7 + 2}, i + {salt});
            keep.add(it);
            check = check + it.a - it.b;
        }}
        return check + keep.used;
    }}
}}
""")


QUIET_DACAPO = [
    _quiet_workload("avrora", 3),
    _quiet_workload("batik", 5),
    _quiet_workload("eclipse", 7),
    _quiet_workload("luindex", 11),
    _quiet_workload("lusearch", 13),
    _quiet_workload("pmd", 17),
    _quiet_workload("tradesoap", 19),
]

DACAPO = [FOP, H2, JYTHON, SUNFLOW, TOMCAT, TRADEBEANS, XALAN] \
    + QUIET_DACAPO

#: The rows shown in Table 1 (significant changes only).
DACAPO_SHOWN = [FOP, H2, JYTHON, SUNFLOW, TOMCAT, TRADEBEANS, XALAN]
