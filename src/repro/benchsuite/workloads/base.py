"""Workload definitions and the shared allocation-pattern library.

Each Table 1 row gets a synthetic analog: an MJ program whose hot loop
mixes the allocation idioms the real benchmark is known for.  The
*pattern library* below provides the idioms; each workload composes them
with its own operation mix.  The measured with/without-PEA deltas come
out of the actual analysis running on the actual code — nothing is
hard-coded — but the mix is tuned so each analog lands in the
neighborhood of its paper row (recorded in EXPERIMENTS.md).

Patterns and what they exercise:

- ``CACHE``: the paper's Listing 4 — a key object that escapes only on
  cache misses (partial escape + lock elision on synchronized equals).
- ``VECTOR``: 3-component vector temporaries (sunflow-style math).
- ``ITERATOR``: Scala-style rich-iterator wrappers — a Range object, a
  cursor per traversal (fully scalar-replaceable).
- ``TUPLE``: multi-value returns through Pair objects.
- ``BOXING``: Integer-box churn with occasional interning escape.
- ``BUILDER``: token/builder temporaries feeding an escaping buffer.
- ``TRANSACTION``: SPECjbb-style orders escaping into a warehouse,
  wrapped in scalar-replaceable transaction contexts.
- ``MESSAGE``: actor-style envelopes consumed locally, rarely forwarded.
- ``DISPATCH``: jython-style interpreter dispatch with boxed operands
  that escape into an operand stack (large method, little PEA payoff,
  code-size growth from materialization duplication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple


#: Escaping/computational ballast shared by all workloads.  Real
#: benchmarks allocate mostly *retained* data (buffers, caches, result
#: structures) and spend most cycles computing; the ballast calibrates
#: each analog so its eliminable-temporary fraction matches its paper
#: row (see workloads/tuning.py, produced by benchmarks/calibrate.py).
BALLAST_CLASSES = """
class Ballast {
    static native int crunch(int seed);
}
class Retained {
    int[] chunk;
    Retained(int n) { this.chunk = new int[n]; }
}
class Mini {
    int tag;
    Mini(int tag) { this.tag = tag; }
}
class Stash {
    Object[] slots;
    int used;
    Stash(int n) { this.slots = new Object[n]; this.used = 0; }
    void keep(Object o) {
        if (used < slots.length) { slots[used] = o; used = used + 1; }
    }
}
"""

_ITERATE_HEADER = "static int iterate(int size) {"
_MAIN_LOOP = "for (int i = 0; i < size; i = i + 1) {"


def _crunch_impl(interpreter, args):
    """O(1) stand-in for a precompiled compute kernel; its simulated
    cost is carried by ``native_cycle_cost``, not by Python work."""
    return (args[0] * 2654435761 + 104729) & 0x7FFFFFFF


def apply_ballast(workload: "Workload", crunch: int = 0, retain: int = 0,
                  minis: int = 0) -> "Workload":
    """Inject calibrated ballast into a workload's main loop.

    - ``crunch``: simulated cycles of precompiled compute per loop
      iteration (a native kernel with a declared cycle cost);
    - ``retain``: element count of one escaping int[] chunk kept per
      loop iteration (allocated-bytes ballast);
    - ``minis``: small escaping objects kept per loop iteration
      (allocation-count ballast).
    """
    if not (crunch or retain or minis):
        return workload
    source = BALLAST_CLASSES + workload.source
    slots = minis + (1 if retain else 0)
    setup = f"\n        Stash stash = new Stash(size * {max(slots, 1)});"
    source = source.replace(_ITERATE_HEADER, _ITERATE_HEADER + setup, 1)
    steps = []
    if crunch:
        steps.append("check = check + Ballast.crunch(i);")
    if retain:
        steps.append(f"stash.keep(new Retained({retain}));")
    if 0 < minis <= 3:
        for index in range(minis):
            steps.append(f"stash.keep(new Mini(i + {index}));")
    elif minis > 3:
        # A loop keeps the compiled code small regardless of the count.
        steps.append(
            f"for (int bk = 0; bk < {minis}; bk = bk + 1) "
            "{ stash.keep(new Mini(i + bk)); }")
    injected = "\n            " + "\n            ".join(steps)
    if _MAIN_LOOP not in source:
        raise ValueError(f"{workload.name}: main loop not found")
    source = source.replace(_MAIN_LOOP, _MAIN_LOOP + injected, 1)
    workload.source = source
    if crunch:
        workload.natives = dict(workload.natives)
        workload.natives["Ballast.crunch"] = (_crunch_impl, crunch)
    return workload


@dataclass(frozen=True)
class PaperRow:
    """The numbers reported in the paper's Table 1 for this benchmark."""

    mb_delta_pct: float  # change in MB / iteration (negative = fewer)
    allocs_delta_pct: float  # change in allocations / iteration
    speedup_pct: float  # change in iterations / minute


@dataclass
class Workload:
    name: str
    suite: str  # "dacapo" | "scaladacapo" | "specjbb"
    source: str
    entry: str = "Bench.iterate"
    #: Argument for one benchmark iteration.
    iteration_size: int = 60
    #: Iterations used to warm up the JIT before measuring.
    warmup_iterations: int = 30
    #: Measured iterations (averaged).
    measure_iterations: int = 3
    paper: Optional[PaperRow] = None
    description: str = ""
    natives: Dict[str, Callable] = field(default_factory=dict)

    def __post_init__(self):
        if self.suite not in ("dacapo", "scaladacapo", "specjbb",
                              "phaseshift"):
            raise ValueError(f"unknown suite {self.suite}")


# --------------------------------------------------------------- patterns

CACHE_PATTERN = """
class Key {
    int idx;
    Object ref;
    Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }
    synchronized boolean sameAs(Key other) {
        return this.idx == other.idx && this.ref == other.ref;
    }
}
class KeyCache {
    static Key cacheKey;
    static int cacheValue;
    static int getValue(int idx) {
        Key key = new Key(idx, null);
        if (cacheKey != null && key.sameAs(cacheKey)) {
            return cacheValue;
        } else {
            cacheKey = key;
            cacheValue = idx * 31 + 7;
            return cacheValue;
        }
    }
}
"""

VECTOR_PATTERN = """
class Vec3 {
    int x; int y; int z;
    Vec3(int x, int y, int z) { this.x = x; this.y = y; this.z = z; }
    Vec3 plus(Vec3 o) { return new Vec3(x + o.x, y + o.y, z + o.z); }
    Vec3 cross(Vec3 o) {
        return new Vec3(y * o.z - z * o.y, z * o.x - x * o.z,
                        x * o.y - y * o.x);
    }
    int dot(Vec3 o) { return x * o.x + y * o.y + z * o.z; }
}
class VecMath {
    static Vec3 debugRay;
    static int shade(int seed) {
        Vec3 normal = new Vec3(seed, seed + 1, seed + 2);
        Vec3 light = new Vec3(3, 4, 5);
        Vec3 half = normal.plus(light);
        Vec3 bent = half.cross(light);
        int shade = bent.dot(normal) + half.dot(light);
        // Debug-ray capture: a rare *partial* escape -- flow-insensitive
        // EA forfeits bent and half entirely, PEA only pays on capture.
        if ((seed & 1023) == 7) { debugRay = bent; debugRay = half; }
        return shade;
    }
}
"""

ITERATOR_PATTERN = """
class Range {
    int start; int end;
    Range(int start, int end) { this.start = start; this.end = end; }
    Cursor cursor() { return new Cursor(this); }
}
class Cursor {
    Range range;
    int position;
    Cursor(Range range) { this.range = range; this.position = range.start; }
    boolean hasNext() { return position < range.end; }
    int next() { int v = position; position = position + 1; return v; }
}
class Iteration {
    static Cursor parked;
    static int ticks;
    static int sumSquares(int n) {
        Range range = new Range(0, n);
        Cursor cursor = range.cursor();
        int total = 0;
        while (cursor.hasNext()) {
            int v = cursor.next();
            total = total + v * v;
        }
        // Sampling profiler hook: one traversal in 256 parks its cursor
        // -- a *partial* escape.  Flow-insensitive EA forfeits every
        // cursor; PEA only allocates on the sampled ones.
        ticks = ticks + 1;
        if ((ticks & 255) == 13) { parked = cursor; }
        return total;
    }
}
"""

TUPLE_PATTERN = """
class Pair {
    int first; int second;
    Pair(int first, int second) { this.first = first; this.second = second; }
}
class Tuples {
    static Pair audited;
    static int conversions;
    static Pair divMod(int a, int b) {
        Pair pair = new Pair(a / b, a % b);
        // Auditing keeps one result in 256: a partial escape.
        conversions = conversions + 1;
        if ((conversions & 255) == 77) { audited = pair; }
        return pair;
    }
    static int digitSum(int value) {
        int sum = 0;
        int rest = value;
        while (rest > 0) {
            Pair qr = divMod(rest, 10);
            sum = sum + qr.second;
            rest = qr.first;
        }
        return sum;
    }
}
"""

BOXING_PATTERN = """
class IntBox {
    int value;
    IntBox(int value) { this.value = value; }
    int get() { return value; }
}
class Boxing {
    static IntBox interned;
    static int churn(int v, boolean intern) {
        IntBox box = new IntBox(v * 2 + 1);
        int result = box.get() - v;
        if (intern) { interned = box; }
        return result;
    }
}
"""

BUILDER_PATTERN = """
class Token {
    int kind; int value;
    Token(int kind, int value) { this.kind = kind; this.value = value; }
    int weight() { return kind * 7 + value; }
}
class Buffer {
    int[] data;
    int used;
    Buffer(int capacity) { this.data = new int[capacity]; this.used = 0; }
    void push(int v) {
        if (used < data.length) { data[used] = v; used = used + 1; }
    }
    int checksum() {
        int c = 0;
        for (int i = 0; i < used; i = i + 1) { c = c + data[i] * (i + 1); }
        return c;
    }
}
class Building {
    static Token sampled;
    static int emitted;
    static int emit(Buffer out, int seed) {
        Token token = new Token(seed & 7, seed >> 3);
        int weight = token.weight();
        int kind = token.kind;
        out.push(weight);
        // One token in 128 is kept for diagnostics: a partial escape.
        emitted = emitted + 1;
        if ((emitted & 127) == 9) { sampled = token; }
        return kind;
    }
}
"""

TRANSACTION_PATTERN = """
class Order {
    int item; int quantity; int price;
    Order(int item, int quantity, int price) {
        this.item = item; this.quantity = quantity; this.price = price;
    }
    int total() { return quantity * price; }
}
class Warehouse {
    Order[] orders;
    int count;
    int revenue;
    Warehouse(int capacity) {
        this.orders = new Order[capacity];
        this.count = 0;
        this.revenue = 0;
    }
    void submit(Order order) {
        if (count < orders.length) { orders[count] = order; }
        count = count + 1;
        revenue = revenue + order.total();
    }
}
class TxnContext {
    int district; int terminal;
    TxnContext(int district, int terminal) {
        this.district = district; this.terminal = terminal;
    }
    int route() { return district * 10 + terminal; }
}
class Trading {
    static int transact(Warehouse wh, int seed, boolean commit) {
        TxnContext ctx = new TxnContext(seed % 10, seed % 4);
        Order order = new Order(seed & 63, (seed % 5) + 1, (seed % 90) + 10);
        if (commit) {
            wh.submit(order);
            return ctx.route() + order.total();
        }
        return ctx.route() - order.total();
    }
}
"""

MESSAGE_PATTERN = """
class Envelope {
    int kind; int payload; Envelope reply;
    Envelope(int kind, int payload) {
        this.kind = kind; this.payload = payload;
    }
}
class Mailbox {
    Envelope[] slots;
    int used;
    Mailbox(int capacity) { this.slots = new Envelope[capacity]; this.used = 0; }
    synchronized void deliver(Envelope e) {
        if (used < slots.length) { slots[used] = e; used = used + 1; }
    }
}
class Actors {
    static int handle(Mailbox box, int seed, boolean forward) {
        Envelope msg = new Envelope(seed & 3, seed * 5);
        msg.payload = msg.payload + msg.kind;
        int payload = msg.payload;
        if (forward) {
            box.deliver(msg);
            return payload + 1;
        }
        return payload;
    }
}
"""

DISPATCH_PATTERN = """
class Operand {
    int value; int tag; int aux; int width;
    Operand(int value) { this.value = value; }
}
class OpStack {
    Operand[] slots;
    int depth;
    OpStack(int capacity) {
        this.slots = new Operand[capacity];
        this.depth = 0;
    }
    void push(Operand o) {
        if (depth < slots.length) { slots[depth] = o; depth = depth + 1; }
    }
    Operand pop() {
        if (depth > 0) { depth = depth - 1; return slots[depth]; }
        return new Operand(0);
    }
}
class Dispatch {
    static int step(OpStack stack, int opcode, int operand) {
        if (opcode == 0) {
            stack.push(new Operand(operand));
            return 0;
        }
        if (opcode == 1) {
            Operand a = stack.pop();
            Operand b = stack.pop();
            stack.push(new Operand(a.value + b.value));
            return 1;
        }
        if (opcode == 2) {
            Operand a = stack.pop();
            stack.push(new Operand(a.value * operand));
            return 2;
        }
        if (opcode == 3) {
            Operand a = stack.pop();
            Operand b = new Operand(a.value - operand);
            stack.push(b);
            return 3;
        }
        if (opcode == 4) {
            Operand probe = new Operand(operand * 3);
            return probe.value & 7;
        }
        Operand scratch = new Operand(opcode ^ operand);
        return scratch.value & 3;
    }
}
"""
