"""ScalaDaCapo 0.1.0 analogs (Table 1, middle block).

Scala-compiled code carries extra abstraction layers — rich iterators,
tuples, boxed values, closures-as-objects — which is exactly where the
paper reports the largest wins (factorie −58.5% MB, specs −72% allocs).
Each analog leans on the corresponding idiom.
"""

from __future__ import annotations

from .base import (BOXING_PATTERN, BUILDER_PATTERN, CACHE_PATTERN,
                   ITERATOR_PATTERN, MESSAGE_PATTERN, PaperRow,
                   TUPLE_PATTERN, VECTOR_PATTERN, Workload)

ACTORS = Workload(
    name="actors",
    suite="scaladacapo",
    description=("Actor messaging analog: envelopes are handled locally "
                 "(scalar-replaced, locks elided) and forwarded — i.e. "
                 "escaping — only for a sixth of the traffic."),
    paper=PaperRow(-17.0, -18.5, +10.0),
    iteration_size=60,
    source=MESSAGE_PATTERN + """
class Bench {
    static Mailbox shared;
    static int iterate(int size) {
        Mailbox box = new Mailbox(size);
        shared = box;
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            check = check + Actors.handle(box, i, i % 6 == 0);
            check = check + Actors.handle(box, i * 3 + 1, false);
        }
        return check + box.used;
    }
}
""")

APPARAT = Workload(
    name="apparat",
    suite="scaladacapo",
    description=("Bytecode-toolkit analog: emitted code blocks escape; "
                 "small tag tuples around them are temporary."),
    paper=PaperRow(-3.3, -5.5, +13.7),
    iteration_size=50,
    source=BUILDER_PATTERN + TUPLE_PATTERN + """
class Bench {
    static int iterate(int size) {
        Buffer output = new Buffer(size * 8);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            for (int j = 0; j < 6; j = j + 1) {
                check = check + Building.emit(output, i * 6 + j);
            }
            Pair tag = Tuples.divMod(i * 29 + 11, 13);
            check = check + tag.first * 2 + tag.second;
        }
        return check + output.checksum();
    }
}
""")

FACTORIE = Workload(
    name="factorie",
    suite="scaladacapo",
    description=("Probabilistic-modelling analog: factor scoring builds "
                 "towers of short-lived vectors, cursors and tuples per "
                 "edge; almost everything is scalar-replaceable — the "
                 "paper's biggest win (−58.5% MB, +33%)."),
    paper=PaperRow(-58.5, -60.9, +33.0),
    iteration_size=40,
    source=VECTOR_PATTERN + ITERATOR_PATTERN + TUPLE_PATTERN + """
class Model {
    int[] weights;
    Model(int n) { this.weights = new int[n]; }
}
class Bench {
    static int scoreFactor(int seed) {
        Vec3 feature = new Vec3(seed, seed * 2 + 1, seed * 3 + 2);
        Vec3 weight = new Vec3(2, 3, 5);
        Vec3 joined = feature.plus(weight);
        Pair norm = Tuples.divMod(joined.dot(weight) + 1000, 97);
        return norm.first + norm.second + Iteration.sumSquares(5);
    }
    static int iterate(int size) {
        Model model = new Model(32);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            for (int e = 0; e < 4; e = e + 1) {
                int score = scoreFactor(i * 4 + e);
                check = check + score;
                if (score % 1000 == 123) {
                    model.weights[i % 32] = score;
                }
            }
        }
        return check + model.weights[7];
    }
}
""")

KIAMA = Workload(
    name="kiama",
    suite="scaladacapo",
    description=("Rewriting-library analog: rewrite steps produce fresh "
                 "term wrappers; only changed terms survive into the "
                 "result."),
    paper=PaperRow(-6.6, -11.2, +16.5),
    iteration_size=50,
    source=TUPLE_PATTERN + """
class Term {
    int op; int value;
    Term(int op, int value) { this.op = op; this.value = value; }
}
class Terms {
    Term[] kept;
    int used;
    Terms(int n) { this.kept = new Term[n]; this.used = 0; }
    void keep(Term t) {
        if (used < kept.length) { kept[used] = t; used = used + 1; }
    }
}
class Bench {
    static int iterate(int size) {
        Terms result = new Terms(size);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            Term original = new Term(i & 3, i * 7);
            Term rewritten = new Term(original.op,
                                      original.value * 2 + 1);
            Pair cost = Tuples.divMod(rewritten.value, 5);
            check = check + cost.first - cost.second;
            if (rewritten.op == 3) { result.keep(rewritten); }
        }
        return check + result.used;
    }
}
""")

SCALAC = Workload(
    name="scalac",
    suite="scaladacapo",
    description=("Compiler-frontend analog: symbol lookups through a "
                 "cache, tree nodes escaping into the AST, and temporary "
                 "position/cursor objects."),
    paper=PaperRow(-14.5, -22.6, +4.4),
    iteration_size=50,
    source=CACHE_PATTERN + ITERATOR_PATTERN + """
class Tree {
    int kind; int symbol; Tree child;
    Tree(int kind, int symbol) { this.kind = kind; this.symbol = symbol; }
}
class Ast {
    Tree root;
    int nodes;
    void graft(Tree t) { t.child = root; root = t; nodes = nodes + 1; }
}
class Bench {
    static int iterate(int size) {
        Ast ast = new Ast();
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            check = check + KeyCache.getValue((i / 5) % 6);
            check = check + Iteration.sumSquares(4);
            if (i % 3 == 0) {
                Tree node = new Tree(i & 7, i * 3);
                ast.graft(node);
            }
        }
        return check + ast.nodes;
    }
}
""")

SCALADOC = Workload(
    name="scaladoc",
    suite="scaladacapo",
    description=("Doc-generator analog: comment fragments escape into "
                 "pages; per-fragment parsing cursors and boxes are "
                 "temporary."),
    paper=PaperRow(-12.0, -24.0, +3.0),
    iteration_size=50,
    source=BOXING_PATTERN + ITERATOR_PATTERN + BUILDER_PATTERN + """
class Bench {
    static int iterate(int size) {
        Buffer page = new Buffer(size * 2);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            check = check + Iteration.sumSquares(3);
            check = check + Boxing.churn(i, (i & 255) == 17);
            check = check + Boxing.churn(i * 5 + 2, false);
            check = check + Building.emit(page, i);
        }
        return check + page.checksum();
    }
}
""")

SCALAP = Workload(
    name="scalap",
    suite="scaladacapo",
    description=("Classfile-printer analog: small, short runs dominated "
                 "by temporary decode boxes."),
    paper=PaperRow(-8.8, -12.5, +17.6),
    iteration_size=40,
    source=BOXING_PATTERN + TUPLE_PATTERN + """
class Output {
    int[] lines;
    int used;
    Output(int n) { this.lines = new int[n]; this.used = 0; }
    void line(int v) {
        if (used < lines.length) { lines[used] = v; used = used + 1; }
    }
}
class Bench {
    static int iterate(int size) {
        Output out = new Output(size);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            check = check + Boxing.churn(i * 3, (i & 127) == 31);
            Pair sig = Tuples.divMod(i * 41 + 5, 9);
            out.line(sig.first ^ sig.second);
        }
        return check + out.used;
    }
}
""")

SCALARIFORM = Workload(
    name="scalariform",
    suite="scaladacapo",
    description=("Formatter analog: token stream with temporary token "
                 "objects; the reformatted text escapes."),
    paper=PaperRow(-13.3, -16.5, +7.8),
    iteration_size=50,
    source=BUILDER_PATTERN + ITERATOR_PATTERN + """
class Bench {
    static int iterate(int size) {
        Buffer formatted = new Buffer(size * 4);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            check = check + Iteration.sumSquares(4);
            for (int j = 0; j < 3; j = j + 1) {
                check = check + Building.emit(formatted, i * 3 + j);
            }
        }
        return check + formatted.checksum();
    }
}
""")

SCALATEST = Workload(
    name="scalatest",
    suite="scaladacapo",
    description=("Test-framework analog: almost everything it allocates "
                 "(reports, fixtures) is retained; only tiny matchers "
                 "are temporary."),
    paper=PaperRow(-1.0, -2.4, +7.1),
    iteration_size=50,
    source=BOXING_PATTERN + """
class Report {
    int status; int nanos;
    Report(int status, int nanos) { this.status = status; this.nanos = nanos; }
}
class Suite {
    Report[] reports;
    int used;
    Suite(int n) { this.reports = new Report[n]; this.used = 0; }
    void record(Report r) {
        if (used < reports.length) { reports[used] = r; used = used + 1; }
    }
}
class Bench {
    static int iterate(int size) {
        Suite suite = new Suite(size * 2);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            Report setup = new Report(0, i * 3);
            Report verdict = new Report(i & 1, i * 7);
            suite.record(setup);
            suite.record(verdict);
            if (i % 4 == 0) {
                check = check + Boxing.churn(i, (i & 255) == 17);
            }
            check = check + verdict.status + setup.nanos;
        }
        return check + suite.used;
    }
}
""")

SCALAXB = Workload(
    name="scalaxb",
    suite="scaladacapo",
    description=("XML-binding analog: parsed elements escape into the "
                 "document; attribute boxes and cursors are temporary."),
    paper=PaperRow(-5.9, -13.8, +4.7),
    iteration_size=50,
    source=BOXING_PATTERN + ITERATOR_PATTERN + """
class Element {
    int tag; int attrs;
    Element(int tag, int attrs) { this.tag = tag; this.attrs = attrs; }
}
class Document {
    Element[] elements;
    int used;
    Document(int n) { this.elements = new Element[n]; this.used = 0; }
    void add(Element e) {
        if (used < elements.length) { elements[used] = e; used = used + 1; }
    }
}
class Bench {
    static int iterate(int size) {
        Document doc = new Document(size);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            Element el = new Element(i & 15, i * 3);
            doc.add(el);
            check = check + Boxing.churn(el.attrs, (i & 255) == 63);
            check = check + Iteration.sumSquares(3);
        }
        return check + doc.used;
    }
}
""")

SPECS = Workload(
    name="specs",
    suite="scaladacapo",
    description=("BDD-framework analog: matcher chains allocate many "
                 "tiny wrapper objects per assertion — the paper's "
                 "largest allocation-count reduction (−72%)."),
    paper=PaperRow(-38.4, -72.0, +4.0),
    iteration_size=50,
    source=ITERATOR_PATTERN + BOXING_PATTERN + """
class Expectation {
    int actual;
    Expectation(int actual) { this.actual = actual; }
    Matcher must() { return new Matcher(this); }
}
class Matcher {
    Expectation subject;
    Matcher(Expectation subject) { this.subject = subject; }
    int beCloseTo(int expected) {
        int diff = subject.actual - expected;
        if (diff < 0) { diff = -diff; }
        return diff;
    }
}
class Failures {
    int[] log;
    int used;
    Failures(int n) { this.log = new int[n]; this.used = 0; }
}
class Bench {
    static int iterate(int size) {
        Failures failures = new Failures(8);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            Expectation e1 = new Expectation(i * 3);
            check = check + e1.must().beCloseTo(i * 3 + 1);
            Expectation e2 = new Expectation(i * 5);
            check = check + e2.must().beCloseTo(i * 5);
            check = check + Boxing.churn(i, (i & 255) == 17)
                + Iteration.sumSquares(2);
        }
        return check + failures.used;
    }
}
""")

TMT = Workload(
    name="tmt",
    suite="scaladacapo",
    description=("Topic-modelling analog: large escaping count matrices "
                 "with a thin layer of temporary sample tuples."),
    paper=PaperRow(-3.6, -12.2, +3.3),
    iteration_size=40,
    source=TUPLE_PATTERN + """
class Counts {
    int[] topicCounts;
    Counts(int n) { this.topicCounts = new int[n]; }
}
class Bench {
    static int iterate(int size) {
        Counts counts = new Counts(size * 4);
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            Pair sample = Tuples.divMod(i * 37 + 11, 8);
            counts.topicCounts[(i * 4 + sample.second)
                               % (size * 4)] = sample.first;
            check = check + sample.first;
        }
        return check + counts.topicCounts[3];
    }
}
""")

SCALADACAPO = [ACTORS, APPARAT, FACTORIE, KIAMA, SCALAC, SCALADOC,
               SCALAP, SCALARIFORM, SCALATEST, SCALAXB, SPECS, TMT]
