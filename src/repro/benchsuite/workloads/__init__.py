"""The workload registry: one analog per Table 1 row.

The raw definitions live in :mod:`dacapo`, :mod:`scaladacapo` and
:mod:`specjbb`; this module applies the calibrated ballast from
:mod:`tuning` and exposes the tuned workloads.  (The calibration tool
imports the raw definitions directly.)
"""

import copy

from .base import PaperRow, Workload, apply_ballast
from .dacapo import DACAPO as _DACAPO_RAW
from .dacapo import DACAPO_SHOWN as _DACAPO_SHOWN_RAW
from .phaseshift import PHASESHIFT
from .scaladacapo import SCALADACAPO as _SCALADACAPO_RAW
from .specjbb import SPECJBB_ALL as _SPECJBB_RAW
from .tuning import TUNING


def _tune(workloads):
    tuned = []
    for workload in workloads:
        crunch, retain, minis = TUNING.get(workload.name, (0, 0, 0))
        tuned.append(apply_ballast(copy.copy(workload), crunch, retain,
                                   minis))
    return tuned


DACAPO = _tune(_DACAPO_RAW)
SCALADACAPO = _tune(_SCALADACAPO_RAW)
SPECJBB_ALL = _tune(_SPECJBB_RAW)
SPECJBB = SPECJBB_ALL[0]
DACAPO_SHOWN = [w for w in DACAPO
                if w.name in {raw.name for raw in _DACAPO_SHOWN_RAW}]

ALL_WORKLOADS = DACAPO + SCALADACAPO + SPECJBB_ALL + PHASESHIFT

SUITES = {
    "dacapo": DACAPO,
    "scaladacapo": SCALADACAPO,
    "specjbb": SPECJBB_ALL,
    "phaseshift": PHASESHIFT,
}


def by_name(name: str) -> Workload:
    for workload in ALL_WORKLOADS:
        if workload.name == name:
            return workload
    raise KeyError(f"unknown workload {name}")


__all__ = ["PaperRow", "Workload", "DACAPO", "DACAPO_SHOWN",
           "PHASESHIFT", "SCALADACAPO", "SPECJBB", "SPECJBB_ALL",
           "ALL_WORKLOADS", "SUITES", "by_name"]
