"""Calibrated ballast constants, produced by ``benchmarks/calibrate.py``.

Each entry is ``name: (crunch_cycles, retain_elements, mini_objects)``
per main-loop iteration (see ``base.apply_ballast``).  The constants
dilute each analog's eliminable-temporary fraction so its measured
Table 1 deltas land near the paper's row; the deltas themselves are
always *measured*, never asserted.

Regenerate after changing a workload::

    python benchmarks/calibrate.py > calibration.log
"""

#: name -> (crunch, retain, minis); produced by benchmarks/calibrate.py.
TUNING = {
    'fop': (0, 439, 131),
    'h2': (6082, 13, 10),
    'jython': (0, 32, 0),
    'sunflow': (99419, 116, 34),
    'tomcat': (207, 1, 1),
    'tradebeans': (3073, 50, 14),
    'xalan': (1642, 2, 2),
    'avrora': (0, 0, 0),
    'batik': (0, 0, 0),
    'eclipse': (0, 0, 0),
    'luindex': (0, 0, 0),
    'lusearch': (0, 0, 0),
    'pmd': (0, 0, 0),
    'tradesoap': (0, 0, 0),
    'actors': (1453, 13, 6),
    'apparat': (0, 441, 118),
    'factorie': (3938, 15, 7),
    'kiama': (0, 83, 20),
    'scalac': (6799, 30, 7),
    'scaladoc': (14712, 74, 14),
    'scalap': (272, 24, 12),
    'scalariform': (6145, 43, 23),
    'scalatest': (497, 42, 7),
    'scalaxb': (6194, 109, 16),
    'specs': (10469, 22, 1),
    'tmt': (2853, 78, 5),
    'specjbb2005': (831, 13, 1),
}
