"""Phase-shifting workloads: the deopt latency cliff, on purpose.

Every Table 1 analog settles into one steady state; these workloads do
the opposite — their runtime behavior *changes phase* mid-run, so
speculative code trained on the first phase is falsified by the second.
They exist to measure the transition window (the "deopt latency
cliff"): without deoptless each falsified speculation pays a full
interpreted bridge before re-tiering; with ``config.deoptless`` the
deopt dispatches into a continuation specialized for the newly observed
state and stays at compiled speed (see :mod:`repro.jit.deoptless`).

Two family members, one per dispatch-context kind:

- ``phaseshift-branch``: a phase flag selects a branch direction ahead
  of a heavy loop; the flip falsifies a branch speculation.
- ``phaseshift-mega``: a receiver rotates through three classes ahead
  of a heavy loop; the rotation falsifies a type speculation
  (megamorphic-receiver pattern).

Both ``Work.step`` bodies are padded past
``InliningPolicy.max_callee_size`` so they compile standalone — the
phase check must be the *callee's* entry so its deopt site sits before
the loop (a deopt inside the loop would need a mid-loop continuation
entry, which the graph builder declines; see docs/internals.md §15).

Used two ways:

- as ordinary registry workloads (suite ``"phaseshift"``): the phase
  flips *inside* one iteration, so the profile sees both phases, no
  speculation forms, and the harness metrics are deterministic and
  config-identical like every other workload's;
- through the :func:`drive_branch` / :func:`drive_mega` drivers
  (``timing.deoptless_ab`` in the table1 JSON): the phase flips *across
  calls*, speculation trains on phase one and is falsified at the flip,
  and the driver records per-call simulated-cycle latencies and
  post-flip interpreter steps — the numbers the deoptless A/B gates on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import Workload

def _straightline_mix(rounds: int) -> str:
    """Unrolled data-dependent arithmetic on ``acc``.

    Deliberately *straight-line*: a deopt bridged by the interpreter
    must grind through every one of these bytecodes at interpreter
    cost, and — unlike a loop body — no backedge ever fires, so OSR
    cannot rescue the bridge mid-method.  This is precisely the code
    shape where the deopt latency cliff survives OSR and only a
    deoptless continuation keeps it at compiled speed.  Distinct
    constants per round keep GVN from collapsing the mix."""
    lines = []
    for k in range(rounds):
        lines.append(f"        acc = (acc * {31 + 2 * k} + "
                     f"(acc >> {3 + k % 5})) & 1048575;")
        lines.append(f"        acc = (acc ^ {(k * 40503 + 17) % 65536})"
                     f" + ((acc >> 1) & 4095);")
    return "\n".join(lines)


#: Heavy body shared by both ``Work.step`` methods: a big unrolled
#: straight-line mix (the OSR-proof part, see :func:`_straightline_mix`)
#: followed by a short loop.  Far past the inliner's
#: ``max_callee_size``, so ``step`` always compiles standalone and its
#: phase check is a method-entry deopt site.
_HEAVY_BODY = _straightline_mix(24) + """
        for (int i = 0; i < n; i = i + 1) {
            acc = (acc * 31 + i) & 1048575;
            acc = (acc ^ (i << 1)) + ((acc >> 2) & 2047);
        }
        return acc;
"""

BRANCH_SOURCE = """
class Work {
    static int step(int phase, int n) {
        int acc = 0;
        if (phase == 1) { acc = 7; } else { acc = 3; }
""" + _HEAVY_BODY + """
    }
}
class Bench {
    static int iterate(int size) {
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            int phase = 0;
            if (i * 4 >= size * 3) { phase = 1; }
            check = (check + Work.step(phase, 40)) & 16777215;
        }
        return check;
    }
}
"""

MEGA_SOURCE = """
class Shape {
    int weight() { return 1; }
}
class Circle extends Shape {
    int weight() { return 3; }
}
class Square extends Shape {
    int weight() { return 5; }
}
class Tri extends Shape {
    int weight() { return 7; }
}
class Work {
    static int step(Shape s, int n) {
        int acc = s.weight();
""" + _HEAVY_BODY + """
    }
}
class Bench {
    static Shape make(int kind) {
        if (kind == 0) { return new Circle(); }
        if (kind == 1) { return new Square(); }
        return new Tri();
    }
    static int iterate(int size) {
        int check = 0;
        for (int i = 0; i < size; i = i + 1) {
            Shape s = Bench.make(i - (i / 3) * 3);
            check = (check + Work.step(s, 40)) & 16777215;
        }
        return check;
    }
}
"""

PHASESHIFT = [
    Workload(
        name="phaseshift-branch",
        suite="phaseshift",
        source=BRANCH_SOURCE,
        iteration_size=40,
        warmup_iterations=25,
        measure_iterations=12,
        description="branch-flip phase shift ahead of a heavy loop "
                    "(deopt latency cliff, branch dispatch context)"),
    Workload(
        name="phaseshift-mega",
        suite="phaseshift",
        source=MEGA_SOURCE,
        iteration_size=40,
        warmup_iterations=25,
        measure_iterations=12,
        description="megamorphic receiver rotation ahead of a heavy "
                    "loop (deopt latency cliff, receiver dispatch "
                    "context)"),
]

#: Calls before the phase flips in the A/B drivers (past every tier-up
#: threshold, so the flip hits fully speculated compiled code) and
#: calls measured after it (the transition window plus steady state).
WARM_CALLS = 60
POST_FLIP_CALLS = 48
_STEP_N = 40


def _measure_calls(vm, program, calls) -> Tuple[int, List[float]]:
    """Run ``(entry, args)`` calls, returning (checksum, per-call
    simulated-cycle latencies)."""
    checksum = 0
    latencies = []
    before = vm.cycles_snapshot()
    for entry, args in calls:
        checksum = (checksum + vm.call(entry, *args)) & 16777215
        after = vm.cycles_snapshot()
        latencies.append(after - before)
        before = after
    return checksum, latencies


def drive_branch(vm, program) -> Dict[str, object]:
    """Warm ``Work.step`` on phase 0, flip to phase 1, measure the
    transition window."""
    warm = [("Work.step", (0, _STEP_N))] * WARM_CALLS
    post = [("Work.step", (1, _STEP_N))] * POST_FLIP_CALLS
    checksum, _ = _measure_calls(vm, program, warm)
    vm.cycles_snapshot()
    steps_before = vm.exec_stats.interpreter_steps
    post_checksum, latencies = _measure_calls(vm, program, post)
    vm.cycles_snapshot()
    return {
        "checksum": (checksum * 31 + post_checksum) & 16777215,
        "post_flip_latencies": latencies,
        "interpreter_steps_after_flip":
            vm.exec_stats.interpreter_steps - steps_before,
    }


def drive_mega(vm, program) -> Dict[str, object]:
    """Warm ``Work.step`` on Circle receivers, then rotate the receiver
    class every call, measure the transition window."""
    heap = vm.heap
    shapes = [heap.new_instance(name)
              for name in ("Circle", "Square", "Tri")]
    # Train the receiver profile monomorphic (the interpreter records
    # receiver classes while Work.step is still interpreted).
    warm = [("Work.step", (shapes[0], _STEP_N))] * WARM_CALLS
    post = [("Work.step", (shapes[i % 3], _STEP_N))
            for i in range(POST_FLIP_CALLS)]
    checksum, _ = _measure_calls(vm, program, warm)
    vm.cycles_snapshot()
    steps_before = vm.exec_stats.interpreter_steps
    post_checksum, latencies = _measure_calls(vm, program, post)
    vm.cycles_snapshot()
    return {
        "checksum": (checksum * 31 + post_checksum) & 16777215,
        "post_flip_latencies": latencies,
        "interpreter_steps_after_flip":
            vm.exec_stats.interpreter_steps - steps_before,
    }


#: name -> (source, driver) for the deoptless A/B (table1).
AB_DRIVERS = {
    "phaseshift-branch": (BRANCH_SOURCE, drive_branch),
    "phaseshift-mega": (MEGA_SOURCE, drive_mega),
}
