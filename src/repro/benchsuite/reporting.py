"""Plain-text table rendering for the benchmark reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 aligns: Optional[Sequence[str]] = None) -> str:
    """Render a simple aligned text table ('l' or 'r' per column)."""
    if aligns is None:
        aligns = ["l"] + ["r"] * (len(headers) - 1)
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells):
        parts = []
        for index, cell in enumerate(cells):
            if aligns[index] == "r":
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = [fmt(headers), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{value:+.1f}%"


def num(value: float, decimals: int = 1) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.{decimals}f}"
