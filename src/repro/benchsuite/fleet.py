"""The fleet benchmark: many VM workers, one compile service.

Simulates a specjbb-style deployment — dozens of short-lived VM worker
processes executing a request mix — where every worker shares one
persistent :class:`~repro.jit.server.CompileService` ("one JIT,
thousands of VMs").  Three phases:

1. **cold**: every workload runs once, spread round-robin across the
   worker processes, measuring per-workload *cold-start latency* (VM
   construction through full tier-up, i.e. ``finish_pending_compiles``
   returning with every reply installed).
2. **repeated mix**: a seeded RNG draws ``mix_tasks`` workloads and the
   fleet executes them; because the cold phase already populated the
   service's cache, (almost) every compile request should resolve by
   *dedup* (joined an identical in-flight job) or *cache hit* — the
   reported ``dedup_or_hit_rate`` is the acceptance metric (>= 90%).
3. **identity A/B** (optional): every workload measured through the
   ordinary harness twice — ``compile_service`` pointing at the live
   service vs. plain in-process compilation — asserting the
   deterministic metrics (checksum, KB, allocations, monitor
   operations, measured-window deopts) are bit-identical.  Background
   tier-up may only move *real time*, never a simulated metric.

Usage::

    python -m repro.benchsuite.fleet [--workers N] [--mix-tasks M]
        [--seed S] [--service-workers K] [--identity-sample N]
        [--json PATH]

The JSON payload is what ``table1.py --fleet`` embeds under
``timing.fleet`` in ``BENCH_table1.json`` and what CI uploads as
``artifacts/fleet.json``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import random
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..api import VM, CompilerConfig, compile_source
from ..jit.server import CompileService, format_address
from .harness import run_workload
from .workloads import ALL_WORKLOADS, by_name

#: Tier-up thresholds for the load-generation phases: low enough that a
#: handful of iterations compiles every hot method (the phases measure
#: service behavior, not steady-state workload performance).
_FLEET_COMPILE_THRESHOLD = 3
_FLEET_OSR_THRESHOLD = 25
#: Warm-up iterations one fleet task runs before the tier-up barrier.
_FLEET_WARMUP = 6

#: The deterministic metrics the identity A/B compares.  ``deopts`` is
#: deliberately the *measured-window* variant: asynchronous installs
#: shift warm-up deopt timing (see Measurement.deopts_measured), while
#: the drain barrier makes the measured window itself deterministic.
_IDENTITY_METRICS = ("checksum", "kb_per_iteration",
                     "allocations_per_iteration",
                     "monitor_ops_per_iteration", "deopts_measured")


def _worker_main(address, worker_id: int, names: Sequence[str],
                 config: CompilerConfig, warmup: int,
                 result_queue) -> None:
    """One fleet worker process: run its task list against the shared
    service, reporting per-task tier-up latency and checksum."""
    try:
        from ..jit.client import ServiceClient
        client = ServiceClient(address)
        programs: Dict[str, object] = {}
        records: List[dict] = []
        for name in names:
            workload = by_name(name)
            program = programs.get(name)
            if program is None:
                program = programs[name] = compile_source(
                    workload.source, natives=workload.natives or None)
            started = time.perf_counter()
            vm = VM(program, config, service=client)
            checksum = None
            for _ in range(warmup):
                checksum = vm.call(workload.entry,
                                   workload.iteration_size)
                program.reset_statics()
            vm.finish_pending_compiles()
            tier_up_seconds = time.perf_counter() - started
            records.append({
                "workload": name,
                "tier_up_seconds": tier_up_seconds,
                "checksum": checksum,
                "compiled": len(vm.compiled),
                "service_installs": vm.service_installs,
                "service_fallbacks": vm.service_fallbacks,
            })
        client.close()
        result_queue.put(("ok", worker_id, records))
    except Exception as exc:  # noqa: BLE001 - report, don't hang join
        result_queue.put(("error", worker_id,
                          f"{type(exc).__name__}: {exc}"))


def _run_phase(address, assignments: List[List[str]],
               config: CompilerConfig, warmup: int) -> List[dict]:
    """Launch one worker process per (non-empty) assignment, join them
    all, and return the merged task records."""
    ctx = multiprocessing.get_context()
    result_queue = ctx.SimpleQueue()
    processes = []
    for worker_id, names in enumerate(assignments):
        if not names:
            continue
        process = ctx.Process(
            target=_worker_main,
            args=(address, worker_id, names, config, warmup,
                  result_queue))
        process.start()
        processes.append(process)
    records: List[dict] = []
    errors: List[str] = []
    for _ in processes:
        status, worker_id, payload = result_queue.get()
        if status == "ok":
            records.extend(payload)
        else:
            errors.append(f"worker {worker_id}: {payload}")
    for process in processes:
        process.join()
    if errors:
        raise RuntimeError("fleet workers failed: " + "; ".join(errors))
    return records


def _round_robin(names: Sequence[str], workers: int) -> List[List[str]]:
    assignments: List[List[str]] = [[] for _ in range(workers)]
    for index, name in enumerate(names):
        assignments[index % workers].append(name)
    return assignments


def _stats_delta(after: dict, before: dict) -> dict:
    delta = {name: value - before[name]
             for name, value in after.items()
             if isinstance(value, (int, float))
             and not isinstance(value, bool) and name in before}
    requests = delta.get("requests", 0)
    delta["dedup_or_hit_rate"] = (
        (delta.get("dedup_joined", 0) + delta.get("cache_hits", 0))
        / requests if requests else 0.0)
    return delta


def _latency_summary(records: List[dict]) -> dict:
    seconds = sorted(r["tier_up_seconds"] for r in records)
    if not seconds:
        return {}
    return {
        "min_seconds": round(seconds[0], 3),
        "mean_seconds": round(sum(seconds) / len(seconds), 3),
        "max_seconds": round(seconds[-1], 3),
    }


def _identity_ab(address, names: Sequence[str], quick: bool) -> dict:
    """Per-workload service-on vs service-off measurement through the
    ordinary harness; both runs use the standard benchmark
    configuration (only ``compile_service`` differs)."""
    section: Dict[str, dict] = {}
    all_identical = True
    service_config = CompilerConfig.partial_escape(
        compile_service=format_address(address))
    local_config = CompilerConfig.partial_escape()
    for name in names:
        workload = by_name(name)
        if quick:
            import copy
            workload = copy.copy(workload)
            workload.warmup_iterations = min(
                workload.warmup_iterations, 25)
        program = compile_source(workload.source,
                                 natives=workload.natives or None)
        serviced = run_workload(workload, service_config,
                                program=program)
        local = run_workload(workload, local_config, program=program)
        same = all(getattr(serviced, metric) == getattr(local, metric)
                   for metric in _IDENTITY_METRICS)
        all_identical = all_identical and same
        section[name] = {
            "metrics_identical": same,
            "checksum": local.checksum,
            "deopts_measured": local.deopts_measured,
            "service_cache_hits": serviced.cache_hits,
        }
        if not same:
            section[name]["mismatch"] = {
                metric: [getattr(serviced, metric),
                         getattr(local, metric)]
                for metric in _IDENTITY_METRICS
                if getattr(serviced, metric) != getattr(local, metric)}
    return {"all_identical": all_identical, "workloads": section}


def run_fleet(workers: int = 16, mix_tasks: int = 96, seed: int = 2024,
              cache_dir: Optional[str] = None,
              service_workers: int = 2,
              workload_names: Optional[Sequence[str]] = None,
              identity_sample: int = 0, identity: bool = True,
              quick: bool = False, out=sys.stderr) -> dict:
    """Run the three fleet phases; returns the ``timing.fleet`` payload.

    *identity_sample* limits the identity A/B to the first N workloads
    (0 = all); *workload_names* restricts the whole benchmark (tests).
    """
    names = list(workload_names) if workload_names else \
        [w.name for w in ALL_WORKLOADS]
    config = CompilerConfig.partial_escape(
        compile_threshold=_FLEET_COMPILE_THRESHOLD,
        osr_threshold=_FLEET_OSR_THRESHOLD)
    service = CompileService(cache_dir=cache_dir,
                             workers=service_workers)
    address = service.start(("127.0.0.1", 0))
    print(f"fleet: {workers} workers, service at "
          f"{format_address(address)}", file=out)
    try:
        # Phase 1: cold start.
        started = time.perf_counter()
        cold_records = _run_phase(address, _round_robin(names, workers),
                                  config, _FLEET_WARMUP)
        cold_seconds = time.perf_counter() - started
        cold_stats = service.stats.snapshot()
        print(f"fleet: cold phase {cold_seconds:.1f}s, "
              f"{cold_stats['requests']} requests, "
              f"{cold_stats['compiles']} compiles", file=out)

        # Phase 2: repeated mix.
        rng = random.Random(seed)
        tasks = [rng.choice(names) for _ in range(mix_tasks)]
        started = time.perf_counter()
        mix_records = _run_phase(address, _round_robin(tasks, workers),
                                 config, _FLEET_WARMUP)
        mix_seconds = time.perf_counter() - started
        mix_stats = _stats_delta(service.stats.snapshot(), cold_stats)
        print(f"fleet: mix phase {mix_seconds:.1f}s, "
              f"{mix_stats['requests']} requests, "
              f"dedup+hit rate "
              f"{mix_stats['dedup_or_hit_rate']:.3f}", file=out)

        # Every worker that ran a workload must agree on its checksum.
        checksums: Dict[str, set] = {}
        for record in cold_records + mix_records:
            checksums.setdefault(record["workload"], set()).add(
                record["checksum"])
        consistent = all(len(values) == 1
                         for values in checksums.values())

        # Phase 3: identity A/B through the live service.
        identity_section = None
        if identity:
            ab_names = names[:identity_sample] if identity_sample \
                else names
            identity_section = _identity_ab(address, ab_names, quick)
            print(f"fleet: identity A/B over {len(ab_names)} workloads "
                  f"-> all_identical="
                  f"{identity_section['all_identical']}", file=out)
    finally:
        service.shutdown()

    payload = {
        "workers": workers,
        "service_workers": service_workers,
        "seed": seed,
        "cold": {
            "wall_clock_seconds": round(cold_seconds, 3),
            "tasks": len(cold_records),
            "latency": _latency_summary(cold_records),
            "tier_up_seconds": {
                r["workload"]: round(r["tier_up_seconds"], 3)
                for r in sorted(cold_records,
                                key=lambda r: r["workload"])},
            "stats": cold_stats,
        },
        "mix": {
            "wall_clock_seconds": round(mix_seconds, 3),
            "tasks": len(mix_records),
            "latency": _latency_summary(mix_records),
            "stats": mix_stats,
            "dedup_or_hit_rate": round(
                mix_stats["dedup_or_hit_rate"], 4),
        },
        "queue_depth_max": service.stats.queue_depth_max,
        "checksums_consistent": consistent,
    }
    if identity_section is not None:
        payload["identity"] = identity_section
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=16,
                        help="concurrent VM worker processes")
    parser.add_argument("--mix-tasks", type=int, default=96,
                        help="tasks in the repeated-mix phase")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--service-workers", type=int, default=2,
                        help="compile worker threads in the service")
    parser.add_argument("--cache-dir", default=None,
                        help="service cache directory (default: "
                             "in-memory only)")
    parser.add_argument("--identity-sample", type=int, default=0,
                        metavar="N",
                        help="limit the identity A/B to N workloads "
                             "(0 = all 27)")
    parser.add_argument("--no-identity", dest="identity",
                        action="store_false", default=True)
    parser.add_argument("--quick", action="store_true",
                        help="fewer identity warm-up iterations")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the fleet payload as JSON")
    args = parser.parse_args(argv)
    payload = run_fleet(
        workers=args.workers, mix_tasks=args.mix_tasks, seed=args.seed,
        cache_dir=args.cache_dir, service_workers=args.service_workers,
        identity_sample=args.identity_sample, identity=args.identity,
        quick=args.quick)
    if args.json:
        import os
        directory = os.path.dirname(args.json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(json.dumps({
        "dedup_or_hit_rate": payload["mix"]["dedup_or_hit_rate"],
        "checksums_consistent": payload["checksums_consistent"],
        "identity_all_identical": payload.get(
            "identity", {}).get("all_identical"),
        "queue_depth_max": payload["queue_depth_max"],
    }, indent=2))
    failed = not payload["checksums_consistent"] or \
        payload["mix"]["dedup_or_hit_rate"] < 0.9 or \
        (args.identity and
         not payload["identity"]["all_identical"])
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
