"""Section 6.2: flow-insensitive Escape Analysis vs Partial Escape
Analysis.

The paper reports that the HotSpot server compiler gains less from its
(flow-insensitive) Escape Analysis than Graal does from PEA:
0.9% vs 2.2% on DaCapo, 7.4% vs 10.4% on ScalaDaCapo, 5.4% vs 8.7% on
SPECjbb2005.  This harness runs every suite under three configurations
(no EA / equi-escape EA / PEA) and prints the same comparison.

Usage::

    python -m repro.benchsuite.comparison [--suite ...] [--quick]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..jit import CompilerConfig
from .harness import Measurement, run_workload
from .reporting import pct, render_table
from .workloads import SUITES, Workload


@dataclass
class ThreeWay:
    workload: Workload
    no_ea: Measurement
    equi: Measurement
    pea: Measurement

    def speedup(self, measurement: Measurement) -> float:
        base = self.no_ea.iterations_per_minute
        if base == 0:
            return 0.0
        return (measurement.iterations_per_minute - base) / base * 100.0

    @property
    def equi_speedup_pct(self) -> float:
        return self.speedup(self.equi)

    @property
    def pea_speedup_pct(self) -> float:
        return self.speedup(self.pea)

    def verify(self):
        assert self.no_ea.checksum == self.equi.checksum == \
            self.pea.checksum, f"{self.workload.name}: checksum mismatch"


def run_three_way(workload: Workload) -> ThreeWay:
    result = ThreeWay(
        workload,
        run_workload(workload, CompilerConfig.no_ea()),
        run_workload(workload, CompilerConfig.equi_escape()),
        run_workload(workload, CompilerConfig.partial_escape()),
    )
    result.verify()
    return result


#: The paper's Section 6.2 numbers: suite -> (server EA %, Graal PEA %).
PAPER_62 = {
    "dacapo": (0.9, 2.2),
    "scaladacapo": (7.4, 10.4),
    "specjbb": (5.4, 8.7),
}


def generate(suites: Sequence[str], quick: bool = False, out=sys.stdout
             ) -> Dict[str, List[ThreeWay]]:
    results: Dict[str, List[ThreeWay]] = {}
    for suite_name in suites:
        workloads = SUITES[suite_name]
        if quick:
            for workload in workloads:
                workload.warmup_iterations = min(
                    workload.warmup_iterations, 25)
        three_ways = [run_three_way(w) for w in workloads]
        results[suite_name] = three_ways
        rows = [[t.workload.name, pct(t.equi_speedup_pct),
                 pct(t.pea_speedup_pct)] for t in three_ways]
        equi_avg = sum(t.equi_speedup_pct for t in three_ways) \
            / len(three_ways)
        pea_avg = sum(t.pea_speedup_pct for t in three_ways) \
            / len(three_ways)
        paper_equi, paper_pea = PAPER_62[suite_name]
        rows.append(["average", pct(equi_avg), pct(pea_avg)])
        rows.append(["(paper)", pct(paper_equi), pct(paper_pea)])
        print(f"\n== {suite_name}: speedup over no-EA ==", file=out)
        print(render_table(["benchmark", "equi-escape EA", "PEA"], rows),
              file=out)
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES) + ["all"],
                        default="all")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    generate(suites, quick=args.quick)


if __name__ == "__main__":
    main()
