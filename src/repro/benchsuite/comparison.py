"""Section 6.2: flow-insensitive Escape Analysis vs Partial Escape
Analysis.

The paper reports that the HotSpot server compiler gains less from its
(flow-insensitive) Escape Analysis than Graal does from PEA:
0.9% vs 2.2% on DaCapo, 7.4% vs 10.4% on ScalaDaCapo, 5.4% vs 8.7% on
SPECjbb2005.  This harness runs every suite under three configurations
(no EA / equi-escape EA / PEA) and prints the same comparison.

Usage::

    python -m repro.benchsuite.comparison [--suite ...] [--quick]
"""

from __future__ import annotations

import argparse
import cProfile
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..jit import CompilerConfig
from .harness import Measurement, run_workload
from .profiling import print_profile, profiled
from .reporting import pct, render_table
from .workloads import SUITES, Workload


@dataclass
class ThreeWay:
    workload: Workload
    no_ea: Measurement
    equi: Measurement
    pea: Measurement

    def speedup(self, measurement: Measurement) -> float:
        base = self.no_ea.iterations_per_minute
        if base == 0:
            return 0.0
        return (measurement.iterations_per_minute - base) / base * 100.0

    @property
    def equi_speedup_pct(self) -> float:
        return self.speedup(self.equi)

    @property
    def pea_speedup_pct(self) -> float:
        return self.speedup(self.pea)

    def verify(self):
        assert self.no_ea.checksum == self.equi.checksum == \
            self.pea.checksum, f"{self.workload.name}: checksum mismatch"


def run_three_way(workload: Workload, backend: str = "plan",
                  histogram: Optional[Dict[str, int]] = None
                  ) -> ThreeWay:
    collect = histogram is not None
    result = ThreeWay(
        workload,
        run_workload(workload, CompilerConfig.no_ea(
            execution_backend=backend, collect_node_histogram=collect),
            histogram),
        run_workload(workload, CompilerConfig.equi_escape(
            execution_backend=backend, collect_node_histogram=collect),
            histogram),
        run_workload(workload, CompilerConfig.partial_escape(
            execution_backend=backend, collect_node_histogram=collect),
            histogram),
    )
    result.verify()
    return result


def _three_way_worker(item) -> ThreeWay:
    """Module-level worker so ProcessPoolExecutor can pickle it."""
    workload, backend = item
    return run_three_way(workload, backend)


#: The paper's Section 6.2 numbers: suite -> (server EA %, Graal PEA %).
PAPER_62 = {
    "dacapo": (0.9, 2.2),
    "scaladacapo": (7.4, 10.4),
    "specjbb": (5.4, 8.7),
}


def generate(suites: Sequence[str], quick: bool = False, out=sys.stdout,
             jobs: int = 1, backend: str = "plan",
             profile: bool = False) -> Dict[str, List[ThreeWay]]:
    if profile:
        jobs = 1  # cProfile + histogram need everything in-process
    histogram: Optional[Dict[str, int]] = {} if profile else None
    profiler = cProfile.Profile() if profile else None
    results: Dict[str, List[ThreeWay]] = {}
    for suite_name in suites:
        workloads = SUITES[suite_name]
        if quick:
            for workload in workloads:
                workload.warmup_iterations = min(
                    workload.warmup_iterations, 25)
        with profiled(profiler):
            if jobs > 1:
                from concurrent.futures import ProcessPoolExecutor
                items = [(w, backend) for w in workloads]
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    three_ways = list(pool.map(_three_way_worker, items))
            else:
                three_ways = [run_three_way(w, backend, histogram)
                              for w in workloads]
        results[suite_name] = three_ways
        rows = [[t.workload.name, pct(t.equi_speedup_pct),
                 pct(t.pea_speedup_pct)] for t in three_ways]
        equi_avg = sum(t.equi_speedup_pct for t in three_ways) \
            / len(three_ways)
        pea_avg = sum(t.pea_speedup_pct for t in three_ways) \
            / len(three_ways)
        paper_equi, paper_pea = PAPER_62[suite_name]
        rows.append(["average", pct(equi_avg), pct(pea_avg)])
        rows.append(["(paper)", pct(paper_equi), pct(paper_pea)])
        print(f"\n== {suite_name}: speedup over no-EA ==", file=out)
        print(render_table(["benchmark", "equi-escape EA", "PEA"], rows),
              file=out)
    if profile:
        print_profile(profiler, histogram, out=out)
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES) + ["all"],
                        default="all")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run workloads in N parallel processes")
    parser.add_argument("--backend", choices=["plan", "legacy"],
                        default="plan",
                        help="compiled-code execution backend")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile top-20 + per-node-kind execution "
                             "histogram (forces --jobs 1)")
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    generate(suites, quick=args.quick, jobs=args.jobs,
             backend=args.backend, profile=args.profile)


if __name__ == "__main__":
    main()
