"""Benchmark suite: synthetic analogs of DaCapo, ScalaDaCapo and
SPECjbb2005, the measurement harness and the Table 1 / Section 6.2
report generators."""

from .harness import (SIMULATED_CYCLES_PER_MINUTE, Comparison,
                      Measurement, compare_workload, run_suite,
                      run_workload)
from .workloads import (ALL_WORKLOADS, DACAPO, SCALADACAPO, SPECJBB_ALL,
                        SUITES, PaperRow, Workload, by_name)

__all__ = [
    "SIMULATED_CYCLES_PER_MINUTE", "Comparison", "Measurement",
    "compare_workload", "run_suite", "run_workload", "ALL_WORKLOADS",
    "DACAPO", "SCALADACAPO", "SPECJBB_ALL", "SUITES", "PaperRow",
    "Workload", "by_name",
]
