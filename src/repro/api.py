"""The stable, user-facing facade.

Everything a typical embedder needs lives here and keeps working as the
internals move: pass MJ source (or an already-built
:class:`~repro.bytecode.classfile.Program`) to :func:`compile`, get a
:class:`CompiledProgram` wired to a tiered VM, and call into it.  The
deeper modules (``repro.jit``, ``repro.frontend``, ``repro.pea``, ...)
remain importable for research code that wants the internals, but their
layout is not a stability contract — this module is.

Quickstart::

    from repro import api

    prog = api.compile(SOURCE)                  # PEA config by default
    print(prog.run("Main.entry", 100))          # tiered execution
    print(prog.heap_stats().allocations)

    # one-shot
    print(api.run(SOURCE, "Main.entry", 100))

    # observe VM events through the typed listener protocol
    class Tracer(api.VMListener):
        def on_osr_compile(self, method, bci, result):
            print("OSR", method.qualified_name, "@", bci)
    prog.vm.add_listener(Tracer())
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .bytecode.classfile import Program
from .bytecode.heap import HeapStats
from .jit import (AutoTierPolicy, CompilationCache, CompilationResult,
                  CompileService, CompilerConfig, EscapeAnalysisKind,
                  ServiceClient, TierRequest, TierSpec, VM, VMListener,
                  default_cache_dir)
from .lang import compile_source
from .runtime.gcsim import GCSim, GCStats

__all__ = ["AutoTierPolicy", "CompilationCache", "CompilationResult",
           "CompileService", "CompiledProgram", "CompilerConfig",
           "EscapeAnalysisKind", "GCSim", "GCStats", "ServiceClient",
           "TierRequest", "TierSpec", "VM", "VMListener", "compile",
           "compile_source", "default_cache_dir", "run"]


class CompiledProgram:
    """A program plus the tiered VM that runs it.

    Thin by design: :attr:`program`, :attr:`config` and :attr:`vm` are
    public, so anything not wrapped here stays one attribute away."""

    def __init__(self, program: Program, config: CompilerConfig,
                 cache: Optional[CompilationCache] = None):
        self.program = program
        self.config = config
        self.vm = VM(program, config, cache=cache)

    def run(self, entry: str, *args) -> Any:
        """Invoke ``"Class.method"`` through the tiers (interpreter
        first; compiled — including OSR'd loops — once hot)."""
        return self.vm.call(entry, *args)

    def warm_up(self, entry: str, *args, calls: int = 1,
                reset_statics: bool = True) -> None:
        """Run *entry* repeatedly so it gets profiled and compiled."""
        for _ in range(calls):
            self.vm.call(entry, *args)
            if reset_statics:
                self.program.reset_statics()

    def compile_method(self, qualified: str) -> CompilationResult:
        """Force compilation of ``"Class.method"`` right now."""
        return self.vm.compile_now(qualified)

    def heap_stats(self) -> HeapStats:
        return self.vm.heap_snapshot()

    def gc_stats(self) -> GCStats:
        """Cumulative simulated-collector counters (minor collections,
        pause cycles, promoted bytes — see
        :class:`repro.runtime.gcsim.GCStats`).  Per-collection events
        arrive through :meth:`VMListener.on_gc`."""
        return self.vm.gc_snapshot()

    def add_listener(self, listener: VMListener) -> VMListener:
        """Register a typed :class:`VMListener` on the VM."""
        return self.vm.add_listener(listener)


def compile(source_or_program: Union[str, Program],  # noqa: A001
            config: Optional[CompilerConfig] = None,
            cache: Optional[CompilationCache] = None,
            natives=None) -> CompiledProgram:
    """Build a :class:`CompiledProgram` from MJ source text or an
    existing :class:`Program`.

    *config* defaults to the paper's
    ``CompilerConfig.partial_escape()``; *cache* (optional) shares
    compiled graphs across programs and processes."""
    if isinstance(source_or_program, Program):
        program = source_or_program
    else:
        program = compile_source(source_or_program, natives=natives)
    return CompiledProgram(program,
                           config or CompilerConfig.partial_escape(),
                           cache=cache)


def run(source_or_program: Union[str, Program], entry: str, *args,
        config: Optional[CompilerConfig] = None,
        cache: Optional[CompilationCache] = None,
        warmup: int = 0) -> Any:
    """One-shot: compile, optionally warm up, and invoke *entry*."""
    prog = compile(source_or_program, config=config, cache=cache)
    if warmup:
        prog.warm_up(entry, *args, calls=warmup)
    return prog.run(entry, *args)
