"""Runtime object model and allocation/lock statistics.

Both execution engines (the bytecode interpreter and the optimized-graph
interpreter) allocate through the same :class:`Heap` so that Table 1's
"MB / iteration" and "MAllocs / iteration" metrics are counted identically
in every configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .classfile import Program


class VMError(Exception):
    """A runtime trap: null dereference, bad cast, division by zero, ..."""


class NullPointerError(VMError):
    pass


class ArrayIndexError(VMError):
    pass


class ClassCastError(VMError):
    pass


class ArithmeticTrap(VMError):
    pass


class IllegalMonitorState(VMError):
    pass


class Obj:
    """A heap-allocated object instance."""

    __slots__ = ("class_name", "fields", "lock_depth", "obj_id")

    def __init__(self, class_name: str, fields: Dict[str, Any],
                 obj_id: int):
        self.class_name = class_name
        self.fields = fields
        self.lock_depth = 0
        self.obj_id = obj_id

    def __repr__(self):
        return f"<{self.class_name}#{self.obj_id}>"


class Arr:
    """A heap-allocated array."""

    __slots__ = ("elem_type", "elements", "lock_depth", "obj_id")

    def __init__(self, elem_type: str, length: int, obj_id: int):
        self.elem_type = elem_type
        self.elements: List[Any] = (
            [0] * length if elem_type in ("int", "boolean")
            else [None] * length)
        self.lock_depth = 0
        self.obj_id = obj_id

    def __len__(self):
        return len(self.elements)

    def __repr__(self):
        return f"<{self.elem_type}[{len(self.elements)}]#{self.obj_id}>"


@dataclass
class HeapStats:
    """Counters that feed the paper's Table 1 metrics.

    Stack/zone allocations (see
    :class:`repro.opt.stack_allocation.StackAllocationPhase`) are
    tracked separately: they are not garbage-collected heap traffic.
    """

    allocations: int = 0
    allocated_bytes: int = 0
    monitor_enters: int = 0
    monitor_exits: int = 0
    stack_allocations: int = 0
    stack_allocated_bytes: int = 0

    def copy(self) -> "HeapStats":
        return HeapStats(self.allocations, self.allocated_bytes,
                         self.monitor_enters, self.monitor_exits,
                         self.stack_allocations,
                         self.stack_allocated_bytes)

    def delta(self, earlier: "HeapStats") -> "HeapStats":
        """Counters accumulated since *earlier* was snapshotted."""
        return HeapStats(
            self.allocations - earlier.allocations,
            self.allocated_bytes - earlier.allocated_bytes,
            self.monitor_enters - earlier.monitor_enters,
            self.monitor_exits - earlier.monitor_exits,
            self.stack_allocations - earlier.stack_allocations,
            self.stack_allocated_bytes - earlier.stack_allocated_bytes)

    @property
    def monitor_operations(self) -> int:
        return self.monitor_enters + self.monitor_exits

    def __add__(self, other: "HeapStats") -> "HeapStats":
        return HeapStats(
            self.allocations + other.allocations,
            self.allocated_bytes + other.allocated_bytes,
            self.monitor_enters + other.monitor_enters,
            self.monitor_exits + other.monitor_exits,
            self.stack_allocations + other.stack_allocations,
            self.stack_allocated_bytes + other.stack_allocated_bytes)


class Heap:
    """Allocator + monitor bookkeeping shared by all execution engines.

    Python's GC reclaims the actual unreachable objects; GC *pressure*
    is simulated by the generational collector in
    :mod:`repro.runtime.gcsim`, which every heap (non-stack) allocation
    feeds through :meth:`GCSim.on_allocate`.  Because the bytecode
    interpreter and all three compiled backends allocate through this
    one class, minor-collection counts and pause cycles are
    bit-identical across backends.
    """

    def __init__(self, program: Program, gc=None):
        self.program = program
        self.stats = HeapStats()
        if gc is None:
            # Imported lazily: repro.runtime pulls in the IR package,
            # which in turn imports this module.
            from ..runtime.gcsim import GCSim
            gc = GCSim()
        self.gc = gc
        self._next_id = 1

    # -- allocation -----------------------------------------------------

    def new_instance(self, class_name: str, on_stack: bool = False
                     ) -> Obj:
        jclass = self.program.lookup_class(class_name)  # raises if unknown
        fields = dict(self.program.instance_field_defaults(jclass.name))
        obj = Obj(class_name, fields, self._next_id)
        self._next_id += 1
        size = self.program.instance_size(class_name)
        if on_stack:
            self.stats.stack_allocations += 1
            self.stats.stack_allocated_bytes += size
        else:
            self.stats.allocations += 1
            self.stats.allocated_bytes += size
            self.gc.on_allocate(size)
        return obj

    def new_array(self, elem_type: str, length: int,
                  on_stack: bool = False) -> Arr:
        if length < 0:
            raise VMError(f"negative array size {length}")
        arr = Arr(elem_type, length, self._next_id)
        self._next_id += 1
        size = self.program.array_size(length)
        if on_stack:
            self.stats.stack_allocations += 1
            self.stats.stack_allocated_bytes += size
        else:
            self.stats.allocations += 1
            self.stats.allocated_bytes += size
            self.gc.on_allocate(size)
        return arr

    # -- field access -----------------------------------------------------

    def get_field(self, obj, field_name: str):
        if obj is None:
            raise NullPointerError(f"getfield {field_name} on null")
        try:
            return obj.fields[field_name]
        except KeyError:
            raise VMError(
                f"no field {field_name} on {obj.class_name}") from None

    def put_field(self, obj, field_name: str, value):
        if obj is None:
            raise NullPointerError(f"putfield {field_name} on null")
        if field_name not in obj.fields:
            raise VMError(f"no field {field_name} on {obj.class_name}")
        obj.fields[field_name] = value

    # -- arrays ---------------------------------------------------------------

    def array_load(self, arr, index):
        if arr is None:
            raise NullPointerError("aload on null")
        if not 0 <= index < len(arr.elements):
            raise ArrayIndexError(f"index {index} len {len(arr.elements)}")
        return arr.elements[index]

    def array_store(self, arr, index, value):
        if arr is None:
            raise NullPointerError("astore on null")
        if not 0 <= index < len(arr.elements):
            raise ArrayIndexError(f"index {index} len {len(arr.elements)}")
        arr.elements[index] = value

    def array_length(self, arr):
        if arr is None:
            raise NullPointerError("arraylength on null")
        return len(arr.elements)

    # -- monitors --------------------------------------------------------------

    def monitor_enter(self, obj):
        if obj is None:
            raise NullPointerError("monitorenter on null")
        obj.lock_depth += 1
        self.stats.monitor_enters += 1

    def monitor_exit(self, obj):
        if obj is None:
            raise NullPointerError("monitorexit on null")
        if obj.lock_depth <= 0:
            raise IllegalMonitorState(f"monitorexit on unlocked {obj!r}")
        obj.lock_depth -= 1
        self.stats.monitor_exits += 1

    # -- type tests --------------------------------------------------------------

    def instance_of(self, obj, class_name: str) -> int:
        if obj is None:
            return 0
        if isinstance(obj, Arr):
            return 1 if class_name == "Object" else 0
        if isinstance(obj, str):
            # String literals are interned constants backed by Python str.
            return 1 if class_name in ("String", "Object") else 0
        return 1 if self.program.is_subclass_of(obj.class_name,
                                                class_name) else 0

    def check_cast(self, obj, class_name: str):
        if obj is None:
            return None
        if not self.instance_of(obj, class_name):
            raise ClassCastError(
                f"cannot cast {obj!r} to {class_name}")
        return obj
