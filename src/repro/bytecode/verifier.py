"""Bytecode verifier.

Performs the structural checks a JVM verifier would: every branch target is
in range, control cannot fall off the end of the code, the operand stack
has a consistent depth at every instruction regardless of the path taken,
local slots are in range, and all symbolic references resolve.  The graph
builder relies on these invariants (notably the consistent stack depth at
merge points, which is what lets it create one Phi per slot).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .classfile import JMethod, Program, ResolutionError
from .opcodes import Op, OperandKind, info


class VerificationError(Exception):
    """The method's bytecode violates a structural invariant."""

    def __init__(self, method: JMethod, message: str):
        super().__init__(f"{method.qualified_name}: {message}")
        self.method = method


def verify_method(program: Program, method: JMethod) -> None:
    """Verify one method; raises :class:`VerificationError` on failure."""
    if method.is_native:
        if method.code:
            raise VerificationError(method, "native method has code")
        return
    code = method.code
    if not code:
        raise VerificationError(method, "empty code")

    # Pass 1: operands are well-formed and targets in range.
    for bci, insn in enumerate(code):
        kind = info(insn.op).operand
        if kind is OperandKind.TARGET:
            if not 0 <= insn.operand < len(code):
                raise VerificationError(
                    method, f"bci {bci}: branch target {insn.operand} "
                    "out of range")
        elif kind is OperandKind.LOCAL:
            if not 0 <= insn.operand < max(method.max_locals, 1):
                raise VerificationError(
                    method, f"bci {bci}: local slot {insn.operand} out of "
                    f"range (max_locals={method.max_locals})")
        elif kind is OperandKind.CLASS:
            try:
                if insn.operand not in ("int", "boolean"):
                    program.lookup_class(insn.operand)
            except ResolutionError as exc:
                raise VerificationError(method, f"bci {bci}: {exc}")
        elif kind is OperandKind.FIELD:
            ref = insn.operand
            try:
                jfield = program.resolve_field(ref.class_name,
                                               ref.field_name)
            except ResolutionError as exc:
                raise VerificationError(method, f"bci {bci}: {exc}")
            wants_static = insn.op in (Op.GETSTATIC, Op.PUTSTATIC)
            if jfield.is_static != wants_static:
                raise VerificationError(
                    method, f"bci {bci}: static-ness mismatch on {ref}")
        elif kind is OperandKind.METHOD:
            ref = insn.operand
            try:
                callee = program.resolve_method(ref.class_name,
                                                ref.method_name)
            except ResolutionError as exc:
                raise VerificationError(method, f"bci {bci}: {exc}")
            if callee.arg_count != ref.arg_count:
                raise VerificationError(
                    method, f"bci {bci}: {ref} resolves to a method with "
                    f"{callee.arg_count} parameters")
            if (insn.op is Op.INVOKESTATIC) != callee.is_static:
                raise VerificationError(
                    method, f"bci {bci}: static-ness mismatch on {ref}")

    # Pass 2: abstract interpretation of stack depth.
    depth_at: Dict[int, int] = {0: 0}
    worklist: List[int] = [0]
    while worklist:
        bci = worklist.pop()
        depth = depth_at[bci]
        insn = code[bci]
        op = insn.op
        op_info = info(op)
        if op in (Op.INVOKESTATIC, Op.INVOKEVIRTUAL, Op.INVOKESPECIAL):
            callee = program.resolve_method(insn.operand.class_name,
                                            insn.operand.method_name)
            pops = insn.operand.arg_count
            pushes = 0 if callee.return_type == "void" else 1
        else:
            pops, pushes = op_info.pops, op_info.pushes
        if depth < pops:
            raise VerificationError(
                method, f"bci {bci}: stack underflow "
                f"(depth {depth}, {op.value} pops {pops})")
        new_depth = depth - pops + pushes

        successors: List[int] = []
        if op_info.is_branch:
            successors.append(insn.operand)
            if op is not Op.GOTO:
                successors.append(bci + 1)
        elif op_info.is_terminator:
            if op is Op.RETURN_VALUE and method.return_type == "void":
                raise VerificationError(
                    method, f"bci {bci}: value return in void method")
            if op is Op.RETURN and method.return_type != "void":
                raise VerificationError(
                    method, f"bci {bci}: void return in non-void method")
        else:
            successors.append(bci + 1)

        for succ in successors:
            if succ >= len(code):
                raise VerificationError(
                    method, f"bci {bci}: control falls off the end")
            if succ in depth_at:
                if depth_at[succ] != new_depth:
                    raise VerificationError(
                        method, f"bci {succ}: inconsistent stack depth "
                        f"({depth_at[succ]} vs {new_depth})")
            else:
                depth_at[succ] = new_depth
                worklist.append(succ)

    # Pass 3: the last reachable instruction chain must terminate.
    last = code[-1]
    if not (last.is_terminator and not last.is_branch) \
            and last.op is not Op.GOTO:
        # Falling off the end is only OK if the final bci is unreachable.
        if len(code) - 1 in depth_at:
            raise VerificationError(
                method, "control can fall off the end of the code")


def verify_program(program: Program) -> None:
    """Verify every method of every class in the program."""
    for method in program.all_methods():
        verify_method(program, method)
