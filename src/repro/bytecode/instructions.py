"""Instruction representation and reference types for the bytecode."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .opcodes import Op, OperandKind, info


@dataclass(frozen=True)
class FieldRef:
    """A symbolic reference to a field: ``ClassName.fieldName``."""

    class_name: str
    field_name: str

    def __str__(self):
        return f"{self.class_name}.{self.field_name}"


@dataclass(frozen=True)
class MethodRef:
    """A symbolic reference to a method.

    ``arg_count`` includes the receiver for virtual/special calls so the
    interpreter and the graph builder know how many stack slots to pop
    without resolving the callee first.
    """

    class_name: str
    method_name: str
    arg_count: int

    def __str__(self):
        return f"{self.class_name}.{self.method_name}/{self.arg_count}"


@dataclass
class Instruction:
    """One bytecode instruction.

    ``operand`` is interpreted according to the opcode's
    :class:`~repro.bytecode.opcodes.OperandKind`:

    - ``CONST``: a literal (int, bool, str or ``None``)
    - ``LOCAL``: a local slot index (int)
    - ``TARGET``: a branch target (instruction index, int)
    - ``CLASS``: a class name (str)
    - ``FIELD``: a :class:`FieldRef`
    - ``METHOD``: a :class:`MethodRef`
    """

    op: Op
    operand: Any = None

    def __post_init__(self):
        kind = info(self.op).operand
        if kind is OperandKind.NONE and self.operand is not None:
            raise ValueError(f"{self.op.value} takes no operand")
        if kind is OperandKind.FIELD and not isinstance(self.operand,
                                                        FieldRef):
            raise TypeError(f"{self.op.value} needs a FieldRef operand")
        if kind is OperandKind.METHOD and not isinstance(self.operand,
                                                         MethodRef):
            raise TypeError(f"{self.op.value} needs a MethodRef operand")
        if kind in (OperandKind.LOCAL, OperandKind.TARGET):
            if not isinstance(self.operand, int) or isinstance(
                    self.operand, bool):
                raise TypeError(
                    f"{self.op.value} needs an int operand, "
                    f"got {self.operand!r}")

    @property
    def is_branch(self):
        return info(self.op).is_branch

    @property
    def is_terminator(self):
        return info(self.op).is_terminator

    def __str__(self):
        if self.operand is None and info(self.op).operand is OperandKind.NONE:
            return self.op.value
        if info(self.op).operand is OperandKind.CONST:
            return f"{self.op.value} {self.operand!r}"
        return f"{self.op.value} {self.operand}"


def const(value) -> Instruction:
    """Shorthand for a CONST instruction."""
    return Instruction(Op.CONST, value)


def load(slot: int) -> Instruction:
    """Shorthand for a LOAD instruction."""
    return Instruction(Op.LOAD, slot)


def store(slot: int) -> Instruction:
    """Shorthand for a STORE instruction."""
    return Instruction(Op.STORE, slot)


def getfield(class_name: str, field_name: str) -> Instruction:
    """Shorthand for a GETFIELD instruction."""
    return Instruction(Op.GETFIELD, FieldRef(class_name, field_name))


def putfield(class_name: str, field_name: str) -> Instruction:
    """Shorthand for a PUTFIELD instruction."""
    return Instruction(Op.PUTFIELD, FieldRef(class_name, field_name))


def invokestatic(class_name: str, method_name: str,
                 arg_count: int) -> Instruction:
    """Shorthand for an INVOKESTATIC instruction."""
    return Instruction(Op.INVOKESTATIC,
                       MethodRef(class_name, method_name, arg_count))


def invokevirtual(class_name: str, method_name: str,
                  arg_count: int) -> Instruction:
    """Shorthand for an INVOKEVIRTUAL instruction (receiver included)."""
    return Instruction(Op.INVOKEVIRTUAL,
                       MethodRef(class_name, method_name, arg_count))
