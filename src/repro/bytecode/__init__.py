"""JVM-like bytecode substrate: class model, assembler, verifier,
interpreter, heap and statistics.

This package is the "HotSpot" half of the reproduction — everything the
compiler in :mod:`repro.ir`/:mod:`repro.pea` sits on top of.
"""

from .assembler import AssemblyError, BytecodeBuilder, Label
from .asmtext import AsmSyntaxError, assemble
from .classfile import (ARRAY_HEADER_BYTES, ELEMENT_BYTES, FIELD_BYTES,
                        OBJECT_CLASS, OBJECT_HEADER_BYTES, JClass, JField,
                        JMethod, Program, ResolutionError)
from .disassembler import (disassemble_class, disassemble_method,
                           disassemble_program)
from .heap import (Arr, ArithmeticTrap, ArrayIndexError, ClassCastError,
                   Heap, HeapStats, IllegalMonitorState, NullPointerError,
                   Obj, VMError)
from .instructions import FieldRef, Instruction, MethodRef
from .interpreter import (BudgetExceeded, Interpreter, InterpreterStats,
                          Profile, ThrownException, java_div, java_rem,
                          java_shl, java_shr, wrap_int)
from .opcodes import (CONDITIONAL_BRANCHES, INT_COMPARE_BRANCHES, INVOKES,
                      NULL_BRANCHES, REF_COMPARE_BRANCHES, Op, OpInfo,
                      OperandKind, info)
from .verifier import VerificationError, verify_method, verify_program

__all__ = [
    "AssemblyError", "BytecodeBuilder", "Label",
    "AsmSyntaxError", "assemble",
    "ARRAY_HEADER_BYTES", "ELEMENT_BYTES", "FIELD_BYTES", "OBJECT_CLASS",
    "OBJECT_HEADER_BYTES", "JClass", "JField", "JMethod", "Program",
    "ResolutionError",
    "disassemble_class", "disassemble_method", "disassemble_program",
    "Arr", "ArithmeticTrap", "ArrayIndexError", "ClassCastError", "Heap",
    "HeapStats", "IllegalMonitorState", "NullPointerError", "Obj",
    "VMError",
    "FieldRef", "Instruction", "MethodRef",
    "BudgetExceeded", "Interpreter", "InterpreterStats", "Profile",
    "ThrownException", "java_div", "java_rem", "java_shl", "java_shr",
    "wrap_int",
    "CONDITIONAL_BRANCHES", "INT_COMPARE_BRANCHES", "INVOKES",
    "NULL_BRANCHES", "REF_COMPARE_BRANCHES", "Op", "OpInfo", "OperandKind",
    "info",
    "VerificationError", "verify_method", "verify_program",
]
