"""The bytecode interpreter — the stand-in for the HotSpot interpreter.

This is the *reference* execution engine: it makes no assumptions, executes
every allocation and monitor operation for real, and is the target of
deoptimization.  :meth:`Interpreter.execute_frame` can start execution at an
arbitrary bytecode index with given locals/stack/locked objects, which is
exactly what a deoptimizing compiled frame needs (Section 5.5 of the paper).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, List, Optional

from .classfile import JMethod, Program
from .heap import (ArithmeticTrap, Heap, IllegalMonitorState,
                   NullPointerError, VMError)
from .instructions import Instruction
from .opcodes import Op

_INT_MASK = (1 << 64) - 1
_INT_SIGN = 1 << 63
_INT_WRAP = 1 << 64

MAX_CALL_DEPTH = 256


def wrap_int(value: int) -> int:
    """Wrap a Python int to 64-bit two's-complement."""
    value &= _INT_MASK
    return value - (1 << 64) if value & _INT_SIGN else value


def java_div(a: int, b: int) -> int:
    """Java integer division (truncates toward zero)."""
    if b == 0:
        raise ArithmeticTrap("division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return wrap_int(quotient)


def java_rem(a: int, b: int) -> int:
    """Java integer remainder (sign follows the dividend)."""
    if b == 0:
        raise ArithmeticTrap("remainder by zero")
    return wrap_int(a - java_div(a, b) * b)


def java_shr(a: int, b: int) -> int:
    """Arithmetic shift right with Java's shift-count masking."""
    return wrap_int(a >> (b & 63))


def java_shl(a: int, b: int) -> int:
    return wrap_int(a << (b & 63))


#: Sentinel returned by an OSR handler that declines to tier up (the
#: loop keeps interpreting).  Distinct from ``None``, which is a legal
#: method result.
NO_OSR = object()


class BudgetExceeded(VMError):
    """The step budget ran out — an (assumed) infinite loop."""


class ThrownException(VMError):
    """A user-level THROW; carries the thrown object to the top caller."""

    def __init__(self, value):
        super().__init__(f"uncaught exception: {value!r}")
        self.value = value


@dataclass
class InterpreterStats:
    """Execution-shape counters (distinct from heap counters)."""

    steps: int = 0
    invocations: int = 0
    max_depth: int = 0


class Profile:
    """Branch and invocation profile collected while interpreting.

    The JIT uses invocation counts for compile triggers and branch counts
    to order If successors and to speculate on never-taken branches.
    Keys: methods for invocations; ``(method, bci)`` for branches.
    """

    def __init__(self):
        self.invocations = {}
        self.branch_taken = {}
        self.branch_not_taken = {}
        #: (method, bci) -> {receiver class name: count} at invokevirtual.
        self.receiver_types = {}
        #: (method, loop-header bci) -> backedge executions; the second
        #: axis of the tiering policy (on-stack replacement).
        self.backedges = {}
        #: (method, loop-header bci) -> completed OSR transfers.  A loop
        #: that has tiered up runs its iterations in compiled code, out
        #: of the interpreter's sight, so its branch profile goes stale
        #: from that point on (see :meth:`loop_has_osr`).
        self.osr_entries = {}

    def record_invocation(self, method: JMethod):
        self.invocations[method] = self.invocations.get(method, 0) + 1

    def record_backedge(self, method: JMethod, bci: int) -> int:
        """Count one backedge execution targeting loop header *bci*;
        returns the updated count."""
        key = (method, bci)
        count = self.backedges.get(key, 0) + 1
        self.backedges[key] = count
        return count

    def backedge_count(self, method: JMethod, bci: int) -> int:
        return self.backedges.get((method, bci), 0)

    def record_osr_entry(self, method: JMethod, bci: int):
        key = (method, bci)
        self.osr_entries[key] = self.osr_entries.get(key, 0) + 1

    def loop_has_osr(self, method: JMethod, bci: int) -> bool:
        """Whether the loop headed at *bci* ever tiered up through OSR.

        Decision-level query for the compiler: once a loop runs inside
        compiled OSR code, the interpreter stops observing its exits, so
        an exit branch that looks never-taken must not be speculated on
        (it would deoptimize deterministically at the first exit)."""
        return (method, bci) in self.osr_entries

    def record_branch(self, method: JMethod, bci: int, taken: bool):
        table = self.branch_taken if taken else self.branch_not_taken
        key = (method, bci)
        table[key] = table.get(key, 0) + 1

    def invocation_count(self, method: JMethod) -> int:
        return self.invocations.get(method, 0)

    def record_receiver(self, method: JMethod, bci: int,
                        class_name: str):
        table = self.receiver_types.setdefault((method, bci), {})
        table[class_name] = table.get(class_name, 0) + 1

    def monomorphic_receiver(self, method: JMethod, bci: int,
                             min_samples: int):
        """The single receiver class seen at this call site, or None if
        polymorphic / under-sampled."""
        table = self.receiver_types.get((method, bci))
        if not table or len(table) != 1:
            return None
        ((class_name, count),) = table.items()
        return class_name if count >= min_samples else None

    def branch_counts(self, method: JMethod, bci: int):
        """``(taken, not_taken)`` sample counts for one branch site."""
        key = (method, bci)
        return (self.branch_taken.get(key, 0),
                self.branch_not_taken.get(key, 0))

    def branch_outcome(self, method: JMethod, bci: int,
                       min_samples: int):
        """The branch-speculation decision for one site: ``True`` when
        the branch was always taken, ``False`` when never taken, else
        ``None`` (under-sampled or both sides seen).

        The compiler speculates on branches only through this
        decision-level query (plus :meth:`taken_probability` for
        display-only edge probabilities), so the compilation cache can
        record the *decisions* a compilation consumed rather than raw
        counters — decisions stay stable as counts grow, raw counters do
        not."""
        taken, not_taken = self.branch_counts(method, bci)
        if taken + not_taken < min_samples:
            return None
        if taken == 0:
            return False
        if not_taken == 0:
            return True
        return None

    def taken_probability(self, method: JMethod, bci: int) -> float:
        taken, not_taken = self.branch_counts(method, bci)
        total = taken + not_taken
        return 0.5 if total == 0 else taken / total

    def snapshot(self) -> dict:
        """A process-portable copy of the profiling state, keyed by
        qualified method names instead of :class:`JMethod` objects.
        Used to ship profiles to the compile service and by the
        benchmark harness's warm-up records; restored against any
        program with the same declarations by :meth:`restore`."""
        return {
            "invocations": {m.qualified_name: n
                            for m, n in self.invocations.items()},
            "branch_taken": [[m.qualified_name, bci, n]
                             for (m, bci), n in
                             self.branch_taken.items()],
            "branch_not_taken": [[m.qualified_name, bci, n]
                                 for (m, bci), n in
                                 self.branch_not_taken.items()],
            "receiver_types": [[m.qualified_name, bci, dict(classes)]
                               for (m, bci), classes in
                               self.receiver_types.items()],
            "backedges": [[m.qualified_name, bci, n]
                          for (m, bci), n in self.backedges.items()],
            "osr_entries": [[m.qualified_name, bci, n]
                            for (m, bci), n in self.osr_entries.items()],
        }

    def restore(self, program: Program, snapshot: dict) -> None:
        """Install :meth:`snapshot` state, resolving method names in
        *program*.  Raises ``KeyError`` for names it cannot resolve
        (the snapshot belongs to a different program)."""
        method = program.method
        self.invocations = {method(q): n for q, n in
                            snapshot["invocations"].items()}
        self.branch_taken = {(method(q), bci): n for q, bci, n in
                             snapshot["branch_taken"]}
        self.branch_not_taken = {(method(q), bci): n for q, bci, n in
                                 snapshot["branch_not_taken"]}
        self.receiver_types = {(method(q), bci): dict(classes)
                               for q, bci, classes in
                               snapshot["receiver_types"]}
        self.backedges = {(method(q), bci): n for q, bci, n in
                          snapshot["backedges"]}
        self.osr_entries = {(method(q), bci): n for q, bci, n in
                            snapshot["osr_entries"]}


class Interpreter:
    """Executes bytecode against a :class:`Heap`."""

    def __init__(self, program: Program, heap: Optional[Heap] = None,
                 profile: Optional[Profile] = None,
                 step_budget: int = 200_000_000):
        self.program = program
        self.heap = heap if heap is not None else Heap(program)
        self.profile = profile
        self.stats = InterpreterStats()
        self.step_budget = step_budget
        #: Optional tiered-VM hook: when set, calls dispatch through it
        #: (``dispatcher(method, args) -> value``) so hot callees run
        #: compiled even when the caller is interpreted.
        self.dispatcher = None
        #: Optional on-stack replacement hook, called at loop backedges
        #: (empty operand stack) as ``osr_handler(method, target_bci,
        #: locals_)``.  Returns :data:`NO_OSR` to keep interpreting, or
        #: the method's result when it transferred control into compiled
        #: code and ran the method to completion.
        self.osr_handler = None

    # -- public API -----------------------------------------------------

    def invoke(self, method: JMethod, args: List[Any], depth: int = 0):
        """Invoke *method* with *args*, returning its result."""
        if depth > MAX_CALL_DEPTH:
            raise VMError(f"call stack overflow in {method.qualified_name}")
        self.stats.invocations += 1
        self.stats.max_depth = max(self.stats.max_depth, depth)
        # With a tiered VM attached every call funnels through its
        # dispatcher, which counts it; counting here too would tally
        # calls once or twice depending on which tier the caller ran
        # in — and tiering decisions must not depend on that.
        if self.profile is not None and self.dispatcher is None:
            self.profile.record_invocation(method)
        if method.is_native:
            if method.native_impl is None:
                raise VMError(f"native method {method.qualified_name} "
                              "has no implementation")
            return method.native_impl(self, args)
        if len(args) != method.arg_count:
            raise VMError(
                f"{method.qualified_name} expects {method.arg_count} "
                f"args, got {len(args)}")
        local_slots = max(method.max_locals, len(args))
        locals_ = list(args) + [None] * (local_slots - len(args))
        sync_receiver = None
        if method.is_synchronized and not method.is_static:
            sync_receiver = args[0]
            self.heap.monitor_enter(sync_receiver)
        try:
            return self.execute_frame(method, locals_, [], 0, depth)
        finally:
            if sync_receiver is not None:
                self.heap.monitor_exit(sync_receiver)

    def call(self, qualified: str, *args):
        """Convenience: invoke ``"Class.method"`` with *args*."""
        return self.invoke(self.program.method(qualified), list(args))

    def _call(self, callee: JMethod, args: List[Any], depth: int):
        """Dispatch a callee: through the tiered VM when attached,
        recursively otherwise."""
        if self.dispatcher is not None:
            return self.dispatcher(callee, args)
        return self.invoke(callee, args, depth + 1)

    # -- the dispatch loop -----------------------------------------------

    def execute_frame(self, method: JMethod, locals_: List[Any],
                      stack: List[Any], pc: int, depth: int = 0):
        """Run *method* from *pc* with the given frame contents.

        This is both the normal execution path (``pc == 0``, empty stack)
        and the deoptimization entry point (arbitrary ``pc``/stack).
        """
        code = method.code
        code_len = len(code)
        heap = self.heap
        program = self.program
        stats = self.stats
        profile = self.profile
        step_budget = self.step_budget
        osr_handler = self.osr_handler
        while True:
            stats.steps += 1
            if stats.steps > step_budget:
                raise BudgetExceeded(
                    f"step budget exceeded in {method.qualified_name}")
            if not 0 <= pc < code_len:
                raise VMError(
                    f"pc {pc} out of range in {method.qualified_name}")
            insn = code[pc]
            op = insn.op

            if op is Op.CONST:
                stack.append(insn.operand)
            elif op is Op.LOAD:
                stack.append(locals_[insn.operand])
            elif op is Op.STORE:
                locals_[insn.operand] = stack.pop()
            elif op is Op.POP:
                stack.pop()
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]

            elif op is Op.ADD:
                b, a = stack.pop(), stack.pop()
                v = (a + b) & _INT_MASK
                stack.append(v - _INT_WRAP if v & _INT_SIGN else v)
            elif op is Op.SUB:
                b, a = stack.pop(), stack.pop()
                v = (a - b) & _INT_MASK
                stack.append(v - _INT_WRAP if v & _INT_SIGN else v)
            elif op is Op.MUL:
                b, a = stack.pop(), stack.pop()
                v = (a * b) & _INT_MASK
                stack.append(v - _INT_WRAP if v & _INT_SIGN else v)
            elif op is Op.DIV:
                b, a = stack.pop(), stack.pop()
                stack.append(java_div(a, b))
            elif op is Op.REM:
                b, a = stack.pop(), stack.pop()
                stack.append(java_rem(a, b))
            elif op is Op.NEG:
                stack.append(wrap_int(-stack.pop()))
            elif op is Op.AND:
                b, a = stack.pop(), stack.pop()
                stack.append(wrap_int(a & b))
            elif op is Op.OR:
                b, a = stack.pop(), stack.pop()
                stack.append(wrap_int(a | b))
            elif op is Op.XOR:
                b, a = stack.pop(), stack.pop()
                stack.append(wrap_int(a ^ b))
            elif op is Op.SHL:
                b, a = stack.pop(), stack.pop()
                stack.append(java_shl(a, b))
            elif op is Op.SHR:
                b, a = stack.pop(), stack.pop()
                stack.append(java_shr(a, b))

            elif op is Op.GOTO:
                target = insn.operand
                if target <= pc and osr_handler is not None and \
                        not stack:
                    result = osr_handler(method, target, locals_)
                    if result is not NO_OSR:
                        return result
                pc = target
                continue
            elif op in _COMPARE_FNS:
                b, a = stack.pop(), stack.pop()
                taken = _COMPARE_FNS[op](a, b)
                if profile is not None:
                    profile.record_branch(method, pc, taken)
                if taken:
                    target = insn.operand
                    if target <= pc and osr_handler is not None and \
                            not stack:
                        result = osr_handler(method, target, locals_)
                        if result is not NO_OSR:
                            return result
                    pc = target
                    continue
            elif op is Op.IF_NULL or op is Op.IF_NONNULL:
                value = stack.pop()
                taken = (value is None) == (op is Op.IF_NULL)
                if profile is not None:
                    profile.record_branch(method, pc, taken)
                if taken:
                    target = insn.operand
                    if target <= pc and osr_handler is not None and \
                            not stack:
                        result = osr_handler(method, target, locals_)
                        if result is not NO_OSR:
                            return result
                    pc = target
                    continue

            elif op is Op.NEW:
                stack.append(heap.new_instance(insn.operand))
            elif op is Op.GETFIELD:
                obj = stack.pop()
                stack.append(heap.get_field(obj, insn.operand.field_name))
            elif op is Op.PUTFIELD:
                value, obj = stack.pop(), stack.pop()
                heap.put_field(obj, insn.operand.field_name, value)
            elif op is Op.GETSTATIC:
                ref = insn.operand
                stack.append(
                    program.get_static(ref.class_name, ref.field_name))
            elif op is Op.PUTSTATIC:
                ref = insn.operand
                program.set_static(ref.class_name, ref.field_name,
                                   stack.pop())
            elif op is Op.NEWARRAY:
                length = stack.pop()
                stack.append(heap.new_array(insn.operand, length))
            elif op is Op.ALOAD:
                index, arr = stack.pop(), stack.pop()
                stack.append(heap.array_load(arr, index))
            elif op is Op.ASTORE:
                value, index, arr = stack.pop(), stack.pop(), stack.pop()
                heap.array_store(arr, index, value)
            elif op is Op.ARRAYLENGTH:
                stack.append(heap.array_length(stack.pop()))
            elif op is Op.INSTANCEOF:
                stack.append(heap.instance_of(stack.pop(), insn.operand))
            elif op is Op.CHECKCAST:
                stack.append(heap.check_cast(stack.pop(), insn.operand))

            elif op is Op.INVOKESTATIC:
                ref = insn.operand
                callee = program.resolve_method(ref.class_name,
                                                ref.method_name)
                args = _pop_args(stack, ref.arg_count)
                stack_result = self._call(callee, args, depth)
                if callee.return_type != "void":
                    stack.append(stack_result)
            elif op is Op.INVOKESPECIAL:
                ref = insn.operand
                callee = program.resolve_method(ref.class_name,
                                                ref.method_name)
                args = _pop_args(stack, ref.arg_count)
                if args[0] is None:
                    raise NullPointerError(
                        f"invokespecial {ref} on null")
                stack_result = self._call(callee, args, depth)
                if callee.return_type != "void":
                    stack.append(stack_result)
            elif op is Op.INVOKEVIRTUAL:
                ref = insn.operand
                args = _pop_args(stack, ref.arg_count)
                receiver = args[0]
                if receiver is None:
                    raise NullPointerError(f"invokevirtual {ref} on null")
                callee = program.resolve_virtual(receiver.class_name,
                                                 ref.method_name)
                if profile is not None:
                    profile.record_receiver(method, pc,
                                            receiver.class_name)
                stack_result = self._call(callee, args, depth)
                if callee.return_type != "void":
                    stack.append(stack_result)

            elif op is Op.MONITORENTER:
                heap.monitor_enter(stack.pop())
            elif op is Op.MONITOREXIT:
                heap.monitor_exit(stack.pop())

            elif op is Op.RETURN:
                return None
            elif op is Op.RETURN_VALUE:
                return stack.pop()
            elif op is Op.THROW:
                raise ThrownException(stack.pop())
            else:  # pragma: no cover - exhaustiveness guard
                raise VMError(f"unimplemented opcode {op}")

            pc += 1


#: Branch condition evaluators (C-implemented operators — faster than an
#: if-chain in the hot dispatch loop).
_COMPARE_FNS = {
    Op.IF_EQ: operator.eq,
    Op.IF_NE: operator.ne,
    Op.IF_LT: operator.lt,
    Op.IF_LE: operator.le,
    Op.IF_GT: operator.gt,
    Op.IF_GE: operator.ge,
    Op.IF_ACMP_EQ: operator.is_,
    Op.IF_ACMP_NE: operator.is_not,
}


def _compare(op: Op, a, b) -> bool:
    if op is Op.IF_EQ:
        return a == b
    if op is Op.IF_NE:
        return a != b
    if op is Op.IF_LT:
        return a < b
    if op is Op.IF_LE:
        return a <= b
    if op is Op.IF_GT:
        return a > b
    if op is Op.IF_GE:
        return a >= b
    if op is Op.IF_ACMP_EQ:
        return a is b
    if op is Op.IF_ACMP_NE:
        return a is not b
    raise AssertionError(op)


def _pop_args(stack: List[Any], count: int) -> List[Any]:
    if count == 0:
        return []
    args = stack[-count:]
    del stack[-count:]
    return args
