"""Textual bytecode assembler.

Parses a class/method/instruction format close to the disassembler's
output, so bytecode-level tests and tools can be written without going
through the source language::

    class Point
      field int x
      field static int instances

    class Main
      method main(int) -> int static locals=2
        load 0
        const 1
        add
        store 1
      loop:
        load 1
        const 0
        if_le done
        load 1
        const 1
        sub
        store 1
        goto loop
      done:
        load 0
        return_value

Field references are written ``Class.field``, method references
``Class.method/argcount``; branch targets are labels declared as
``name:`` on their own line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .assembler import BytecodeBuilder
from .classfile import JClass, JField, JMethod, Program
from .instructions import FieldRef, MethodRef
from .opcodes import Op, OperandKind, info
from .verifier import verify_program

_OPS_BY_NAME = {op.value: op for op in Op}


class AsmSyntaxError(Exception):
    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _parse_const(text: str, line_number: int):
    if text == "null":
        return None
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        raise AsmSyntaxError(f"bad constant {text!r}", line_number) \
            from None


def _parse_field(text: str, line_number: int) -> FieldRef:
    class_name, sep, field_name = text.partition(".")
    if not sep or not field_name:
        raise AsmSyntaxError(f"bad field reference {text!r}",
                             line_number)
    return FieldRef(class_name, field_name)


def _parse_method(text: str, line_number: int) -> MethodRef:
    ref, sep, count = text.partition("/")
    if not sep:
        raise AsmSyntaxError(f"bad method reference {text!r} "
                             "(want Class.method/argcount)", line_number)
    class_name, dot, method_name = ref.partition(".")
    if not dot or not method_name:
        raise AsmSyntaxError(f"bad method reference {text!r}",
                             line_number)
    try:
        arg_count = int(count)
    except ValueError:
        raise AsmSyntaxError(f"bad argument count {count!r}",
                             line_number) from None
    return MethodRef(class_name, method_name, arg_count)


class _MethodParser:
    def __init__(self, method: JMethod):
        self.method = method
        self.builder = BytecodeBuilder()
        self.labels: Dict[str, object] = {}

    def label(self, name: str):
        if name not in self.labels:
            self.labels[name] = self.builder.new_label(name)
        return self.labels[name]

    def parse_line(self, line: str, line_number: int):
        if line.endswith(":"):
            name = line[:-1].strip()
            if not name:
                raise AsmSyntaxError("empty label", line_number)
            self.builder.bind(self.label(name))
            return
        mnemonic, __, rest = line.partition(" ")
        rest = rest.strip()
        op = _OPS_BY_NAME.get(mnemonic)
        if op is None:
            raise AsmSyntaxError(f"unknown opcode {mnemonic!r}",
                                 line_number)
        kind = info(op).operand
        if kind is OperandKind.NONE:
            if rest:
                raise AsmSyntaxError(f"{mnemonic} takes no operand",
                                     line_number)
            self.builder.emit(op)
        elif kind is OperandKind.CONST:
            self.builder.emit(op, _parse_const(rest, line_number))
        elif kind is OperandKind.LOCAL:
            try:
                self.builder.emit(op, int(rest))
            except ValueError:
                raise AsmSyntaxError(f"bad local slot {rest!r}",
                                     line_number) from None
        elif kind is OperandKind.TARGET:
            if not rest:
                raise AsmSyntaxError(f"{mnemonic} needs a label",
                                     line_number)
            self.builder.emit(op, self.label(rest))
        elif kind is OperandKind.CLASS:
            if not rest:
                raise AsmSyntaxError(f"{mnemonic} needs a class name",
                                     line_number)
            self.builder.emit(op, rest)
        elif kind is OperandKind.FIELD:
            self.builder.emit(op, _parse_field(rest, line_number))
        elif kind is OperandKind.METHOD:
            self.builder.emit(op, _parse_method(rest, line_number))

    def finish(self):
        self.builder.into(self.method, max_locals=self.method.max_locals)


def _parse_method_header(rest: str, line_number: int) -> JMethod:
    # name(params) -> ret [static] [synchronized] [native] [locals=N]
    head, arrow, tail = rest.partition("->")
    if not arrow:
        raise AsmSyntaxError("method header needs '-> returntype'",
                             line_number)
    name_part = head.strip()
    if "(" not in name_part or not name_part.endswith(")"):
        raise AsmSyntaxError("method header needs a parameter list",
                             line_number)
    name, __, params_text = name_part.partition("(")
    params_text = params_text[:-1]
    params = [p.strip() for p in params_text.split(",") if p.strip()]
    tail_words = tail.split()
    if not tail_words:
        raise AsmSyntaxError("missing return type", line_number)
    return_type = tail_words[0]
    method = JMethod(name.strip(), params, return_type)
    for word in tail_words[1:]:
        if word == "static":
            method.is_static = True
        elif word == "synchronized":
            method.is_synchronized = True
        elif word == "native":
            method.is_native = True
        elif word.startswith("locals="):
            method.max_locals = int(word[len("locals="):])
        else:
            raise AsmSyntaxError(f"unknown method flag {word!r}",
                                 line_number)
    if method.max_locals < len(params):
        method.max_locals = len(params)
    return method


def _format_operand(instruction, labels: Dict[int, str],
                    line_number_hint: int = 0) -> str:
    kind = info(instruction.op).operand
    operand = instruction.operand
    if kind is OperandKind.NONE:
        return ""
    if kind is OperandKind.CONST:
        if operand is None:
            return " null"
        if isinstance(operand, bool):
            return f" {int(operand)}"
        if isinstance(operand, str):
            return f' "{operand}"'
        return f" {operand}"
    if kind is OperandKind.TARGET:
        return f" {labels[operand]}"
    # LOCAL / CLASS / FIELD / METHOD all stringify to assembler syntax.
    return f" {operand}"


def method_to_asm(method: JMethod, indent: str = "    ") -> List[str]:
    """Render one method as assembler lines (header + body)."""
    header = (f"  method {method.name}"
              f"({', '.join(method.param_types)}) "
              f"-> {method.return_type}")
    if method.is_static:
        header += " static"
    if method.is_synchronized:
        header += " synchronized"
    if method.is_native:
        header += " native"
        return [header]
    header += f" locals={method.max_locals}"
    lines = [header]
    targets = sorted({inst.operand for inst in method.code
                     if info(inst.op).operand is OperandKind.TARGET})
    labels = {bci: f"L{bci}" for bci in targets}
    for bci, instruction in enumerate(method.code):
        if bci in labels:
            lines.append(f"  {labels[bci]}:")
        lines.append(f"{indent}{instruction.op.value}"
                     f"{_format_operand(instruction, labels)}")
    return lines


def to_asm(program: Program) -> str:
    """Render *program* in the textual format :func:`assemble` parses.

    Round-trip: ``assemble(to_asm(p))`` reproduces an equivalent
    program (same classes, fields, methods and instruction streams).
    The implicit empty ``Object`` root class is omitted.  This is what
    the fuzzer uses to persist reproducers in ``tests/corpus/``.
    """
    lines: List[str] = []
    for jclass in program.classes.values():
        if (jclass.superclass_name is None and not jclass.fields
                and not jclass.methods):
            continue  # the implicit Object root
        header = f"class {jclass.name}"
        if jclass.superclass_name not in (None, "Object"):
            header += f" extends {jclass.superclass_name}"
        if lines:
            lines.append("")
        lines.append(header)
        for jfield in jclass.fields.values():
            static = "static " if jfield.is_static else ""
            lines.append(f"  field {static}{jfield.type_name} "
                         f"{jfield.name}")
        for method in jclass.methods.values():
            lines.extend(method_to_asm(method))
    return "\n".join(lines) + "\n"


def assemble(text: str, verify: bool = True) -> Program:
    """Assemble *text* into a verified :class:`Program`."""
    program = Program()
    current_class: Optional[JClass] = None
    current_method: Optional[_MethodParser] = None

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].strip()  # ';' starts a comment
        if not line:
            continue
        word, __, rest = line.partition(" ")
        rest = rest.strip()
        if word == "class":
            if current_method is not None:
                current_method.finish()
                current_method = None
            parts = rest.split()
            if not parts:
                raise AsmSyntaxError("class needs a name", line_number)
            superclass = "Object"
            if len(parts) == 3 and parts[1] == "extends":
                superclass = parts[2]
            elif len(parts) != 1:
                raise AsmSyntaxError("bad class header", line_number)
            current_class = program.define_class(parts[0], superclass)
        elif word == "field":
            if current_class is None:
                raise AsmSyntaxError("field outside class", line_number)
            parts = rest.split()
            is_static = False
            if parts and parts[0] == "static":
                is_static = True
                parts = parts[1:]
            if len(parts) != 2:
                raise AsmSyntaxError(
                    "field wants: field [static] type name", line_number)
            current_class.add_field(JField(parts[1], parts[0],
                                           is_static))
        elif word == "method":
            if current_class is None:
                raise AsmSyntaxError("method outside class", line_number)
            if current_method is not None:
                current_method.finish()
            method = _parse_method_header(rest, line_number)
            current_class.add_method(method)
            current_method = None if method.is_native else \
                _MethodParser(method)
        else:
            if current_method is None:
                raise AsmSyntaxError(f"instruction outside method: "
                                     f"{line!r}", line_number)
            current_method.parse_line(line, line_number)

    if current_method is not None:
        current_method.finish()
    if verify:
        verify_program(program)
    return program
