"""A label-based bytecode builder.

Writing branch targets as raw instruction indices is unmaintainable; the
:class:`BytecodeBuilder` lets tests, the language code generator and the
benchmark workloads emit code with symbolic labels that are resolved to
instruction indices when the method is finished.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .classfile import JMethod
from .instructions import FieldRef, Instruction, MethodRef
from .opcodes import Op, OperandKind, info


class Label:
    """A forward- or backward-referencable position in the code."""

    __slots__ = ("name", "position")

    def __init__(self, name: str = ""):
        self.name = name
        self.position: Optional[int] = None

    def __repr__(self):
        where = self.position if self.position is not None else "?"
        return f"<Label {self.name or id(self)}@{where}>"


class AssemblyError(Exception):
    pass


class BytecodeBuilder:
    """Accumulates instructions and resolves labels.

    Usage::

        b = BytecodeBuilder()
        loop = b.new_label("loop")
        b.bind(loop)
        b.load(0).const(1).sub().store(0)
        b.load(0).const(0).branch(Op.IF_GT, loop)
        b.const(None).return_value()
        method.code = b.finish()
    """

    def __init__(self):
        self._code: List[Instruction] = []
        self._labels: List[Label] = []
        self._pending: List[int] = []  # indices whose operand is a Label

    # -- labels -----------------------------------------------------------

    def new_label(self, name: str = "") -> Label:
        label = Label(name)
        self._labels.append(label)
        return label

    def bind(self, label: Label) -> "BytecodeBuilder":
        if label.position is not None:
            raise AssemblyError(f"label {label!r} bound twice")
        label.position = len(self._code)
        return self

    @property
    def here(self) -> int:
        """The index the next emitted instruction will have."""
        return len(self._code)

    # -- raw emission --------------------------------------------------------

    def emit(self, op: Op, operand: Any = None) -> "BytecodeBuilder":
        if info(op).operand is OperandKind.TARGET and isinstance(
                operand, Label):
            self._pending.append(len(self._code))
            # Temporarily store the label; patched in finish().
            insn = Instruction.__new__(Instruction)
            insn.op = op
            insn.operand = operand
            self._code.append(insn)
            return self
        self._code.append(Instruction(op, operand))
        return self

    # -- finish -----------------------------------------------------------------

    def finish(self) -> List[Instruction]:
        """Resolve labels and return the instruction list."""
        for index in self._pending:
            insn = self._code[index]
            label = insn.operand
            if label.position is None:
                raise AssemblyError(f"unbound label {label!r}")
            self._code[index] = Instruction(insn.op, label.position)
        self._pending.clear()
        return self._code

    def into(self, method: JMethod, max_locals: Optional[int] = None
             ) -> JMethod:
        """Finish and install the code into *method*."""
        method.code = self.finish()
        if max_locals is not None:
            method.max_locals = max_locals
        return method

    # -- fluent helpers, one per opcode family ------------------------------

    def const(self, value) -> "BytecodeBuilder":
        return self.emit(Op.CONST, value)

    def load(self, slot: int) -> "BytecodeBuilder":
        return self.emit(Op.LOAD, slot)

    def store(self, slot: int) -> "BytecodeBuilder":
        return self.emit(Op.STORE, slot)

    def pop(self) -> "BytecodeBuilder":
        return self.emit(Op.POP)

    def dup(self) -> "BytecodeBuilder":
        return self.emit(Op.DUP)

    def swap(self) -> "BytecodeBuilder":
        return self.emit(Op.SWAP)

    def add(self) -> "BytecodeBuilder":
        return self.emit(Op.ADD)

    def sub(self) -> "BytecodeBuilder":
        return self.emit(Op.SUB)

    def mul(self) -> "BytecodeBuilder":
        return self.emit(Op.MUL)

    def div(self) -> "BytecodeBuilder":
        return self.emit(Op.DIV)

    def rem(self) -> "BytecodeBuilder":
        return self.emit(Op.REM)

    def neg(self) -> "BytecodeBuilder":
        return self.emit(Op.NEG)

    def band(self) -> "BytecodeBuilder":
        return self.emit(Op.AND)

    def bor(self) -> "BytecodeBuilder":
        return self.emit(Op.OR)

    def bxor(self) -> "BytecodeBuilder":
        return self.emit(Op.XOR)

    def shl(self) -> "BytecodeBuilder":
        return self.emit(Op.SHL)

    def shr(self) -> "BytecodeBuilder":
        return self.emit(Op.SHR)

    def goto(self, target: Label) -> "BytecodeBuilder":
        return self.emit(Op.GOTO, target)

    def branch(self, op: Op, target: Label) -> "BytecodeBuilder":
        if not info(op).is_branch:
            raise AssemblyError(f"{op} is not a branch")
        return self.emit(op, target)

    def new(self, class_name: str) -> "BytecodeBuilder":
        return self.emit(Op.NEW, class_name)

    def getfield(self, class_name: str, field_name: str
                 ) -> "BytecodeBuilder":
        return self.emit(Op.GETFIELD, FieldRef(class_name, field_name))

    def putfield(self, class_name: str, field_name: str
                 ) -> "BytecodeBuilder":
        return self.emit(Op.PUTFIELD, FieldRef(class_name, field_name))

    def getstatic(self, class_name: str, field_name: str
                  ) -> "BytecodeBuilder":
        return self.emit(Op.GETSTATIC, FieldRef(class_name, field_name))

    def putstatic(self, class_name: str, field_name: str
                  ) -> "BytecodeBuilder":
        return self.emit(Op.PUTSTATIC, FieldRef(class_name, field_name))

    def newarray(self, elem_type: str) -> "BytecodeBuilder":
        return self.emit(Op.NEWARRAY, elem_type)

    def aload(self) -> "BytecodeBuilder":
        return self.emit(Op.ALOAD)

    def astore(self) -> "BytecodeBuilder":
        return self.emit(Op.ASTORE)

    def arraylength(self) -> "BytecodeBuilder":
        return self.emit(Op.ARRAYLENGTH)

    def instanceof(self, class_name: str) -> "BytecodeBuilder":
        return self.emit(Op.INSTANCEOF, class_name)

    def checkcast(self, class_name: str) -> "BytecodeBuilder":
        return self.emit(Op.CHECKCAST, class_name)

    def invokestatic(self, class_name: str, method_name: str,
                     arg_count: int) -> "BytecodeBuilder":
        return self.emit(Op.INVOKESTATIC,
                         MethodRef(class_name, method_name, arg_count))

    def invokevirtual(self, class_name: str, method_name: str,
                      arg_count: int) -> "BytecodeBuilder":
        return self.emit(Op.INVOKEVIRTUAL,
                         MethodRef(class_name, method_name, arg_count))

    def invokespecial(self, class_name: str, method_name: str,
                      arg_count: int) -> "BytecodeBuilder":
        return self.emit(Op.INVOKESPECIAL,
                         MethodRef(class_name, method_name, arg_count))

    def monitorenter(self) -> "BytecodeBuilder":
        return self.emit(Op.MONITORENTER)

    def monitorexit(self) -> "BytecodeBuilder":
        return self.emit(Op.MONITOREXIT)

    def return_void(self) -> "BytecodeBuilder":
        return self.emit(Op.RETURN)

    def return_value(self) -> "BytecodeBuilder":
        return self.emit(Op.RETURN_VALUE)

    def throw(self) -> "BytecodeBuilder":
        return self.emit(Op.THROW)
