"""Human-readable dumps of bytecode methods and whole programs."""

from __future__ import annotations

from typing import List

from .classfile import JClass, JMethod, Program
from .opcodes import OperandKind, info


def format_position(position) -> str:
    """Render a ``(method, bci)`` source position as ``Cls.name@bci N``.

    IR nodes carry positions as 2-tuples whose first element is either a
    :class:`JMethod` or an already-qualified name string (positions that
    crossed the compilation cache's detached pickles come back as
    strings).  ``None``, and malformed values, render as ``"?"`` so
    diagnostics never crash on a node without provenance.
    """
    if not isinstance(position, tuple) or len(position) != 2:
        return "?"
    method, bci = position
    if isinstance(method, JMethod):
        name = method.qualified_name
    elif isinstance(method, str):
        name = method
    else:
        return "?"
    return f"{name}@bci {bci}"


def disassemble_method(method: JMethod) -> str:
    """Render one method, annotating branch targets with labels."""
    flags = []
    if method.is_static:
        flags.append("static")
    if method.is_synchronized:
        flags.append("synchronized")
    if method.is_native:
        flags.append("native")
    flag_str = (" [" + " ".join(flags) + "]") if flags else ""
    params = ", ".join(method.param_types)
    lines: List[str] = [
        f"method {method.qualified_name}({params}) -> "
        f"{method.return_type}{flag_str} locals={method.max_locals}"
    ]
    if method.is_native:
        lines.append("    <native>")
        return "\n".join(lines)

    targets = sorted({
        insn.operand for insn in method.code
        if info(insn.op).operand is OperandKind.TARGET})
    label_names = {bci: f"L{i}" for i, bci in enumerate(targets)}
    for bci, insn in enumerate(method.code):
        prefix = f"{label_names[bci]}:" if bci in label_names else ""
        if info(insn.op).operand is OperandKind.TARGET:
            text = f"{insn.op.value} {label_names[insn.operand]}"
        else:
            text = str(insn)
        lines.append(f"{prefix:>6} {bci:4}: {text}")
    return "\n".join(lines)


def disassemble_class(jclass: JClass) -> str:
    """Render one class: fields then methods."""
    header = f"class {jclass.name}"
    if jclass.superclass_name:
        header += f" extends {jclass.superclass_name}"
    lines = [header]
    for jfield in jclass.fields.values():
        kind = "static " if jfield.is_static else ""
        lines.append(f"  {kind}{jfield.type_name} {jfield.name}")
    for method in jclass.methods.values():
        body = disassemble_method(method)
        lines.append("  " + body.replace("\n", "\n  "))
    return "\n".join(lines)


def disassemble_program(program: Program) -> str:
    """Render every class in the program."""
    return "\n\n".join(
        disassemble_class(c) for c in program.classes.values())
