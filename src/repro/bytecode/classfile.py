"""Class, method and field model — the "classfile" substrate.

A :class:`Program` is the unit the VM operates on: a closed set of classes
with single inheritance rooted at ``Object``, static fields, and method
resolution for the three invocation kinds.  Field layout (used for the
allocated-bytes statistic) follows a 64-bit HotSpot-like model: a fixed
object header plus one word per instance field.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .instructions import FieldRef, Instruction, MethodRef

#: Size in bytes of an object header (mark word + class pointer).
OBJECT_HEADER_BYTES = 16
#: Size in bytes of one instance field slot.
FIELD_BYTES = 8
#: Size in bytes of an array header (object header + length word).
ARRAY_HEADER_BYTES = 24
#: Size in bytes of one array element slot.
ELEMENT_BYTES = 8

#: The root class every class implicitly extends.
OBJECT_CLASS = "Object"


class ResolutionError(Exception):
    """Raised when a class, field or method reference cannot be resolved."""


@dataclass(eq=False)
class JField:
    """A field declaration."""

    name: str
    type_name: str = "int"
    is_static: bool = False
    default: Any = None

    def default_value(self):
        """The JVM-style default for an uninitialized field."""
        if self.default is not None:
            return self.default
        return 0 if self.type_name in ("int", "boolean") else None


@dataclass(eq=False)
class JMethod:
    """A method declaration with its bytecode.

    ``param_types`` includes the receiver type for instance methods.
    ``native_impl`` — for native methods — is a Python callable
    ``(interpreter, args) -> value`` standing in for JNI code; native
    callees are opaque to the compiler, so their arguments escape.
    """

    name: str
    param_types: List[str] = field(default_factory=list)
    return_type: str = "void"
    code: List[Instruction] = field(default_factory=list)
    max_locals: int = 0
    is_static: bool = False
    is_synchronized: bool = False
    is_native: bool = False
    native_impl: Optional[Callable] = None
    #: Simulated cycles one call of this native costs (models JNI /
    #: precompiled library work on the simulated machine).
    native_cycle_cost: int = 0
    holder: Optional["JClass"] = None  # set by JClass.add_method

    @property
    def arg_count(self):
        return len(self.param_types)

    @property
    def qualified_name(self):
        holder = self.holder.name if self.holder else "?"
        return f"{holder}.{self.name}"

    def ref(self) -> MethodRef:
        """A symbolic reference to this method."""
        if self.holder is None:
            raise ValueError(f"method {self.name} has no holder class")
        return MethodRef(self.holder.name, self.name, self.arg_count)

    def content_key(self) -> tuple:
        """A canonical, hashable description of this method's declared
        content — everything the compiler can observe about it.  Native
        implementations are opaque to the compiler, so only their
        presence and simulated cost participate."""
        return (
            self.name, tuple(self.param_types), self.return_type,
            self.max_locals, self.is_static, self.is_synchronized,
            self.is_native, self.native_impl is not None,
            self.native_cycle_cost,
            tuple(_instruction_key(insn) for insn in self.code),
        )

    def __repr__(self):
        return f"<JMethod {self.qualified_name}/{self.arg_count}>"


def _instruction_key(insn: Instruction) -> tuple:
    operand = insn.operand
    if isinstance(operand, MethodRef):
        operand = ("M", operand.class_name, operand.method_name,
                   operand.arg_count)
    elif isinstance(operand, FieldRef):
        operand = ("F", operand.class_name, operand.field_name)
    return (insn.op.value, operand)


@dataclass(eq=False)
class JClass:
    """A class declaration."""

    name: str
    superclass_name: Optional[str] = OBJECT_CLASS
    fields: Dict[str, JField] = field(default_factory=dict)
    methods: Dict[str, JMethod] = field(default_factory=dict)

    #: Back-reference set by Program.add_class so structural changes can
    #: invalidate the program's resolution/layout caches.
    _program = None

    def __post_init__(self):
        if self.name == OBJECT_CLASS:
            self.superclass_name = None

    def add_field(self, jfield: JField) -> JField:
        if jfield.name in self.fields:
            raise ValueError(
                f"duplicate field {self.name}.{jfield.name}")
        self.fields[jfield.name] = jfield
        if self._program is not None:
            self._program._invalidate_caches()
        return jfield

    def add_method(self, method: JMethod) -> JMethod:
        if method.name in self.methods:
            raise ValueError(
                f"duplicate method {self.name}.{method.name}")
        method.holder = self
        self.methods[method.name] = method
        if self._program is not None:
            self._program._invalidate_caches()
        return method

    def __repr__(self):
        return f"<JClass {self.name}>"


class Program:
    """A closed world of classes, with resolution and layout queries."""

    def __init__(self):
        self.classes: Dict[str, JClass] = {}
        self.statics: Dict[str, Any] = {}  # "Class.field" -> value
        # Resolution/layout caches.  Resolution walks the superclass
        # chain on every query, and both execution tiers query on every
        # call / allocation — caching here speeds interpreter and
        # compiled code alike.  Invalidated on any structural change
        # (add_class / add_field / add_method).
        self._method_cache: Dict[tuple, JMethod] = {}
        self._field_cache: Dict[tuple, JField] = {}
        self._static_key_cache: Dict[tuple, str] = {}
        self._fields_list_cache: Dict[str, List[JField]] = {}
        self._size_cache: Dict[str, int] = {}
        self._defaults_cache: Dict[str, Dict[str, Any]] = {}
        #: Content hash for the compilation cache (lazily computed).
        self._content_fingerprint: Optional[str] = None
        self.add_class(JClass(OBJECT_CLASS))

    # -- construction ---------------------------------------------------

    def add_class(self, jclass: JClass) -> JClass:
        if jclass.name in self.classes:
            raise ValueError(f"duplicate class {jclass.name}")
        self.classes[jclass.name] = jclass
        jclass._program = self
        self._invalidate_caches()
        return jclass

    def _invalidate_caches(self) -> None:
        self._method_cache.clear()
        self._field_cache.clear()
        self._static_key_cache.clear()
        self._fields_list_cache.clear()
        self._size_cache.clear()
        self._defaults_cache.clear()
        self._content_fingerprint = None

    def content_fingerprint(self) -> str:
        """A stable hash of every declaration the compiler can observe:
        class hierarchy, field layouts and method bytecode.  Programs
        with equal fingerprints compile identically under the same
        configuration and profile facts — the program half of the
        compilation-cache key (see :mod:`repro.jit.cache`)."""
        cached = self._content_fingerprint
        if cached is not None:
            return cached
        description = []
        for name in sorted(self.classes):
            jclass = self.classes[name]
            description.append((
                name, jclass.superclass_name,
                tuple((f.name, f.type_name, f.is_static, repr(f.default))
                      for f in jclass.fields.values()),
                tuple(m.content_key() for m in jclass.methods.values()),
            ))
        digest = hashlib.sha256(
            repr(description).encode("utf-8")).hexdigest()
        self._content_fingerprint = digest
        return digest

    def define_class(self, name, superclass_name=OBJECT_CLASS) -> JClass:
        """Create, register and return an empty class."""
        return self.add_class(JClass(name, superclass_name))

    # -- resolution ------------------------------------------------------

    def lookup_class(self, name: str) -> JClass:
        try:
            return self.classes[name]
        except KeyError:
            raise ResolutionError(f"unknown class {name}") from None

    def superclasses(self, name: str):
        """Yield *name* and all its superclasses, most derived first."""
        current: Optional[str] = name
        seen = set()
        while current is not None:
            if current in seen:
                raise ResolutionError(f"inheritance cycle at {current}")
            seen.add(current)
            jclass = self.lookup_class(current)
            yield jclass
            current = jclass.superclass_name

    def is_subclass_of(self, name: str, ancestor: str) -> bool:
        return any(c.name == ancestor for c in self.superclasses(name))

    def resolve_field(self, class_name: str, field_name: str) -> JField:
        key = (class_name, field_name)
        cached = self._field_cache.get(key)
        if cached is not None:
            return cached
        for jclass in self.superclasses(class_name):
            if field_name in jclass.fields:
                self._field_cache[key] = jclass.fields[field_name]
                return jclass.fields[field_name]
        raise ResolutionError(f"unknown field {class_name}.{field_name}")

    def resolve_method(self, class_name: str, method_name: str) -> JMethod:
        """Resolve statically (for invokestatic/invokespecial and as the
        declared target of invokevirtual)."""
        key = (class_name, method_name)
        cached = self._method_cache.get(key)
        if cached is not None:
            return cached
        for jclass in self.superclasses(class_name):
            if method_name in jclass.methods:
                self._method_cache[key] = jclass.methods[method_name]
                return jclass.methods[method_name]
        raise ResolutionError(f"unknown method {class_name}.{method_name}")

    def resolve_virtual(self, receiver_class: str,
                        method_name: str) -> JMethod:
        """Resolve an invokevirtual against the receiver's dynamic class."""
        return self.resolve_method(receiver_class, method_name)

    def has_subclasses(self, name: str) -> bool:
        """True if any loaded class extends *name* (directly or not)."""
        return any(jclass.name != name
                   and self.is_subclass_of(jclass.name, name)
                   for jclass in self.classes.values())

    def has_overrides(self, method: JMethod) -> bool:
        """True if any loaded subclass overrides *method* — the compiler
        uses this for (non-speculative) devirtualization."""
        holder = method.holder.name
        for jclass in self.classes.values():
            if jclass.name == holder:
                continue
            if (method.name in jclass.methods
                    and self.is_subclass_of(jclass.name, holder)):
                return True
        return False

    # -- layout -----------------------------------------------------------

    def instance_fields(self, class_name: str) -> List[JField]:
        """All instance fields including inherited ones, base class first."""
        cached = self._fields_list_cache.get(class_name)
        if cached is not None:
            return cached
        chain = list(self.superclasses(class_name))
        result: List[JField] = []
        for jclass in reversed(chain):
            result.extend(f for f in jclass.fields.values()
                          if not f.is_static)
        self._fields_list_cache[class_name] = result
        return result

    def instance_size(self, class_name: str) -> int:
        """Heap size in bytes of an instance of *class_name*."""
        cached = self._size_cache.get(class_name)
        if cached is not None:
            return cached
        size = (OBJECT_HEADER_BYTES
                + FIELD_BYTES * len(self.instance_fields(class_name)))
        self._size_cache[class_name] = size
        return size

    def instance_field_defaults(self, class_name: str) -> Dict[str, Any]:
        """Template of default field values for a fresh instance.
        Callers must copy before mutating (``dict(template)``)."""
        cached = self._defaults_cache.get(class_name)
        if cached is not None:
            return cached
        template = {f.name: f.default_value()
                    for f in self.instance_fields(class_name)}
        self._defaults_cache[class_name] = template
        return template

    @staticmethod
    def array_size(length: int) -> int:
        """Heap size in bytes of an array of *length* elements."""
        return ARRAY_HEADER_BYTES + ELEMENT_BYTES * length

    # -- statics ------------------------------------------------------------

    def static_key(self, class_name: str, field_name: str) -> str:
        cache_key = (class_name, field_name)
        cached = self._static_key_cache.get(cache_key)
        if cached is not None:
            return cached
        jfield = self.resolve_field(class_name, field_name)
        if not jfield.is_static:
            raise ResolutionError(
                f"{class_name}.{field_name} is not static")
        # Find the declaring class so Sub.f and Base.f share storage.
        for jclass in self.superclasses(class_name):
            if field_name in jclass.fields:
                key = f"{jclass.name}.{field_name}"
                self._static_key_cache[cache_key] = key
                return key
        raise AssertionError("unreachable")

    def get_static(self, class_name: str, field_name: str):
        key = self.static_key(class_name, field_name)
        if key not in self.statics:
            declaring = key.split(".")[0]
            jfield = self.lookup_class(declaring).fields[field_name]
            self.statics[key] = jfield.default_value()
        return self.statics[key]

    def set_static(self, class_name: str, field_name: str, value):
        key = self.static_key(class_name, field_name)
        self.statics[key] = value

    def reset_statics(self):
        """Reset all static fields to their defaults (between benchmark
        iterations)."""
        self.statics.clear()

    # -- convenience ---------------------------------------------------------

    def method(self, qualified: str) -> JMethod:
        """Look up ``"Class.method"``."""
        class_name, __, method_name = qualified.rpartition(".")
        return self.resolve_method(class_name, method_name)

    def all_methods(self):
        for jclass in self.classes.values():
            yield from jclass.methods.values()
