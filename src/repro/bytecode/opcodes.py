"""Opcode definitions for the JVM-like stack bytecode.

The bytecode is a simplified model of Java bytecode: an operand-stack
machine with local variable slots, reference-typed objects with named
fields, arrays, monitors and three invocation kinds.  Branch targets are
instruction indices (we call them ``bci`` throughout, matching the paper's
terminology), not byte offsets.

Every opcode carries metadata describing its operand kind and its stack
effect so the assembler, verifier, disassembler, interpreter and the
IR graph builder can share a single source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OperandKind(enum.Enum):
    """What the single immediate operand of an instruction means."""

    NONE = "none"
    CONST = "const"  # a literal: int, bool, str or None
    LOCAL = "local"  # a local variable slot index
    TARGET = "target"  # a branch target (instruction index)
    CLASS = "class"  # a class name
    FIELD = "field"  # a FieldRef
    METHOD = "method"  # a MethodRef


class Op(enum.Enum):
    """The instruction set.

    The stack effects below are written ``pops -> pushes``.
    """

    # -- constants and locals ------------------------------------------
    CONST = "const"  # () -> (value)
    LOAD = "load"  # () -> (local[n])
    STORE = "store"  # (value) -> ()

    # -- stack manipulation --------------------------------------------
    POP = "pop"  # (v) -> ()
    DUP = "dup"  # (v) -> (v, v)
    SWAP = "swap"  # (a, b) -> (b, a)

    # -- arithmetic (64-bit signed, wrapping) ----------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"

    # -- comparisons and branches ----------------------------------------
    GOTO = "goto"
    IF_EQ = "if_eq"  # (a, b) -> (); branch if a == b (ints)
    IF_NE = "if_ne"
    IF_LT = "if_lt"
    IF_LE = "if_le"
    IF_GT = "if_gt"
    IF_GE = "if_ge"
    IF_ACMP_EQ = "if_acmp_eq"  # reference equality
    IF_ACMP_NE = "if_acmp_ne"
    IF_NULL = "if_null"  # (ref) -> ()
    IF_NONNULL = "if_nonnull"

    # -- objects ---------------------------------------------------------
    NEW = "new"  # () -> (ref), uninitialized fields get defaults
    GETFIELD = "getfield"  # (ref) -> (value)
    PUTFIELD = "putfield"  # (ref, value) -> ()
    GETSTATIC = "getstatic"  # () -> (value)
    PUTSTATIC = "putstatic"  # (value) -> ()
    NEWARRAY = "newarray"  # (length) -> (ref)
    ALOAD = "aload"  # (ref, index) -> (value)
    ASTORE = "astore"  # (ref, index, value) -> ()
    ARRAYLENGTH = "arraylength"  # (ref) -> (length)
    INSTANCEOF = "instanceof"  # (ref) -> (0 or 1)
    CHECKCAST = "checkcast"  # (ref) -> (ref), traps on mismatch

    # -- calls -------------------------------------------------------------
    INVOKESTATIC = "invokestatic"
    INVOKEVIRTUAL = "invokevirtual"  # dynamic dispatch on the receiver
    INVOKESPECIAL = "invokespecial"  # constructors; no dispatch

    # -- synchronization -----------------------------------------------------
    MONITORENTER = "monitorenter"  # (ref) -> ()
    MONITOREXIT = "monitorexit"  # (ref) -> ()

    # -- control sinks -------------------------------------------------------
    RETURN = "return"  # () -> (); void return
    RETURN_VALUE = "return_value"  # (v) -> ()
    THROW = "throw"  # (ref) -> (); aborts to the caller as a trap


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    op: Op
    operand: OperandKind
    pops: int
    pushes: int
    is_branch: bool = False
    is_terminator: bool = False
    has_side_effect: bool = False


_ARITH_BINARY = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR,
                 Op.XOR, Op.SHL, Op.SHR)
_CMP_BRANCHES = (Op.IF_EQ, Op.IF_NE, Op.IF_LT, Op.IF_LE, Op.IF_GT, Op.IF_GE,
                 Op.IF_ACMP_EQ, Op.IF_ACMP_NE)

OP_INFO: "dict[Op, OpInfo]" = {}


def _register(op, operand, pops, pushes, **flags):
    OP_INFO[op] = OpInfo(op, operand, pops, pushes, **flags)


_register(Op.CONST, OperandKind.CONST, 0, 1)
_register(Op.LOAD, OperandKind.LOCAL, 0, 1)
_register(Op.STORE, OperandKind.LOCAL, 1, 0)
_register(Op.POP, OperandKind.NONE, 1, 0)
_register(Op.DUP, OperandKind.NONE, 1, 2)
_register(Op.SWAP, OperandKind.NONE, 2, 2)
for _op in _ARITH_BINARY:
    _register(_op, OperandKind.NONE, 2, 1)
_register(Op.NEG, OperandKind.NONE, 1, 1)
_register(Op.GOTO, OperandKind.TARGET, 0, 0, is_branch=True,
          is_terminator=True)
for _op in _CMP_BRANCHES:
    _register(_op, OperandKind.TARGET, 2, 0, is_branch=True)
_register(Op.IF_NULL, OperandKind.TARGET, 1, 0, is_branch=True)
_register(Op.IF_NONNULL, OperandKind.TARGET, 1, 0, is_branch=True)
_register(Op.NEW, OperandKind.CLASS, 0, 1, has_side_effect=True)
_register(Op.GETFIELD, OperandKind.FIELD, 1, 1)
_register(Op.PUTFIELD, OperandKind.FIELD, 2, 0, has_side_effect=True)
_register(Op.GETSTATIC, OperandKind.FIELD, 0, 1)
_register(Op.PUTSTATIC, OperandKind.FIELD, 1, 0, has_side_effect=True)
_register(Op.NEWARRAY, OperandKind.CLASS, 1, 1, has_side_effect=True)
_register(Op.ALOAD, OperandKind.NONE, 2, 1)
_register(Op.ASTORE, OperandKind.NONE, 3, 0, has_side_effect=True)
_register(Op.ARRAYLENGTH, OperandKind.NONE, 1, 1)
_register(Op.INSTANCEOF, OperandKind.CLASS, 1, 1)
_register(Op.CHECKCAST, OperandKind.CLASS, 1, 1)
_register(Op.INVOKESTATIC, OperandKind.METHOD, -1, -1, has_side_effect=True)
_register(Op.INVOKEVIRTUAL, OperandKind.METHOD, -1, -1, has_side_effect=True)
_register(Op.INVOKESPECIAL, OperandKind.METHOD, -1, -1, has_side_effect=True)
_register(Op.MONITORENTER, OperandKind.NONE, 1, 0, has_side_effect=True)
_register(Op.MONITOREXIT, OperandKind.NONE, 1, 0, has_side_effect=True)
_register(Op.RETURN, OperandKind.NONE, 0, 0, is_terminator=True)
_register(Op.RETURN_VALUE, OperandKind.NONE, 1, 0, is_terminator=True)
_register(Op.THROW, OperandKind.NONE, 1, 0, is_terminator=True)

#: Branch opcodes that compare two integer operands.
INT_COMPARE_BRANCHES = frozenset(
    (Op.IF_EQ, Op.IF_NE, Op.IF_LT, Op.IF_LE, Op.IF_GT, Op.IF_GE))

#: Branch opcodes that compare two reference operands.
REF_COMPARE_BRANCHES = frozenset((Op.IF_ACMP_EQ, Op.IF_ACMP_NE))

#: Branch opcodes testing a single reference against null.
NULL_BRANCHES = frozenset((Op.IF_NULL, Op.IF_NONNULL))

#: All conditional branch opcodes.
CONDITIONAL_BRANCHES = (INT_COMPARE_BRANCHES | REF_COMPARE_BRANCHES
                        | NULL_BRANCHES)

#: Opcodes that end a basic block.
BLOCK_TERMINATORS = frozenset(
    op for op, info in OP_INFO.items()
    if info.is_terminator or info.is_branch)

#: Opcodes that invoke another method.
INVOKES = frozenset((Op.INVOKESTATIC, Op.INVOKEVIRTUAL, Op.INVOKESPECIAL))


def info(op):
    """Return the :class:`OpInfo` for *op*."""
    return OP_INFO[op]
