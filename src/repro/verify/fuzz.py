"""Coverage-guided differential fuzzer.

One fuzz iteration:

1. Generate a random MJ program (:mod:`repro.verify.generator`), either
   from a fresh seed or by mutating the recorded *choice sequence* of a
   previously interesting program.
2. Compile every method under PEA with the full
   :class:`~repro.verify.verifier.GraphVerifier` running after every
   phase; collect *coverage keys* (IR node kinds in the final graph,
   PEA statistic buckets, plan-lowering fallback).
3. Run the same warm-up + probe call sequence under seven engines —
   the reference bytecode interpreter, the legacy
   :class:`GraphInterpreter` backend, the threaded-code plan backend,
   the generated-Python codegen backend, the plan backend with
   interprocedural escape summaries (``escape_tier="pea+summaries"``),
   the plan backend under the connection-graph fast tier
   (``escape_tier="conngraph"`` — no PEA; flow-insensitive escape
   analysis drives stack allocation and lock elision instead), and the
   plan backend with deoptless continuation dispatch
   (``deoptless=True``) — and compare per-call return values,
   heap allocation counts, monitor balance, deopt counts and the final
   static object graph (the rematerialized escape state).  The
   summary and deoptless engines must match the plan engine on every
   observable and may only *lower* the allocation count.  The
   conngraph engine compiles *different* code (no virtualization, so
   deopt schedules and elided monitor pairs legitimately diverge from
   the PEA engines); it is held to the reference invariants — identical
   results and statics, balanced monitors, allocations bounded by the
   interpreter's.
4. Programs that exercise new coverage are queued for mutation; a
   mismatch or verifier failure is delta-debugged down to a minimal
   reproducer (:mod:`repro.verify.shrink`) and persisted to the
   corpus as ``.jasm`` + expected-metrics ``.json``.

Probe arguments include the generator's ``MAGIC_VALUES``, which warm-up
never passes: branches comparing parameters against them are compiled
as speculative guards, so probes force deoptimization with
rematerialization.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..bytecode import Interpreter
from ..bytecode.asmtext import to_asm
from ..jit import VM, CompilationCache, CompilerConfig
from ..lang import compile_source
from .generator import MAGIC_VALUES, GeneratedProgram, ProgramGenerator

#: Arguments used while warming up (must avoid every magic value).
WARM_ARGS = (3, 4)
WARM_CALLS = 6
#: Probe calls run after warm-up, statics accumulating across them.
PROBE_CALLS = (
    (3, 4),
    (MAGIC_VALUES[0], 4),
    (3, MAGIC_VALUES[1]),
    (MAGIC_VALUES[2], MAGIC_VALUES[3]),
    (-7, 11),
)
#: How deep the final static object graph is compared.
SUMMARY_DEPTH = 4

ENTRY = "Main.entry"


# -- choice sequences --------------------------------------------------------


class RecordingSource:
    """A ``rand_int`` that records every drawn value, so the program can
    be regenerated (and mutated) from the flat integer list."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.choices: List[int] = []

    def rand_int(self, lo: int, hi: int) -> int:
        value = self.rng.randint(lo, hi)
        self.choices.append(value)
        return value


class ReplaySource:
    """Replays a recorded choice sequence.  Out-of-range values (after
    mutation) are renormalized into the requested interval; an exhausted
    sequence falls back to fresh randomness.  Draws are re-recorded so
    the offspring can itself be mutated."""

    def __init__(self, choices: List[int], rng: random.Random):
        self.pending = list(choices)
        self.rng = rng
        self.choices: List[int] = []

    def rand_int(self, lo: int, hi: int) -> int:
        if self.pending:
            raw = self.pending.pop(0)
            span = hi - lo + 1
            value = lo + (raw - lo) % span
        else:
            value = self.rng.randint(lo, hi)
        self.choices.append(value)
        return value


def mutate_choices(choices: List[int], rng: random.Random) -> List[int]:
    """Produce a structurally related choice sequence: point mutations,
    a splice deletion, or a tail truncation."""
    mutated = list(choices)
    if not mutated:
        return mutated
    op = rng.randrange(4)
    if op == 0:  # point mutations
        for _ in range(rng.randint(1, max(1, len(mutated) // 8))):
            mutated[rng.randrange(len(mutated))] = rng.randint(-16, 40)
    elif op == 1 and len(mutated) > 4:  # splice out a window
        start = rng.randrange(len(mutated) - 2)
        end = min(len(mutated), start + rng.randint(1, 8))
        del mutated[start:end]
    elif op == 2:  # truncate: the tail regenerates freshly
        mutated = mutated[:rng.randint(1, len(mutated))]
    else:  # duplicate a window (grows structure)
        start = rng.randrange(len(mutated))
        end = min(len(mutated), start + rng.randint(1, 6))
        mutated[start:start] = mutated[start:end]
    return mutated


# -- differential oracle ------------------------------------------------------


@dataclass
class EngineOutcome:
    """Observable behaviour of one engine over the probe sequence."""

    results: List[object]
    allocations: int
    monitor_enters: int
    monitor_exits: int
    deopts: int
    invalidations: int
    g0_summary: object
    gi: object
    osr_entries: int = 0
    dispatches: int = 0


@dataclass
class Failure:
    """One confirmed fuzz failure."""

    category: str
    detail: str
    program: GeneratedProgram
    source: str
    shrunk: Optional[GeneratedProgram] = None

    def reproducer(self) -> GeneratedProgram:
        return self.shrunk if self.shrunk is not None else self.program


def summarize_value(value, depth: int = SUMMARY_DEPTH,
                    _seen: Optional[Set[int]] = None):
    """A structural, identity-free summary of a runtime value, used to
    compare (rematerialized) object graphs across engines."""
    from ..bytecode.heap import Arr, Obj
    if _seen is None:
        _seen = set()
    if isinstance(value, Obj):
        if id(value) in _seen or depth <= 0:
            return "<...>"
        _seen.add(id(value))
        return {"class": value.class_name,
                "fields": {name: summarize_value(v, depth - 1, _seen)
                           for name, v in sorted(value.fields.items())}}
    if isinstance(value, Arr):
        if id(value) in _seen or depth <= 0:
            return "<...>"
        _seen.add(id(value))
        return {"array": value.elem_type,
                "elements": [summarize_value(v, depth - 1, _seen)
                             for v in value.elements]}
    return value


def run_engine_interpreter(make_program: Callable[[], object],
                           probes=PROBE_CALLS) -> EngineOutcome:
    program = make_program()
    interp = Interpreter(program)
    before = interp.heap.stats.copy()
    results = [interp.call(ENTRY, *args) for args in probes]
    delta = interp.heap.stats.delta(before)
    return EngineOutcome(
        results, delta.allocations, delta.monitor_enters,
        delta.monitor_exits, deopts=0, invalidations=0,
        g0_summary=summarize_value(program.get_static("Main", "g0")),
        gi=program.get_static("Main", "gi"))


def run_engine_vm(make_program: Callable[[], object], backend: str,
                  probes=PROBE_CALLS,
                  cache: Optional[CompilationCache] = None,
                  escape_tier: str = "pea",
                  service_address: Optional[str] = None,
                  deoptless: bool = False) -> EngineOutcome:
    program = make_program()
    # osr_threshold sits below the hot-loop generator shape's trip
    # count so "hot loop in a cold method" programs tier up at the
    # backedge during the very first call.  With a compile service the
    # engines block on every reply (compile_service_wait): compile
    # points then line up call-for-call with in-process compilation,
    # so the differential oracle stays deterministic.
    # speculation_min_samples sits at the warm-up call count: straight-
    # line branches then carry exactly enough profile to speculate at
    # the method-entry compile, not just the loop-body branches that
    # accumulate trip-count samples.  Probe deopts therefore land both
    # *before* loops (continuation-eligible, exercising deoptless
    # dispatch) and inside them (exercising its plain-deopt fallback).
    config = CompilerConfig.partial_escape(
        compile_threshold=3, osr_threshold=25,
        speculation_min_samples=3,
        execution_backend=backend,
        escape_tier=escape_tier,
        compile_service=service_address,
        compile_service_wait=service_address is not None,
        deoptless=deoptless)
    vm = VM(program, config, cache=cache)
    for _ in range(WARM_CALLS):
        vm.call(ENTRY, *WARM_ARGS)
        program.reset_statics()
    before = vm.heap_snapshot()
    results = [vm.call(ENTRY, *args) for args in probes]
    delta = vm.heap_snapshot().delta(before)
    return EngineOutcome(
        results, delta.allocations, delta.monitor_enters,
        delta.monitor_exits, deopts=vm.exec_stats.deopts,
        invalidations=vm.invalidations,
        g0_summary=summarize_value(program.get_static("Main", "g0")),
        gi=program.get_static("Main", "gi"),
        osr_entries=vm.osr_entries,
        dispatches=vm.deoptless.dispatches)


def compare_outcomes(outcomes: Dict[str, EngineOutcome]
                     ) -> Optional[Tuple[str, str]]:
    """Return ``(category, detail)`` for the first divergence between
    engines, or ``None`` when every differential invariant holds."""
    reference = outcomes["interp"]
    for name, outcome in outcomes.items():
        if outcome.results != reference.results:
            return ("result-mismatch",
                    f"{name} returned {outcome.results}, interpreter "
                    f"returned {reference.results}")
        if outcome.monitor_enters != outcome.monitor_exits:
            return ("monitor-mismatch",
                    f"{name} monitors unbalanced: "
                    f"{outcome.monitor_enters} enters / "
                    f"{outcome.monitor_exits} exits")
        if (outcome.g0_summary != reference.g0_summary
                or outcome.gi != reference.gi):
            return ("static-mismatch",
                    f"{name} final statics g0={outcome.g0_summary} "
                    f"gi={outcome.gi}, interpreter "
                    f"g0={reference.g0_summary} gi={reference.gi}")
        if outcome.allocations > reference.allocations:
            return ("alloc-mismatch",
                    f"{name} allocated {outcome.allocations} > "
                    f"interpreter {reference.allocations} — PEA must "
                    "never add dynamic allocations")
    plan = outcomes["plan"]
    for name in ("legacy", "codegen"):
        other = outcomes.get(name)
        if other is None:
            continue
        if other.allocations != plan.allocations:
            return ("alloc-mismatch",
                    f"{name} allocated {other.allocations}, plan "
                    f"{plan.allocations} (backends must be "
                    "bit-identical)")
        if (other.monitor_enters != plan.monitor_enters
                or other.deopts != plan.deopts
                or other.osr_entries != plan.osr_entries):
            return ("backend-mismatch",
                    f"{name} monitors={other.monitor_enters} "
                    f"deopts={other.deopts} osr={other.osr_entries}; "
                    f"plan monitors={plan.monitor_enters} "
                    f"deopts={plan.deopts} osr={plan.osr_entries}")
    summaries = outcomes.get("summaries")
    if summaries is not None:
        # Interprocedural escape summaries are a pure optimization:
        # everything observable must match the summary-less plan engine
        # (results/statics already checked against the interpreter
        # above), and heap allocations may only go *down*.
        if (summaries.monitor_enters != plan.monitor_enters
                or summaries.deopts != plan.deopts
                or summaries.osr_entries != plan.osr_entries):
            return ("summary-mismatch",
                    f"summaries monitors={summaries.monitor_enters} "
                    f"deopts={summaries.deopts} "
                    f"osr={summaries.osr_entries}; plan "
                    f"monitors={plan.monitor_enters} "
                    f"deopts={plan.deopts} osr={plan.osr_entries}")
        if summaries.allocations > plan.allocations:
            return ("summary-alloc-mismatch",
                    f"escape summaries allocated "
                    f"{summaries.allocations} > baseline "
                    f"{plan.allocations} — summaries must never add "
                    "heap allocations")
    # The conngraph engine needs no section of its own: it compiles
    # genuinely different code (no virtualization), so deopt schedules,
    # elided monitor pairs and allocation counts all legitimately
    # diverge from the PEA engines.  The reference loop above already
    # pins everything it must satisfy — identical results and statics,
    # balanced monitors, allocations bounded by the interpreter's.
    deoptless = outcomes.get("deoptless")
    if deoptless is not None:
        # Deoptless replaces interpreted deopt bridges with compiled
        # continuations.  The generic reference loop above already
        # pins the hard invariants — identical per-call results and
        # final statics (the checksums), balanced monitors, and
        # allocations bounded by the interpreter.  Allocation and
        # monitor-enter *counts* are deliberately not compared against
        # the plan engine once a dispatch happened: a continuation is
        # compiled code, so it can hit further guards the interpreted
        # bridge would simply execute — deopt totals and therefore
        # invalidation schedules diverge by design, and the
        # post-invalidation recompiles elide different allocations and
        # monitor pairs.  When *no* dispatch was attempted, though,
        # deoptless was pure overhead-free observation and the two
        # configurations must be bit-identical.
        untouched = (deoptless.dispatches == 0
                     and not outcomes["plan"].deopts
                     and not deoptless.deopts)
        if untouched and (
                deoptless.allocations != plan.allocations
                or deoptless.monitor_enters != plan.monitor_enters
                or deoptless.osr_entries != plan.osr_entries):
            return ("deoptless-off-path-mismatch",
                    f"no deopt occurred, yet deoptless "
                    f"allocs={deoptless.allocations} "
                    f"monitors={deoptless.monitor_enters} "
                    f"osr={deoptless.osr_entries}; plan "
                    f"allocs={plan.allocations} "
                    f"monitors={plan.monitor_enters} "
                    f"osr={plan.osr_entries}")
    return None


# -- one fuzz iteration ---------------------------------------------------------


@dataclass
class CheckResult:
    failure: Optional[Tuple[str, str]]
    coverage: Set[str] = field(default_factory=set)


def check_source(source: str,
                 cache: Optional[CompilationCache] = None,
                 service_address: Optional[str] = None) -> CheckResult:
    """Compile (with the verifier always on) and differentially execute
    one program; returns the failure (if any) and its coverage keys.

    A shared *cache* lets the two VM engines reuse each other's
    compilations: both warm up identically, so their profiles agree at
    every compile point and the recorded speculation facts validate.
    Each engine still builds its own Program — cached graphs rebind to
    the requesting program's methods at load.

    With *service_address*, every VM engine routes its compilations
    through that shared compile service (blocking per compile), so one
    fuzz run differentially exercises the full service path: program
    transport, service-side compilation, fact validation at install."""
    from ..jit import Compiler
    from .verifier import GraphVerificationError

    coverage: Set[str] = set()
    try:
        program = compile_source(source)
        compiler = Compiler(program,
                            CompilerConfig.partial_escape(
                                verify_ir=True),
                            cache=cache)
        for name in ("entry", "h1", "h2"):
            result = compiler.compile(program.method(f"Main.{name}"))
            for node in result.graph.nodes():
                coverage.add(type(node).__name__)
            ea = result.ea_result
            if ea.virtualized_allocations:
                coverage.add("pea:virtualized")
            if ea.materializations:
                coverage.add("pea:materialized")
            if ea.removed_monitor_pairs:
                coverage.add("pea:monitor-elision")
            if result.plan is None:
                coverage.add("plan:fallback")
    except GraphVerificationError as error:
        return CheckResult(("verifier", str(error)), coverage)
    except Exception as error:  # compiler crash: always a finding
        return CheckResult(
            ("compile-crash", f"{type(error).__name__}: {error}"),
            coverage)

    make_program = lambda: compile_source(source)  # noqa: E731
    outcomes: Dict[str, EngineOutcome] = {}
    for name, runner in (
            ("interp", run_engine_interpreter),
            ("legacy", lambda p: run_engine_vm(
                p, "legacy", cache=cache,
                service_address=service_address)),
            ("plan", lambda p: run_engine_vm(
                p, "plan", cache=cache,
                service_address=service_address)),
            ("codegen", lambda p: run_engine_vm(
                p, "codegen", cache=cache,
                service_address=service_address)),
            ("summaries", lambda p: run_engine_vm(
                p, "plan", cache=cache, escape_tier="pea+summaries",
                service_address=service_address)),
            ("conngraph", lambda p: run_engine_vm(
                p, "plan", cache=cache, escape_tier="conngraph",
                service_address=service_address)),
            ("deoptless", lambda p: run_engine_vm(
                p, "plan", cache=cache, deoptless=True,
                service_address=service_address))):
        try:
            outcomes[name] = runner(make_program)
        except GraphVerificationError as error:
            return CheckResult(("verifier", str(error)), coverage)
        except Exception as error:
            return CheckResult(
                ("runtime-crash",
                 f"{name}: {type(error).__name__}: {error}"), coverage)
    if any(o.deopts for o in outcomes.values()):
        coverage.add("run:deopt")
    if any(o.osr_entries for o in outcomes.values()):
        coverage.add("run:osr")
    if any(o.invalidations for o in outcomes.values()):
        coverage.add("run:invalidation")
    if any(o.dispatches for o in outcomes.values()):
        coverage.add("run:dispatch")
    return CheckResult(compare_outcomes(outcomes), coverage)


def check_program(program: GeneratedProgram,
                  cache: Optional[CompilationCache] = None,
                  service_address: Optional[str] = None
                  ) -> CheckResult:
    return check_source(program.source(), cache=cache,
                        service_address=service_address)


# -- corpus ---------------------------------------------------------------------


def save_corpus_entry(corpus_dir: str, name: str,
                      program: GeneratedProgram,
                      category: str, detail: str = "") -> str:
    """Persist a reproducer: ``<name>.jasm`` (assembler round-trip of
    the compiled bytecode) plus ``<name>.json`` (probe calls + the
    reference interpreter's expected behaviour)."""
    os.makedirs(corpus_dir, exist_ok=True)
    source = program.source()
    compiled = compile_source(source)
    expected = run_engine_interpreter(lambda: compile_source(source))
    jasm_path = os.path.join(corpus_dir, f"{name}.jasm")
    with open(jasm_path, "w") as handle:
        handle.write(f"; fuzz reproducer: {category}\n")
        handle.write(to_asm(compiled))
    meta = {
        "category": category,
        "detail": detail,
        "entry": ENTRY,
        "warm_args": list(WARM_ARGS),
        "warm_calls": WARM_CALLS,
        "probe_calls": [list(args) for args in PROBE_CALLS],
        "expected": {
            "results": expected.results,
            "allocations": expected.allocations,
            "monitor_enters": expected.monitor_enters,
            "monitor_exits": expected.monitor_exits,
            "g0": expected.g0_summary,
            "gi": expected.gi,
        },
        "source": source,
    }
    with open(os.path.join(corpus_dir, f"{name}.json"), "w") as handle:
        json.dump(meta, handle, indent=2)
        handle.write("\n")
    return jasm_path


def replay_corpus_entry(jasm_path: str,
                        cache: Optional[CompilationCache] = None
                        ) -> Optional[Tuple[str, str]]:
    """Re-run one persisted reproducer under all seven engines and
    check it against its recorded expectations.  Returns ``None`` when
    everything still agrees, else ``(category, detail)``."""
    from ..bytecode.asmtext import assemble

    with open(jasm_path) as handle:
        text = handle.read()
    meta_path = jasm_path[:-len(".jasm")] + ".json"
    with open(meta_path) as handle:
        meta = json.load(handle)
    probes = tuple(tuple(args) for args in meta["probe_calls"])
    make_program = lambda: assemble(text)  # noqa: E731

    outcomes = {
        "interp": run_engine_interpreter(make_program, probes),
        "legacy": run_engine_vm(make_program, "legacy", probes,
                                cache=cache),
        "plan": run_engine_vm(make_program, "plan", probes, cache=cache),
        "codegen": run_engine_vm(make_program, "codegen", probes,
                                 cache=cache),
        "summaries": run_engine_vm(make_program, "plan", probes,
                                   cache=cache,
                                   escape_tier="pea+summaries"),
        "conngraph": run_engine_vm(make_program, "plan", probes,
                                   cache=cache, escape_tier="conngraph"),
        "deoptless": run_engine_vm(make_program, "plan", probes,
                                   cache=cache, deoptless=True),
    }
    expected = meta["expected"]
    reference = outcomes["interp"]
    if reference.results != expected["results"]:
        return ("corpus-drift",
                f"interpreter now returns {reference.results}, "
                f"recorded {expected['results']}")
    if reference.allocations != expected["allocations"]:
        return ("corpus-drift",
                f"interpreter now allocates {reference.allocations}, "
                f"recorded {expected['allocations']}")
    if (reference.g0_summary != expected["g0"]
            or reference.gi != expected["gi"]):
        return ("corpus-drift",
                f"interpreter statics now g0={reference.g0_summary} "
                f"gi={reference.gi}, recorded g0={expected['g0']} "
                f"gi={expected['gi']}")
    return compare_outcomes(outcomes)


# -- the fuzz loop --------------------------------------------------------------


@dataclass
class FuzzReport:
    programs_run: int = 0
    coverage: Set[str] = field(default_factory=set)
    coverage_adds: int = 0
    failures: List[Failure] = field(default_factory=list)


class Fuzzer:
    """The coverage-guided loop.  ``check`` is injectable so tests can
    fuzz against a deliberately broken oracle."""

    def __init__(self, seed: int, corpus_dir: Optional[str] = None,
                 shrink: bool = True,
                 check: Optional[Callable[[GeneratedProgram],
                                          CheckResult]] = None,
                 log: Callable[[str], None] = lambda message: None,
                 cache: Optional[CompilationCache] = None,
                 service_address: Optional[str] = None):
        self.rng = random.Random(seed)
        self.seed = seed
        self.corpus_dir = corpus_dir
        self.shrink = shrink
        self.cache = cache
        self.service_address = service_address
        if check is None:
            check = lambda program: check_program(  # noqa: E731
                program, cache=self.cache,
                service_address=self.service_address)
        self.check = check
        self.log = log
        #: Choice sequences that exercised new coverage.
        self.queue: List[List[int]] = []
        self.report = FuzzReport()

    def _generate(self) -> Tuple[GeneratedProgram, List[int]]:
        if self.queue and self.rng.random() < 0.5:
            parent = self.queue[self.rng.randrange(len(self.queue))]
            source = ReplaySource(mutate_choices(parent, self.rng),
                                  self.rng)
        else:
            source = RecordingSource(self.rng)
        program = ProgramGenerator(source.rand_int).generate_program()
        return program, source.choices

    def run(self, programs: int) -> FuzzReport:
        for index in range(programs):
            program, choices = self._generate()
            result = self.check(program)
            self.report.programs_run += 1
            fresh = result.coverage - self.report.coverage
            if fresh:
                self.report.coverage |= fresh
                self.report.coverage_adds += 1
                self.queue.append(choices)
            if result.failure is not None:
                self._handle_failure(program, result.failure, index)
            if (index + 1) % 25 == 0:
                self.log(f"[{index + 1}/{programs}] "
                         f"coverage={len(self.report.coverage)} "
                         f"queue={len(self.queue)} "
                         f"failures={len(self.report.failures)}")
        return self.report

    def _handle_failure(self, program: GeneratedProgram,
                        failure: Tuple[str, str], index: int) -> None:
        category, detail = failure
        self.log(f"FAILURE [{category}] at program {index}: {detail}")
        record = Failure(category, detail, program, program.source())
        if self.shrink:
            from .shrink import shrink_program

            def same_failure(candidate: GeneratedProgram) -> bool:
                try:
                    outcome = self.check(candidate)
                except Exception:
                    return False
                return (outcome.failure is not None
                        and outcome.failure[0] == category)

            record.shrunk = shrink_program(program, same_failure)
            self.log(f"shrunk {program.statement_count()} -> "
                     f"{record.shrunk.statement_count()} statements")
        self.report.failures.append(record)
        if self.corpus_dir is not None:
            name = f"fuzz-{self.seed}-{index}-{category}"
            path = save_corpus_entry(self.corpus_dir, name,
                                     record.reproducer(), category,
                                     detail)
            self.log(f"reproducer written to {path}")


def fuzz(programs: int, seed: int, corpus_dir: Optional[str] = None,
         shrink: bool = True,
         log: Callable[[str], None] = lambda message: None,
         cache: Optional[CompilationCache] = None,
         service_address: Optional[str] = None) -> FuzzReport:
    """Run the coverage-guided differential fuzz loop."""
    return Fuzzer(seed, corpus_dir=corpus_dir, shrink=shrink,
                  log=log, cache=cache,
                  service_address=service_address).run(programs)
