"""Correctness tooling: the IR invariant verifier and the differential
fuzzer.

- :mod:`repro.verify.verifier` — :class:`GraphVerifier`, run after every
  phase when ``CompilerConfig.verify_ir`` is set (always on under
  pytest via the ``REPRO_VERIFY_IR`` environment variable).
- :mod:`repro.verify.generator` — the random MJ program generator,
  biased toward the control-flow/allocation shapes Partial Escape
  Analysis transforms.
- :mod:`repro.verify.fuzz` — the coverage-guided differential fuzzer
  (``repro fuzz``): interpreter vs. legacy graph interpreter vs.
  threaded-code plan backend.
- :mod:`repro.verify.shrink` — delta-debugging shrinker producing
  minimal reproducers for ``tests/corpus/``.
"""

from .verifier import GraphVerificationError, GraphVerifier, verify_graph

__all__ = ["GraphVerificationError", "GraphVerifier", "verify_graph"]
