"""The graph-invariant verifier.

:class:`GraphVerifier` checks every invariant the compiler relies on but
:meth:`repro.ir.graph.Graph.verify` (the cheap structural check) cannot
see:

- **SSA def-dominates-use** — every value consumed by a fixed node (or by
  the floating expression tree hanging off one) must be defined in a
  block that dominates the consumer's block; phi inputs must dominate
  the corresponding predecessor's block.
- **CFG well-formedness** — a unique Start, every End feeding exactly
  one Merge, merge/phi arity agreement, LoopBegin/LoopEnd pairing,
  control splits with all successors present and distinct, no
  registered-but-unreachable fixed nodes.
- **FrameState completeness** — every deoptimization point (Deoptimize,
  FixedGuard) carries a frame state whose local count matches the
  method, and every virtual object reachable from a frame state has an
  EscapeObjectState mapping somewhere on the state's outer chain (the
  deoptimizer would otherwise be unable to rematerialize it).
- **PEA-specific invariants** — EscapeObjectState field maps are fully
  populated (one entry per field/element), virtual nodes are referenced
  *only* from frame-state machinery (never as an operand of real code:
  an escaped use must see the materialized value), and phi inputs are
  never virtual.

Violations raise :class:`GraphVerificationError` carrying the full list
of findings, so a broken phase reports everything it broke at once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.graph import Graph
from ..ir.node import (ControlSinkNode, ControlSplitNode, FixedNode,
                       FixedWithNextNode, IRError, Node)
from ..ir.nodes import (BeginNode, ConstantNode, DeoptimizeNode, EndNode,
                        EscapeObjectStateNode, FixedGuardNode,
                        FrameStateNode, IfNode, LoopBeginNode, LoopEndNode,
                        LoopExitNode, MergeNode, ParameterNode, PhiNode,
                        StartNode, VirtualObjectNode)
from ..scheduler.cfg import ControlFlowGraph, IRBlock


class GraphVerificationError(IRError):
    """One or more IR invariants are broken."""

    def __init__(self, graph: Graph, findings: List[str],
                 phase: Optional[str] = None):
        self.findings = list(findings)
        self.phase = phase
        where = f" after phase '{phase}'" if phase else ""
        name = graph.method.qualified_name if graph.method else "?"
        lines = "\n  - ".join(self.findings)
        super().__init__(
            f"{len(self.findings)} IR invariant violation(s) in "
            f"{name}{where}:\n  - {lines}")


#: Floating leaves that are defined "everywhere" (no runtime def site).
_ALWAYS_AVAILABLE = (ConstantNode, ParameterNode)


class GraphVerifier:
    """Checks the full invariant set over one graph.

    Use :func:`verify_graph` for the raise-on-failure entry point; the
    class itself collects findings so callers (and tests) can inspect
    everything that is wrong at once.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.findings: List[str] = []
        self._cfg: Optional[ControlFlowGraph] = None
        #: memo for def-dominates-use checks: (node, use_block) pairs
        #: already proven fine.
        self._dom_ok: Set[Tuple[Node, IRBlock]] = set()

    # -- public ------------------------------------------------------------

    def run(self) -> List[str]:
        """Run every check; returns the list of findings (empty = OK)."""
        self._check_structure()
        if not self.findings:
            cfg = self._build_cfg()
            if cfg is not None:
                self._check_cfg(cfg)
                self._check_dominance(cfg)
        self._check_frame_states()
        self._check_pea_invariants()
        self._check_osr_entry()
        return self.findings

    # -- helpers -----------------------------------------------------------

    def _report(self, message: str):
        self.findings.append(message)

    def _build_cfg(self) -> Optional[ControlFlowGraph]:
        if self._cfg is not None:
            return self._cfg
        if self.graph.start is None:
            self._report("graph has no start node")
            return None
        try:
            self._cfg = ControlFlowGraph(self.graph)
        except IRError as exc:
            self._report(f"CFG construction failed: {exc}")
            return None
        return self._cfg

    # -- layer 1: structural bookkeeping -----------------------------------

    def _check_structure(self):
        """The Graph.verify invariants, reported instead of raised."""
        try:
            self.graph.verify()
        except IRError as exc:
            self._report(f"structural: {exc}")
            return
        # Usage bookkeeping in the reverse direction: every recorded
        # usage must actually reference the node it claims to use.
        for node in self.graph.nodes():
            for user in node.usages:
                if not any(inp is node for inp in user.inputs()):
                    self._report(
                        f"usage bookkeeping: {user} recorded as a user "
                        f"of {node} but has no such input")

    # -- layer 2: CFG well-formedness --------------------------------------

    def _check_cfg(self, cfg: ControlFlowGraph):
        graph = self.graph
        reachable = set(cfg.block_of)
        starts = [n for n in graph.nodes() if isinstance(n, StartNode)]
        if len(starts) != 1:
            self._report(f"expected exactly one Start node, found "
                         f"{len(starts)}")
        elif starts[0] is not graph.start:
            self._report(f"graph.start is {graph.start}, but the "
                         f"registered Start is {starts[0]}")

        for node in graph.nodes():
            if not node.is_fixed:
                continue
            if node not in reachable:
                self._report(f"fixed node {node} is registered but "
                             f"unreachable from start")
                continue
            if isinstance(node, EndNode) and \
                    not isinstance(node, LoopEndNode):
                merges = [u for u in node.usages
                          if isinstance(u, MergeNode)
                          and node in u.ends.snapshot()]
                if len(merges) != 1:
                    self._report(f"{node} must feed exactly one merge, "
                                 f"feeds {len(merges)}")
            if isinstance(node, MergeNode):
                self._check_merge(node)
            if isinstance(node, LoopEndNode):
                begin = node.loop_begin
                if not isinstance(begin, LoopBeginNode):
                    self._report(f"{node} loop_begin is {begin!r}, not a "
                                 f"LoopBegin")
                elif node not in begin.loop_ends.snapshot():
                    self._report(f"{node} missing from "
                                 f"{begin}.loop_ends")
            if isinstance(node, LoopExitNode):
                if not isinstance(node.loop_begin, LoopBeginNode):
                    self._report(f"{node} loop_begin is "
                                 f"{node.loop_begin!r}, not a LoopBegin")
            if isinstance(node, ControlSplitNode):
                succs = list(node.successors())
                expected = len(node._all_successor_slots())
                if len(succs) != expected:
                    self._report(f"{node} has {len(succs)} successors, "
                                 f"expected {expected}")
                elif len(set(map(id, succs))) != len(succs):
                    self._report(f"{node} successors are not distinct")
                if isinstance(node, IfNode) and node.condition is None:
                    self._report(f"{node} has no condition")

    def _check_merge(self, merge: MergeNode):
        arity = merge.phi_input_count()
        if arity == 0:
            self._report(f"{merge} has no incoming ends")
        for end in merge.ends.snapshot():
            if not isinstance(end, EndNode) or isinstance(end,
                                                          LoopEndNode):
                self._report(f"{merge} forward end {end} is not an End")
        if isinstance(merge, LoopBeginNode):
            if len(merge.ends) == 0:
                self._report(f"{merge} has no forward entry")
            if len(merge.loop_ends) == 0:
                self._report(f"{merge} has no back edges (dissolved "
                             f"loops must become plain merges)")
            for loop_end in merge.loop_ends.snapshot():
                if not isinstance(loop_end, LoopEndNode):
                    self._report(f"{merge} back edge {loop_end} is not "
                                 f"a LoopEnd")
                elif loop_end.loop_begin is not merge:
                    self._report(f"{loop_end}.loop_begin is not {merge}")
        for phi in merge.phis():
            if len(phi.values) != arity:
                self._report(f"{phi} has {len(phi.values)} inputs, "
                             f"merge {merge} expects {arity}")

    # -- layer 3: SSA dominance --------------------------------------------

    def _check_dominance(self, cfg: ControlFlowGraph):
        for block in cfg.blocks:
            for node in block.nodes:
                for name, value in node.named_inputs():
                    if self._is_control_input(name, value):
                        continue
                    self._check_available(value, block,
                                          f"{node} input {name}", cfg)
        # Phi inputs must be available at the corresponding predecessor.
        for phi in self.graph.nodes_of(PhiNode):
            merge = phi.merge
            if merge is None or merge not in cfg.block_of:
                continue
            anchors = list(merge.ends.snapshot())
            if isinstance(merge, LoopBeginNode):
                anchors += list(merge.loop_ends.snapshot())
            for index, value in enumerate(phi.values):
                if value is None or index >= len(anchors):
                    continue
                anchor_block = cfg.block_of.get(anchors[index])
                if anchor_block is None:
                    continue
                self._check_available(value, anchor_block,
                                      f"{phi} input [{index}]", cfg)

    @staticmethod
    def _is_control_input(name: str, value: Node) -> bool:
        """Merge ``ends``/``loop_ends`` lists and ``loop_begin`` slots
        are control-flow bookkeeping expressed as inputs — they are not
        value uses and carry no dominance obligation."""
        return (isinstance(value, (EndNode, LoopEndNode))
                or name == "loop_begin"
                or name.startswith(("ends[", "loop_ends[")))

    def _check_available(self, value: Optional[Node], use_block: IRBlock,
                         what: str, cfg: ControlFlowGraph,
                         _stack: Optional[Set[Node]] = None):
        """*value* (and its floating expression tree) must be defined in
        blocks dominating *use_block*."""
        if value is None or isinstance(value, _ALWAYS_AVAILABLE) or \
                isinstance(value, VirtualObjectNode):
            return
        key = (value, use_block)
        if key in self._dom_ok:
            return
        if value.is_fixed:
            def_block = cfg.block_of.get(value)
            if def_block is None:
                self._report(f"{what}: fixed def {value} is unreachable")
            elif not cfg.dominates(def_block, use_block):
                self._report(
                    f"{what}: def {value} (block {def_block.index}) "
                    f"does not dominate use (block {use_block.index})")
            else:
                self._dom_ok.add(key)
            return
        if isinstance(value, PhiNode):
            merge = value.merge
            def_block = cfg.block_of.get(merge) if merge is not None \
                else None
            if def_block is None:
                self._report(f"{what}: phi {value} has no reachable "
                             f"merge")
            elif not cfg.dominates(def_block, use_block):
                self._report(
                    f"{what}: phi {value} (merge block "
                    f"{def_block.index}) does not dominate use (block "
                    f"{use_block.index})")
            else:
                self._dom_ok.add(key)
            return
        # Other floating node: recurse into its inputs.
        stack = _stack if _stack is not None else set()
        if value in stack:
            self._report(f"{what}: floating cycle through {value}")
            return
        stack.add(value)
        for inp in value.inputs():
            self._check_available(inp, use_block, f"{what} via {value}",
                                  cfg, stack)
        stack.discard(value)
        self._dom_ok.add(key)

    # -- layer 4: frame states ---------------------------------------------

    def _iter_reachable_states(self):
        """Frame states anchored at fixed nodes (with their anchors),
        walking outer chains."""
        seen: Set[FrameStateNode] = set()
        for node in self.graph.nodes():
            if not node.is_fixed:
                continue
            for name in ("state", "state_after", "state_before"):
                state = getattr(node, name, None)
                if isinstance(state, FrameStateNode):
                    for outer in state.outer_chain():
                        if outer not in seen:
                            seen.add(outer)
                            yield node, outer

    def _check_frame_states(self):
        for node in self.graph.nodes():
            if isinstance(node, (DeoptimizeNode, FixedGuardNode)):
                state = node.state
                if not isinstance(state, FrameStateNode):
                    self._report(f"deopt point {node} has no frame state")
                    continue
                self._check_state_rematerializable(node, state)
            if isinstance(node, FixedGuardNode) and node.condition is \
                    None:
                self._report(f"{node} has no condition")
        for anchor, state in self._iter_reachable_states():
            method = state.method
            if method is None:
                self._report(f"{state} (at {anchor}) has no method")
                continue
            if len(state.locals_values) != method.max_locals:
                self._report(
                    f"{state} has {len(state.locals_values)} locals, "
                    f"method {method.qualified_name} declares "
                    f"{method.max_locals}")
            if method.code and not 0 <= state.bci <= len(method.code):
                self._report(f"{state} bci {state.bci} out of range for "
                             f"{method.qualified_name}")

    def _check_state_rematerializable(self, anchor: FixedNode,
                                      state: FrameStateNode):
        """Every virtual object reachable from *state* must have an
        EscapeObjectState mapping with a fully-populated field map."""
        worklist: List[VirtualObjectNode] = []
        seen: Set[VirtualObjectNode] = set()

        def note(value):
            if isinstance(value, VirtualObjectNode) and value not in seen:
                seen.add(value)
                worklist.append(value)

        for frame in state.outer_chain():
            for value in list(frame.locals_values) + \
                    list(frame.stack_values) + list(frame.locks):
                note(value)
        while worklist:
            virtual = worklist.pop()
            mapping = state.find_mapping(virtual)
            if mapping is None:
                self._report(
                    f"deopt at {anchor}: no EscapeObjectState for "
                    f"{virtual} in frame state {state} — "
                    f"rematerialization would fail")
                continue
            for entry in mapping.entries:
                note(entry)

    # -- layer 5: PEA invariants -------------------------------------------

    _STATE_MACHINERY = (FrameStateNode, EscapeObjectStateNode)

    def _check_pea_invariants(self):
        for node in self.graph.nodes():
            if isinstance(node, VirtualObjectNode):
                for user in node.usages:
                    if not isinstance(user, self._STATE_MACHINERY):
                        self._report(
                            f"virtual node {node} used by real node "
                            f"{user} — escaped uses must see the "
                            f"materialized value")
            if isinstance(node, EscapeObjectStateNode):
                virtual = node.virtual_object
                if virtual is None:
                    self._report(f"{node} has no virtual object")
                elif len(node.entries) != virtual.entry_count:
                    self._report(
                        f"{node} has {len(node.entries)} entries, "
                        f"{virtual} has {virtual.entry_count} "
                        f"fields/elements — field map not fully "
                        f"populated")
                if node.lock_count < 0:
                    self._report(f"{node} has negative lock count")
                for user in node.usages:
                    if not isinstance(user, FrameStateNode):
                        self._report(f"{node} used by non-frame-state "
                                     f"{user}")
            if isinstance(node, PhiNode):
                for index, value in enumerate(node.values):
                    if isinstance(value, VirtualObjectNode):
                        self._report(
                            f"{node} input [{index}] is virtual object "
                            f"{value} — virtual objects must be "
                            f"materialized before feeding a phi")


    # -- layer 6: OSR entry contract ---------------------------------------

    def _check_osr_entry(self):
        """An on-stack-replacement graph's parameters must map 1:1 (and
        in order) onto the interpreter local slots recorded in
        ``osr_local_slots`` — that list *is* the tier-transition frame
        mapping the runtime uses to seed the entry."""
        bci = getattr(self.graph, "osr_entry_bci", None)
        if bci is None:
            return
        slots = list(getattr(self.graph, "osr_local_slots", []))
        stack_depth = getattr(self.graph, "entry_stack_depth", 0)
        params = self.graph.parameters
        if len(params) != len(slots) + stack_depth:
            self._report(
                f"OSR graph has {len(params)} parameters but "
                f"{len(slots)} entry local slots + {stack_depth} entry "
                f"stack values")
            return
        if len(set(slots)) != len(slots):
            self._report(f"OSR entry local slots not distinct: {slots}")
        for index, param in enumerate(params):
            if param.index != index:
                self._report(
                    f"OSR parameter {param} has index {param.index}, "
                    f"expected dense index {index}")
        method = self.graph.method
        if method is not None and method.code and \
                not 0 <= bci < len(method.code):
            self._report(f"OSR entry bci {bci} out of range for "
                         f"{method.qualified_name}")


def verify_graph(graph: Graph, phase: Optional[str] = None) -> None:
    """Run :class:`GraphVerifier`; raise on any finding."""
    findings = GraphVerifier(graph).run()
    if findings:
        raise GraphVerificationError(graph, findings, phase)
