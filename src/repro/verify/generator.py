"""Random MJ program generator for differential testing and fuzzing.

Generates well-typed, terminating programs that exercise exactly the
constructs Partial Escape Analysis cares about: allocations, field
stores/loads, linked virtual objects, conditional escapes into globals,
loops with phis over (potentially virtual) objects, constant-length
arrays, synchronized blocks, reference equality, calls (inlining
fodder), and branches on "magic" argument values that stay cold during
warm-up — so speculation kicks in and probe calls force
deoptimization + rematerialization.  Programs are guaranteed free of
traps: divisions are guarded by construction, array indices are masked,
object-typed locals are always initialized, loops are counted.

Two layers:

- :class:`ProgramGenerator` draws integers from an abstract source
  (``rand_int(lo, hi)``), so the same generator runs under hypothesis
  (property tests) and under a plain seeded ``random.Random`` (the
  ``repro fuzz`` CLI).
- The output is a :class:`GeneratedProgram` — a *structured* statement
  tree, not a string — so the shrinker
  (:mod:`repro.verify.shrink`) can delta-debug statements and blocks
  and re-render minimal source.
"""

from __future__ import annotations

from typing import Callable, List, Optional

#: Values the fuzz harness probes with after warm-up; conditions
#: comparing a parameter against one of these stay cold while warming
#: and then fire, exercising deoptimization with rematerialization.
MAGIC_VALUES = (31337, 90001, -4242, 55555)


class Stmt:
    """One generated statement: a leaf (opaque text, possibly several
    lines) or a compound (``if``/``loop``/``sync``) with shrinkable
    sub-statement lists."""

    __slots__ = ("kind", "text", "header", "body", "orelse")

    def __init__(self, kind: str = "leaf", text: str = "",
                 header: str = "", body: Optional[List["Stmt"]] = None,
                 orelse: Optional[List["Stmt"]] = None):
        self.kind = kind
        self.text = text
        self.header = header
        self.body = body
        self.orelse = orelse

    @classmethod
    def leaf(cls, text: str) -> "Stmt":
        return cls("leaf", text=text)

    @classmethod
    def compound(cls, header: str, body: List["Stmt"],
                 orelse: Optional[List["Stmt"]] = None) -> "Stmt":
        return cls("compound", header=header, body=body, orelse=orelse)

    def render(self) -> str:
        if self.kind == "leaf":
            return self.text
        text = (f"{self.header} "
                f"{{ {render_statements(self.body)} }}")
        if self.orelse is not None:
            text += f" else {{ {render_statements(self.orelse)} }}"
        return text

    def copy(self) -> "Stmt":
        return Stmt(self.kind, self.text, self.header,
                    [s.copy() for s in self.body]
                    if self.body is not None else None,
                    [s.copy() for s in self.orelse]
                    if self.orelse is not None else None)

    def statement_count(self) -> int:
        count = 1
        for sub in (self.body or []) + (self.orelse or []):
            count += sub.statement_count()
        return count

    def __repr__(self):
        return f"<Stmt {self.render()[:60]!r}>"


def render_statements(statements: List[Stmt]) -> str:
    return " ".join(s.render() for s in statements) or ";"


class GeneratedProgram:
    """The structured output of one generator run: per-method statement
    lists over a fixed program skeleton."""

    METHOD_ORDER = ("h2", "h1", "entry")

    def __init__(self, bodies):
        #: method name -> list of Stmt (after the fixed prologue).
        self.bodies = bodies

    def copy(self) -> "GeneratedProgram":
        return GeneratedProgram({
            name: [s.copy() for s in stmts]
            for name, stmts in self.bodies.items()})

    def statement_count(self) -> int:
        return sum(s.statement_count()
                   for stmts in self.bodies.values() for s in stmts)

    def source(self) -> str:
        rendered = {}
        for name in self.METHOD_ORDER:
            prologue = [
                "int x0 = a;",
                "int x1 = b;",
                "int x2 = a - b;",
                "Data d0 = new Data();",
                "Data d1 = new Data();",
            ]
            epilogue = ["return x0 + x1 * 3 + x2 + d0.f0 + d0.f1 "
                        "+ d1.f0 + d1.f1;"]
            lines = prologue + [s.render() for s in
                                self.bodies.get(name, [])] + epilogue
            rendered[name] = "\n                ".join(lines)
        return f"""
            class Data {{ int f0; int f1; Data link; }}
            class Main {{
                static Data g0;
                static int gi;
                static int probe(Data t, int k) {{
                    int acc = t.f0 * 3 + t.f1;
                    acc = acc + (t.f0 + 1) * (t.f1 + 7);
                    acc = acc + (t.f0 & 63) * 9 + (t.f1 & 31);
                    acc = acc + (t.f0 + t.f1) * 13;
                    acc = acc + (t.f0 * 2 + t.f1 * 17);
                    acc = acc + (t.f0 & 127) + t.f1 * 29;
                    acc = acc + (t.f0 * 5 + (t.f1 & 15));
                    acc = acc + ((t.f0 & 3) * 21 + (t.f1 & 7));
                    acc = acc + (t.f0 * 23 + t.f1 * 7);
                    acc = acc + ((t.f1 & 255) + t.f0 * 11);
                    return (acc + k) & 65535;
                }}
                static int h2(int a, int b) {{
                    {rendered['h2']}
                }}
                static int h1(int a, int b) {{
                    {rendered['h1']}
                }}
                static int entry(int a, int b) {{
                    {rendered['entry']}
                }}
            }}
        """


class ProgramGenerator:
    """Drives an integer source to produce one program."""

    INT_LOCALS = 3
    OBJ_LOCALS = 2

    def __init__(self, rand_int: Callable[[int, int], int]):
        #: rand_int(lo, hi) -> int in [lo, hi] (inclusive).
        self.rand_int = rand_int
        self._fresh = 0

    @classmethod
    def from_hypothesis(cls, draw) -> "ProgramGenerator":
        """Adapter for a hypothesis ``data.draw`` function."""
        import hypothesis.strategies as st

        def rand_int(lo, hi):
            return draw(st.integers(min_value=lo, max_value=hi))

        return cls(rand_int)

    @classmethod
    def from_random(cls, rng) -> "ProgramGenerator":
        """Adapter for a ``random.Random`` instance."""
        return cls(rng.randint)

    # -- drawing helpers --------------------------------------------------

    def _int(self, lo, hi):
        return self.rand_int(lo, hi)

    def _choice(self, options):
        return options[self._int(0, len(options) - 1)]

    def fresh_name(self, prefix):
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    # -- expressions ---------------------------------------------------------

    def int_expr(self, depth=0) -> str:
        kinds = ["literal", "local", "field"]
        if depth < 2:
            kinds += ["binary", "binary", "div"]
        kind = self._choice(kinds)
        if kind == "literal":
            return str(self._int(-16, 16))
        if kind == "local":
            return f"x{self._int(0, self.INT_LOCALS - 1)}"
        if kind == "field":
            return (f"d{self._int(0, self.OBJ_LOCALS - 1)}"
                    f".f{self._int(0, 1)}")
        if kind == "div":
            return (f"({self.int_expr(depth + 1)} / "
                    f"(({self.int_expr(depth + 1)} & 7) + 1))")
        op = self._choice(["+", "-", "*", "&", "|", "^"])
        return (f"({self.int_expr(depth + 1)} {op} "
                f"{self.int_expr(depth + 1)})")

    def condition(self) -> str:
        kind = self._choice(["cmp", "cmp", "refeq", "null", "global",
                             "magic"])
        if kind == "cmp":
            op = self._choice(["<", "<=", ">", ">=", "==", "!="])
            return f"{self.int_expr(1)} {op} {self.int_expr(1)}"
        if kind == "refeq":
            a = self._int(0, self.OBJ_LOCALS - 1)
            b = self._int(0, self.OBJ_LOCALS - 1)
            return f"d{a} == d{b}"
        if kind == "null":
            return f"d{self._int(0, self.OBJ_LOCALS - 1)}.link == null"
        if kind == "magic":
            return self.magic_condition()
        return "g0 != null"

    def magic_condition(self) -> str:
        """A condition on a raw parameter that stays cold during
        warm-up (small arguments) and fires on probe calls."""
        param = self._choice(["a", "b"])
        return f"{param} == {self._choice(list(MAGIC_VALUES))}"

    # -- statements -------------------------------------------------------------

    def statements(self, budget: int, depth: int,
                   callable_helpers: List[str]) -> List[Stmt]:
        result: List[Stmt] = []
        while budget > 0:
            kind = self._choice(
                ["assign_int", "assign_int", "store_field", "store_field",
                 "load_field", "rebind", "link", "escape", "global_int",
                 "read_global", "if", "loop", "sync", "call",
                 "branch_escape", "branch_escape", "loop_virtual",
                 "array_mix", "sync_escape", "deopt_window",
                 "hot_loop", "borrow_call", "codegen_mix",
                 "phase_flip"])
            if kind in ("if", "loop", "sync", "branch_escape",
                        "loop_virtual", "sync_escape", "deopt_window",
                        "hot_loop", "codegen_mix",
                        "phase_flip") and depth >= 2:
                kind = "assign_int"
            if kind == "call" and not callable_helpers:
                kind = "store_field"

            if kind == "assign_int":
                result.append(Stmt.leaf(
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{self.int_expr()};"))
                budget -= 1
            elif kind == "store_field":
                result.append(Stmt.leaf(
                    f"d{self._int(0, self.OBJ_LOCALS - 1)}"
                    f".f{self._int(0, 1)} = {self.int_expr(1)};"))
                budget -= 1
            elif kind == "load_field":
                result.append(Stmt.leaf(
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"d{self._int(0, self.OBJ_LOCALS - 1)}"
                    f".f{self._int(0, 1)};"))
                budget -= 1
            elif kind == "rebind":
                result.append(Stmt.leaf(
                    f"d{self._int(0, self.OBJ_LOCALS - 1)} = "
                    f"new Data();"))
                budget -= 1
            elif kind == "link":
                target = self._choice(
                    [f"d{self._int(0, self.OBJ_LOCALS - 1)}", "null"])
                result.append(Stmt.leaf(
                    f"d{self._int(0, self.OBJ_LOCALS - 1)}.link = "
                    f"{target};"))
                budget -= 1
            elif kind == "escape":
                result.append(Stmt.leaf(
                    f"g0 = d{self._int(0, self.OBJ_LOCALS - 1)};"))
                budget -= 1
            elif kind == "global_int":
                result.append(Stmt.leaf(f"gi = {self.int_expr(1)};"))
                budget -= 1
            elif kind == "read_global":
                result.append(Stmt.leaf(
                    "if (g0 != null) { "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = g0.f0; }}"))
                budget -= 1
            elif kind == "if":
                then_body = self.statements(self._int(1, 3), depth + 1,
                                            callable_helpers)
                else_body = (self.statements(self._int(1, 2), depth + 1,
                                             callable_helpers)
                             if self._int(0, 1) else None)
                result.append(Stmt.compound(
                    f"if ({self.condition()})", then_body, else_body))
                budget -= 2
            elif kind == "loop":
                var = self.fresh_name("i")
                body = self.statements(self._int(1, 3), depth + 1,
                                       callable_helpers)
                bound = self._int(1, 5)
                result.append(Stmt.compound(
                    f"for (int {var} = 0; {var} < {bound}; "
                    f"{var} = {var} + 1)", body))
                budget -= 3
            elif kind == "sync":
                body = self.statements(self._int(1, 2), depth + 1,
                                       callable_helpers)
                result.append(Stmt.compound(
                    f"synchronized "
                    f"(d{self._int(0, self.OBJ_LOCALS - 1)})", body))
                budget -= 2
            elif kind == "call":
                helper = self._choice(callable_helpers)
                result.append(Stmt.leaf(
                    f"x{self._int(0, self.INT_LOCALS - 1)} = {helper}("
                    f"{self.int_expr(1)}, {self.int_expr(1)});"))
                budget -= 1
            elif kind == "branch_escape":
                # The paper's core shape: allocation escaping on one
                # branch only, fields read afterwards.
                var = self.fresh_name("t")
                xd = self._int(0, self.INT_LOCALS - 1)
                result.append(Stmt.leaf(
                    f"Data {var} = new Data(); "
                    f"{var}.f0 = {self.int_expr(1)}; "
                    f"if ({self.condition()}) {{ g0 = {var}; }} "
                    f"x{xd} = {var}.f0 + {var}.f1;"))
                budget -= 2
            elif kind == "loop_virtual":
                # A loop-carried object: phis over (virtual) objects,
                # with an optional rare escape inside the loop.
                var = self.fresh_name("t")
                ivar = self.fresh_name("i")
                bound = self._int(2, 6)
                escape = (f"if ({self.magic_condition()}) "
                          f"{{ g0 = {var}; }} "
                          if self._int(0, 1) else "")
                rebind = (f"{var} = new Data(); "
                          if self._int(0, 1) else "")
                result.append(Stmt.leaf(
                    f"Data {var} = new Data(); "
                    f"for (int {ivar} = 0; {ivar} < {bound}; "
                    f"{ivar} = {ivar} + 1) {{ "
                    f"{var}.f0 = {var}.f0 + {ivar}; {escape}{rebind}}} "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{var}.f0;"))
                budget -= 3
            elif kind == "array_mix":
                # Constant-length array: virtualizable, masked indices.
                var = self.fresh_name("r")
                length = self._choice([2, 4, 8])
                mask = length - 1
                result.append(Stmt.leaf(
                    f"int[] {var} = new int[{length}]; "
                    f"{var}[({self.int_expr(1)}) & {mask}] = "
                    f"{self.int_expr(1)}; "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{var}[({self.int_expr(1)}) & {mask}] + "
                    f"{var}.length;"))
                budget -= 2
            elif kind == "sync_escape":
                # Lock elision candidate that sometimes escapes while
                # the monitor is held (lock_count > 0 at the escape).
                var = self.fresh_name("t")
                result.append(Stmt.leaf(
                    f"Data {var} = new Data(); "
                    f"synchronized ({var}) {{ "
                    f"{var}.f1 = {self.int_expr(1)}; "
                    f"if ({self.condition()}) {{ g0 = {var}; }} }} "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{var}.f1;"))
                budget -= 2
            elif kind == "hot_loop":
                # Hot loop in a cold method: the trip count sits above
                # the fuzz VMs' osr_threshold while the enclosing
                # method's invocation count is still below the compile
                # threshold, so the loop tiers up through on-stack
                # replacement mid-call.  A loop-carried (virtual)
                # object plus a magic-guarded escape exercise
                # deoptimization with rematerialization from inside the
                # OSR'd loop body.
                var = self.fresh_name("t")
                ivar = self.fresh_name("i")
                bound = self._int(40, 80)
                escape = (f"if ({self.magic_condition()}) "
                          f"{{ g0 = {var}; gi = gi + {ivar}; }} "
                          if self._int(0, 1) else "")
                result.append(Stmt.leaf(
                    f"Data {var} = new Data(); "
                    f"for (int {ivar} = 0; {ivar} < {bound}; "
                    f"{ivar} = {ivar} + 1) {{ "
                    f"{var}.f0 = {var}.f0 + {ivar}; "
                    f"{var}.f1 = {var}.f1 ^ "
                    f"x{self._int(0, self.INT_LOCALS - 1)}; "
                    f"{escape}}} "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{var}.f0 + {var}.f1;"))
                budget -= 3
            elif kind == "borrow_call":
                # A fresh object passed to Main.probe — a helper too
                # big to inline that only *reads* its parameter.
                # Without interprocedural summaries the call
                # materializes the object; with ``escape_summaries``
                # it stays virtual (the fuzz oracle checks the two
                # configurations behave identically, allocations
                # apart).
                var = self.fresh_name("t")
                x = self._int(0, self.INT_LOCALS - 1)
                result.append(Stmt.leaf(
                    f"Data {var} = new Data(); "
                    f"{var}.f0 = {self.int_expr(1)}; "
                    f"x{x} = x{x} + probe({var}, {self.int_expr(1)}); "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{var}.f0 + {var}.f1;"))
                budget -= 2
            elif kind == "codegen_mix":
                # The codegen backend's hardest shape: a nested loop
                # carrying a *cyclically linked* pair of virtual
                # objects, with a magic-guarded escape (deopt site)
                # inside the inner loop body.  The structurizer must
                # express the multi-level control flow, and a probe
                # call deoptimizing mid-loop forces the Deoptimizer to
                # rematerialize the two-node cycle from generated
                # code's frame locals.
                t = self.fresh_name("t")
                u = self.fresh_name("u")
                ivar = self.fresh_name("i")
                jvar = self.fresh_name("j")
                outer = self._int(2, 4)
                inner = self._int(2, 5)
                result.append(Stmt.leaf(
                    f"Data {t} = new Data(); Data {u} = new Data(); "
                    f"{t}.link = {u}; {u}.link = {t}; "
                    f"{u}.f0 = {self.int_expr(1)}; "
                    f"for (int {ivar} = 0; {ivar} < {outer}; "
                    f"{ivar} = {ivar} + 1) {{ "
                    f"for (int {jvar} = 0; {jvar} < {inner}; "
                    f"{jvar} = {jvar} + 1) {{ "
                    f"{t}.f0 = {t}.f0 + {u}.f0 + {jvar}; "
                    f"if ({self.magic_condition()}) "
                    f"{{ g0 = {t}; gi = gi + {ivar}; }} }} "
                    f"{u}.f1 = {u}.f1 ^ {ivar}; }} "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{t}.f0 + {u}.f1;"))
                budget -= 4
            elif kind == "phase_flip":
                # Deoptless's target shape: speculation trained one
                # way during warm-up, then flipped *inside a hot
                # loop*.  ``flip`` is 0 on every warm call, so the
                # in-loop branch trains never-taken and compiles to a
                # guard; a magic probe sets ``flip`` before the loop
                # and the guard fails mid-loop on the first
                # iteration.  With ``config.deoptless`` this
                # exercises both dispatch paths differentially: the
                # magic branch (before the loop) is
                # continuation-eligible, while the in-loop guard's
                # entry would be a backedge into an unmaterialized
                # loop header, so it must degrade to a plain deopt.
                var = self.fresh_name("t")
                fvar = self.fresh_name("p")
                ivar = self.fresh_name("i")
                bound = self._int(40, 80)
                escape = (f"if ({fvar} == 1) {{ g0 = {var}; }} "
                          if self._int(0, 1) else "")
                result.append(Stmt.leaf(
                    f"Data {var} = new Data(); int {fvar} = 0; "
                    f"if ({self.magic_condition()}) {{ {fvar} = 1; }} "
                    f"for (int {ivar} = 0; {ivar} < {bound}; "
                    f"{ivar} = {ivar} + 1) {{ "
                    f"if ({fvar} == 1) {{ "
                    f"{var}.f1 = {var}.f1 + {ivar} * 3; }} "
                    f"else {{ {var}.f0 = {var}.f0 + {ivar}; }} }} "
                    f"{escape}"
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{var}.f0 + {var}.f1;"))
                budget -= 3
            elif kind == "deopt_window":
                # A cold branch that allocates, links and escapes: when
                # a probe call finally takes it, the deoptimizer must
                # rematerialize the (possibly nested) virtual state.
                var = self.fresh_name("t")
                d = self._int(0, self.OBJ_LOCALS - 1)
                result.append(Stmt.leaf(
                    f"if ({self.magic_condition()}) {{ "
                    f"Data {var} = new Data(); "
                    f"{var}.f0 = {self.int_expr(1)}; "
                    f"{var}.link = d{d}; g0 = {var}; "
                    f"x{self._int(0, self.INT_LOCALS - 1)} = "
                    f"{var}.f0 + d{d}.f1; }}"))
                budget -= 2
        return result

    # -- whole programs ---------------------------------------------------------

    def generate_program(self) -> GeneratedProgram:
        bodies = {
            "h2": self.statements(self._int(2, 5), 0, []),
            "h1": self.statements(self._int(2, 6), 0, ["h2"]),
            "entry": self.statements(self._int(4, 10), 0, ["h1", "h2"]),
        }
        return GeneratedProgram(bodies)

    def generate(self) -> str:
        """Back-compat helper: generate and render to MJ source."""
        return self.generate_program().source()
