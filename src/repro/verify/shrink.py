"""Automatic test-case reduction (delta debugging on statements).

Given a failing :class:`~repro.verify.generator.GeneratedProgram` and a
predicate "does this candidate still fail the same way?", the shrinker
repeatedly tries structural simplifications until none applies:

- drop a contiguous chunk of statements (binary-search granularity,
  classic ddmin) from any method body or compound-statement body;
- replace an ``if``/``loop``/``sync`` compound by its body statements
  (hoisting — removes the control structure but keeps the effects);
- drop a compound's ``else`` branch.

Leaf statements are atomic: the generator emits multi-line PEA shapes
(branch-escape, loop-virtual, ...) as single leaves precisely so that
shrinking never produces use-before-def programs.  Candidates that fail
*differently* (or not at all, or no longer compile — the predicate is
expected to treat exceptions as "no") are rejected, so the result is a
1-minimal reproducer for the original failure category.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .generator import GeneratedProgram, Stmt

Predicate = Callable[[GeneratedProgram], bool]


def _reduce_list(stmts: List[Stmt], rebuild, predicate: Predicate
                 ) -> Optional[List[Stmt]]:
    """Try to remove a chunk of *stmts*; returns the reduced list or
    ``None`` when no chunk can go.  ``rebuild(new_list)`` produces the
    candidate program with the list swapped in."""
    n = len(stmts)
    chunk = n
    while chunk >= 1:
        start = 0
        while start < n:
            candidate = stmts[:start] + stmts[start + chunk:]
            if len(candidate) != n and predicate(rebuild(candidate)):
                return candidate
            start += chunk
        chunk //= 2
    return None


def _apply_to_list(program: GeneratedProgram, path, new_list):
    """Return a copy of *program* with the statement list at *path*
    replaced.  A path is ``(method, (index, part), (index, part), ...)``
    descending through compound statements; ``part`` is ``"body"`` or
    ``"orelse"``."""
    clone = program.copy()
    method, *steps = path
    container = clone.bodies[method]
    for index, part in steps[:-1]:
        container = getattr(container[index], part)
    if steps:
        index, part = steps[-1]
        setattr(container[index], part, [s.copy() for s in new_list])
    else:
        clone.bodies[method] = [s.copy() for s in new_list]
    return clone


def _walk_lists(program: GeneratedProgram):
    """Yield ``(path, list)`` for every statement list in the program,
    outermost first."""
    def descend(prefix, stmts):
        yield prefix, stmts
        for index, stmt in enumerate(stmts):
            if stmt.kind == "compound":
                if stmt.body is not None:
                    yield from descend(prefix + ((index, "body"),),
                                       stmt.body)
                if stmt.orelse is not None:
                    yield from descend(prefix + ((index, "orelse"),),
                                       stmt.orelse)

    for method, stmts in program.bodies.items():
        yield from descend((method,), stmts)


def _get_list(program: GeneratedProgram, path) -> List[Stmt]:
    method, *steps = path
    container = program.bodies[method]
    for index, part in steps:
        container = getattr(container[index], part)
    return container


def _try_structural(program: GeneratedProgram, predicate: Predicate
                    ) -> Optional[GeneratedProgram]:
    """One structural simplification: hoist a compound's body into its
    parent list, or drop an else-branch."""
    for path, stmts in _walk_lists(program):
        for index, stmt in enumerate(stmts):
            if stmt.kind != "compound":
                continue
            hoisted = stmts[:index] + (stmt.body or []) \
                + stmts[index + 1:]
            candidate = _apply_to_list(program, path, hoisted)
            if predicate(candidate):
                return candidate
            if stmt.orelse is not None:
                without_else = [s.copy() for s in stmts]
                without_else[index].orelse = None
                candidate = _apply_to_list(program, path, without_else)
                if predicate(candidate):
                    return candidate
    return None


def shrink_program(program: GeneratedProgram, predicate: Predicate,
                   max_steps: int = 2000) -> GeneratedProgram:
    """Reduce *program* to a smaller one that still satisfies
    *predicate* (which must hold for *program* itself).  Terminates at
    a local minimum: no single chunk removal, hoist or else-drop keeps
    the failure alive."""
    current = program.copy()
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for path, stmts in list(_walk_lists(current)):
            reduced = _reduce_list(
                stmts,
                lambda new_list, _path=path: _apply_to_list(
                    current, _path, new_list),
                predicate)
            steps += 1
            if reduced is not None:
                current = _apply_to_list(current, path, reduced)
                progress = True
                break
        if not progress:
            simplified = _try_structural(current, predicate)
            steps += 1
            if simplified is not None:
                current = simplified
                progress = True
    return current
