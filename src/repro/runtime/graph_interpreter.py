"""Direct execution of optimized IR graphs — the "compiled code" engine.

Instead of emitting machine code, the simulated machine executes the IR
graph directly: fixed nodes are walked in control-flow order, floating
expressions are evaluated on demand, and every executed node is charged
its cycle cost.  Heap effects (allocations, field accesses, monitors) go
through the same :class:`~repro.bytecode.heap.Heap` as the interpreter,
so Table 1's allocation metrics are measured identically in every
configuration.

Failed guards and Deoptimize nodes hand off to
:class:`~repro.runtime.deopt.Deoptimizer`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..bytecode.classfile import Program
from ..bytecode.heap import Heap, VMError
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (ArrayLengthNode, BeginNode, BinaryArithmeticNode,
                        ConditionalNode, ConstantNode, DeoptimizeNode,
                        EndNode, FixedGuardNode, FrameStateNode, IfNode,
                        InstanceOfNode, IntCompareNode, InvokeNode,
                        IsNullNode, LoadFieldNode, LoadIndexedNode,
                        LoadStaticNode, LoopBeginNode, LoopEndNode,
                        LoopExitNode, MergeNode, MonitorEnterNode,
                        MonitorExitNode, NegNode, NewArrayNode,
                        NewInstanceNode, ParameterNode, PhiNode,
                        RefEqualsNode, ReturnNode, StartNode,
                        StoreFieldNode, StoreIndexedNode, StoreStaticNode)
from .costmodel import DEFAULT_COST_MODEL, CostModel, ExecutionStats
from .deopt import Deoptimizer

#: Safety valve against miscompiled infinite loops.
MAX_CONTROL_STEPS = 500_000_000


class GraphExecutionError(VMError):
    pass


class GraphInterpreter:
    """Executes one graph per call; reusable across calls."""

    def __init__(self, program: Program, heap: Heap,
                 invoke_callback: Callable[[str, Any, List[Any]], Any],
                 deoptimizer: Optional[Deoptimizer] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 stats: Optional[ExecutionStats] = None,
                 collect_histogram: bool = False):
        self.program = program
        self.heap = heap
        self.invoke_callback = invoke_callback
        self.deoptimizer = deoptimizer
        self.cost_model = cost_model
        self.stats = stats if stats is not None else ExecutionStats()
        self.collect_histogram = collect_histogram
        #: Phi tuples per merge, so loop back-edges don't rebuild the
        #: list on every iteration.  Keyed by node identity; recompiled
        #: graphs bring fresh merge nodes, so stale entries are inert.
        self._phi_cache: Dict[Node, tuple] = {}
        #: Reusable memo dict for top-level expression evaluations
        #: (cleared before each use — identical semantics to a fresh
        #: dict, without the per-node allocation).
        self._scratch: Dict[Node, Any] = {}

    # -- public -----------------------------------------------------------

    def execute(self, graph: Graph, args: List[Any]) -> Any:
        """Run *graph* with *args*; returns the method's result."""
        env: Dict[Node, Any] = {}
        for param in graph.parameters:
            env[param] = args[param.index]
        multiplier = self.cost_model.icache_multiplier(graph.node_count())
        return self._run(graph, env, multiplier)

    # -- evaluation of floating expressions ----------------------------------

    def _evaluate_root(self, node: Node, env: Dict[Node, Any]) -> Any:
        """Top-level expression evaluation: fresh-memo semantics via a
        reused (cleared) scratch dict."""
        scratch = self._scratch
        scratch.clear()
        return self._evaluate(node, env, scratch)

    def _evaluate(self, node: Node, env: Dict[Node, Any],
                  memo: Optional[Dict[Node, Any]] = None) -> Any:
        if node in env:
            return env[node]
        if isinstance(node, ConstantNode):
            return node.value
        if memo is None:
            memo = {}
        elif node in memo:
            return memo[node]
        if isinstance(node, BinaryArithmeticNode):
            value = node.evaluate(self._evaluate(node.x, env, memo),
                                  self._evaluate(node.y, env, memo))
        elif isinstance(node, IntCompareNode):
            value = node.evaluate(self._evaluate(node.x, env, memo),
                                  self._evaluate(node.y, env, memo))
        elif isinstance(node, NegNode):
            from ..bytecode.interpreter import wrap_int
            value = wrap_int(-self._evaluate(node.value, env, memo))
        elif isinstance(node, ConditionalNode):
            condition = self._evaluate(node.condition, env, memo)
            value = self._evaluate(
                node.true_value if condition else node.false_value,
                env, memo)
        else:
            raise GraphExecutionError(
                f"cannot evaluate {node!r} (not in environment)")
        memo[node] = value
        self.stats.cycles += self.cost_model.node_cost(node)
        return value

    # -- the control-flow walk --------------------------------------------------

    def _run(self, graph: Graph, env: Dict[Node, Any],
             multiplier: float) -> Any:
        cost_model = self.cost_model
        heap = self.heap
        stats = self.stats
        phi_cache = self._phi_cache
        histogram = (stats.node_kind_executions
                     if self.collect_histogram else None)
        stats.compiled_invocations += 1
        current: Node = graph.start
        steps = 0
        while True:
            steps += 1
            if steps > MAX_CONTROL_STEPS:
                raise GraphExecutionError("control step budget exceeded")
            stats.node_executions += 1
            stats.cycles += cost_model.node_cost(current) * multiplier
            if histogram is not None:
                kind = type(current).__name__
                histogram[kind] = histogram.get(kind, 0) + 1

            if isinstance(current, (StartNode, BeginNode, LoopExitNode,
                                    MergeNode)):
                current = current.next

            elif isinstance(current, (EndNode, LoopEndNode)):
                if isinstance(current, LoopEndNode):
                    merge = current.loop_begin
                else:
                    merge = current.merge()
                index = merge.end_index(current)
                phis = phi_cache.get(merge)
                if phis is None:
                    phis = tuple(merge.phis())
                    phi_cache[merge] = phis
                new_values = [
                    self._evaluate_root(phi.values[index], env)
                    for phi in phis]
                for phi, value in zip(phis, new_values):
                    env[phi] = value
                current = merge

            elif isinstance(current, IfNode):
                condition = self._evaluate_root(current.condition, env)
                current = (current.true_successor if condition
                           else current.false_successor)

            elif isinstance(current, FixedGuardNode):
                condition = self._evaluate_root(current.condition, env)
                if bool(condition) == current.negated:
                    return self._deoptimize(current.state, current.reason,
                                            env)
                current = current.next

            elif isinstance(current, ReturnNode):
                if current.value is None:
                    return None
                return self._evaluate_root(current.value, env)

            elif isinstance(current, DeoptimizeNode):
                return self._deoptimize(current.state, current.reason,
                                        env)

            elif isinstance(current, NewInstanceNode):
                on_stack = getattr(current, "stack_allocated", False)
                obj = heap.new_instance(current.class_name, on_stack)
                size = self.program.instance_size(current.class_name)
                stats.cycles += (
                    cost_model.stack_allocation_bytes_cost(size)
                    if on_stack
                    else cost_model.allocation_bytes_cost(size))
                env[current] = obj
                current = current.next

            elif isinstance(current, NewArrayNode):
                length = self._evaluate_root(current.length, env)
                on_stack = getattr(current, "stack_allocated", False)
                arr = heap.new_array(current.elem_type, length, on_stack)
                size = self.program.array_size(length)
                stats.cycles += (
                    cost_model.stack_allocation_bytes_cost(size)
                    if on_stack
                    else cost_model.allocation_bytes_cost(size))
                env[current] = arr
                current = current.next

            elif isinstance(current, LoadFieldNode):
                obj = self._evaluate_root(current.object, env)
                env[current] = heap.get_field(obj,
                                              current.field.field_name)
                current = current.next

            elif isinstance(current, StoreFieldNode):
                obj = self._evaluate_root(current.object, env)
                value = self._evaluate_root(current.value, env)
                heap.put_field(obj, current.field.field_name, value)
                current = current.next

            elif isinstance(current, LoadStaticNode):
                env[current] = self.program.get_static(
                    current.field.class_name, current.field.field_name)
                current = current.next

            elif isinstance(current, StoreStaticNode):
                value = self._evaluate_root(current.value, env)
                self.program.set_static(current.field.class_name,
                                        current.field.field_name, value)
                current = current.next

            elif isinstance(current, LoadIndexedNode):
                arr = self._evaluate_root(current.array, env)
                index = self._evaluate_root(current.index, env)
                env[current] = heap.array_load(arr, index)
                current = current.next

            elif isinstance(current, StoreIndexedNode):
                arr = self._evaluate_root(current.array, env)
                index = self._evaluate_root(current.index, env)
                value = self._evaluate_root(current.value, env)
                heap.array_store(arr, index, value)
                current = current.next

            elif isinstance(current, ArrayLengthNode):
                arr = self._evaluate_root(current.array, env)
                env[current] = heap.array_length(arr)
                current = current.next

            elif isinstance(current, RefEqualsNode):
                a = self._evaluate_root(current.x, env)
                b = self._evaluate_root(current.y, env)
                env[current] = 1 if a is b else 0
                current = current.next

            elif isinstance(current, IsNullNode):
                value = self._evaluate_root(current.value, env)
                env[current] = 1 if value is None else 0
                current = current.next

            elif isinstance(current, InstanceOfNode):
                value = self._evaluate_root(current.value, env)
                env[current] = heap.instance_of(value, current.class_name)
                current = current.next

            elif isinstance(current, MonitorEnterNode):
                heap.monitor_enter(self._evaluate_root(current.object, env))
                current = current.next

            elif isinstance(current, MonitorExitNode):
                heap.monitor_exit(self._evaluate_root(current.object, env))
                current = current.next

            elif isinstance(current, InvokeNode):
                arg_values = [self._evaluate_root(a, env)
                              for a in current.arguments]
                result = self.invoke_callback(current.kind, current.target,
                                              arg_values)
                if current.has_value:
                    env[current] = result
                current = current.next

            else:
                raise GraphExecutionError(
                    f"unexecutable node {current!r}")

    def _deoptimize(self, state: FrameStateNode, reason: str,
                    env: Dict[Node, Any]) -> Any:
        if self.deoptimizer is None:
            raise GraphExecutionError(
                f"deoptimization ({reason}) with no deoptimizer attached")
        self.stats.deopts += 1
        self.stats.cycles += self.cost_model.deopt
        memo: Dict[Node, Any] = {}

        def evaluate(node):
            return self._evaluate(node, env, memo)

        return self.deoptimizer.deoptimize(state, evaluate)
