"""The simulated-machine cost model.

"Iterations per minute" in Table 1 becomes *simulated cycles per
iteration* here: every executed IR node and every interpreted bytecode is
charged a cycle cost, allocations are charged a base cost plus a
zeroing cost per byte, GC pressure is charged by the simulated
generational collector in :mod:`repro.runtime.gcsim` (nursery bump
allocation, minor-collection pauses proportional to copied bytes), and
compiled code is charged an instruction-cache penalty that grows with
machine-code size.  The i-cache
penalty is what reproduces the paper's jython observation: "Partial Escape
Analysis can in rare cases increase the size of compiled methods, which
has a negative influence on this benchmark."

Absolute numbers are arbitrary; only relative comparisons between
configurations are meaningful (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.node import Node
from ..ir.nodes import (ArrayLengthNode, BeginNode, BinaryArithmeticNode,
                        ConditionalNode, ConstantNode, DeoptimizeNode,
                        EndNode, FixedGuardNode, IfNode, InstanceOfNode,
                        IntCompareNode, InvokeNode, IsNullNode,
                        LoadFieldNode, LoadIndexedNode, LoadStaticNode,
                        LoopBeginNode, LoopEndNode, LoopExitNode,
                        MergeNode, MonitorEnterNode, MonitorExitNode,
                        NegNode, NewArrayNode, NewInstanceNode,
                        ParameterNode, PhiNode, RefEqualsNode, ReturnNode,
                        StartNode, StoreFieldNode, StoreIndexedNode,
                        StoreStaticNode)


@dataclass
class CostModel:
    """Cycle costs of the simulated machine."""

    #: Cycles per interpreted bytecode (interpreter dispatch overhead).
    interpreter_step: int = 20
    #: Allocation: fixed path cost (TLAB bump, header init).
    alloc_base: int = 24
    #: Zeroing/initialization cost per allocated byte.  GC pressure is
    #: no longer amortized here — it is charged as minor-collection
    #: pauses by the generational collector simulation (see the gc_*
    #: knobs below and :mod:`repro.runtime.gcsim`).
    alloc_per_byte: float = 0.25
    #: Monitor enter/exit (biased-lock fast path).
    monitor_op: int = 16
    #: Call overhead of a non-inlined invoke (frame setup, dispatch).
    invoke_overhead: int = 24
    #: Deoptimization: state reconstruction cost.
    deopt: int = 600
    #: i-cache pressure: extra cost factor per compiled node beyond the
    #: comfortable footprint.
    icache_capacity: int = 1500
    icache_factor: float = 0.9

    arithmetic: int = 1
    compare: int = 1
    memory_access: int = 2
    guard: int = 1
    control: int = 0

    #: Simulated generational collector (see ``repro.runtime.gcsim``):
    #: nursery capacity in bytes; a minor collection runs whenever bump
    #: allocation fills it.
    gc_nursery_bytes: int = 16 * 1024
    #: 1/gc_survivor_divisor of the collected bytes is assumed live and
    #: copied to the survivor space.
    gc_survivor_divisor: int = 8
    #: Survivors are re-copied this many times before promotion to the
    #: old generation.
    gc_tenure_age: int = 3
    #: Fixed pause cost of a minor collection (root scan, bookkeeping).
    gc_pause_base: int = 400
    #: Pause cycles per byte copied during a minor collection.
    gc_copy_per_byte: int = 2

    def node_cost(self, node: Node) -> int:
        """Execution cost of one IR node (allocation byte costs are added
        separately by the graph interpreter, which knows the sizes)."""
        if isinstance(node, (BinaryArithmeticNode, NegNode,
                             ConditionalNode)):
            return self.arithmetic
        if isinstance(node, (IntCompareNode, RefEqualsNode, IsNullNode,
                             InstanceOfNode)):
            return self.compare
        if isinstance(node, (LoadFieldNode, StoreFieldNode,
                             LoadStaticNode, StoreStaticNode,
                             LoadIndexedNode, StoreIndexedNode,
                             ArrayLengthNode)):
            return self.memory_access
        if isinstance(node, (NewInstanceNode, NewArrayNode)):
            return self.alloc_base
        if isinstance(node, (MonitorEnterNode, MonitorExitNode)):
            return self.monitor_op
        if isinstance(node, InvokeNode):
            return self.invoke_overhead
        if isinstance(node, FixedGuardNode):
            return self.guard
        if isinstance(node, DeoptimizeNode):
            return self.deopt
        if isinstance(node, IfNode):
            return 1
        return self.control

    def icache_multiplier(self, compiled_node_count: int) -> float:
        """Execution-cost multiplier modelling i-cache pressure for a
        method compiled to *compiled_node_count* IR nodes."""
        excess = max(0, compiled_node_count - self.icache_capacity)
        return 1.0 + self.icache_factor * (excess / self.icache_capacity)

    def allocation_bytes_cost(self, byte_count: int) -> float:
        return self.alloc_per_byte * byte_count

    #: Stack/zone allocation: bump-pointer, no GC amortization.
    stack_alloc_per_byte: float = 0.15

    def stack_allocation_bytes_cost(self, byte_count: int) -> float:
        return self.stack_alloc_per_byte * byte_count


DEFAULT_COST_MODEL = CostModel()


@dataclass
class ExecutionStats:
    """Cycle and event counters for one execution configuration."""

    cycles: float = 0.0
    node_executions: int = 0
    interpreter_steps: int = 0
    deopts: int = 0
    compiled_invocations: int = 0
    interpreted_invocations: int = 0
    #: Per-node-kind execution counts; only populated when the VM runs
    #: with ``CompilerConfig.collect_node_histogram`` (``--profile``).
    node_kind_executions: dict = field(default_factory=dict)

    def copy(self) -> "ExecutionStats":
        return ExecutionStats(self.cycles, self.node_executions,
                              self.interpreter_steps, self.deopts,
                              self.compiled_invocations,
                              self.interpreted_invocations,
                              dict(self.node_kind_executions))

    def delta(self, earlier: "ExecutionStats") -> "ExecutionStats":
        histogram = {
            kind: count - earlier.node_kind_executions.get(kind, 0)
            for kind, count in self.node_kind_executions.items()}
        return ExecutionStats(
            self.cycles - earlier.cycles,
            self.node_executions - earlier.node_executions,
            self.interpreter_steps - earlier.interpreter_steps,
            self.deopts - earlier.deopts,
            self.compiled_invocations - earlier.compiled_invocations,
            self.interpreted_invocations - earlier.interpreted_invocations,
            histogram)
