"""Deoptimization: transfer from optimized code to the interpreter.

Implements Section 5.5 of the paper end to end: when compiled code hits a
failed guard (or an explicit Deoptimize), the frame-state chain is decoded
into interpreter frames.  Virtual (scalar-replaced) objects referenced by
the states are *rematerialized* on the heap from their
EscapeObjectStateNode snapshots — including cyclic object graphs and
elided locks — and execution continues in the bytecode interpreter.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Optional

from ..bytecode.classfile import Program
from ..bytecode.heap import Heap, VMError
from ..bytecode.interpreter import Interpreter
from ..bytecode.opcodes import INVOKES
from ..ir.nodes import (EscapeObjectStateNode, FrameStateNode,
                        VirtualArrayNode, VirtualInstanceNode,
                        VirtualObjectNode)


class DeoptError(VMError):
    """The frame state could not be decoded (a compiler bug)."""


class Deoptimizer:
    """Decodes frame states and resumes execution in the interpreter."""

    def __init__(self, program: Program, heap: Heap,
                 interpreter: Interpreter,
                 notify: Optional[Callable[[Any, Any], None]] = None):
        self.program = program
        self.heap = heap
        self.interpreter = interpreter
        #: Internal VM channel, called as ``notify(root_method, state)``
        #: before the interpreter continuation runs.  External code
        #: observes deoptimization through
        #: :class:`repro.jit.listeners.VMListener` registered via
        #: ``VM.add_listener()`` — not by mutating this.
        self._notify = notify
        #: Deoptless dispatch hook, called as ``dispatch(frame_state,
        #: locals_, stack)`` for the innermost frame after its live
        #: state is rematerialized.  Returns ``(True, value)`` when
        #: execution transferred into a specialized continuation (the
        #: value is what the frame returned), ``(False, None)`` to fall
        #: back to the interpreter.  Set by the VM when
        #: ``config.deoptless`` is on; all three execution backends
        #: funnel deopts through here, so this is the single dispatch
        #: point.
        self.dispatch: Optional[Callable] = None

    @property
    def on_deopt(self):
        """Deprecated: register a ``VMListener`` via ``VM.add_listener``
        instead of poking the deoptimizer's hook."""
        return self._notify

    @on_deopt.setter
    def on_deopt(self, hook):
        warnings.warn(
            "Deoptimizer.on_deopt is deprecated; register a "
            "repro.jit.listeners.VMListener via VM.add_listener()",
            DeprecationWarning, stacklevel=2)
        self._notify = hook

    def deoptimize(self, state: FrameStateNode,
                   evaluate: Callable[[Any], Any]) -> Any:
        """Continue at *state* in the interpreter; returns the value the
        compiled method would have returned.

        *evaluate* maps IR value nodes to their current runtime values
        (provided by the graph interpreter at the deopt site).
        """
        materialized: Dict[VirtualObjectNode, Any] = {}

        def resolve(node):
            if node is None:
                return None
            if isinstance(node, VirtualObjectNode):
                return self._materialize(node, state, evaluate,
                                         materialized)
            return evaluate(node)

        states = list(state.outer_chain())  # innermost first
        if self._notify is not None:
            self._notify(states[-1].method, state)
        result: Any = None
        has_result = False
        for index, frame_state in enumerate(states):
            method = frame_state.method
            locals_ = [resolve(v) for v in frame_state.locals_values]
            stack = [resolve(v) for v in frame_state.stack_values]
            locks = [resolve(v) for v in frame_state.locks]
            if index == 0:
                if self.dispatch is not None and not locks:
                    # Deoptless: hand the rematerialized innermost frame
                    # to the dispatcher, which may transfer into a
                    # continuation compilation instead of interpreting.
                    # Frames holding locks stay on the interpreter path
                    # (continuation entries have no lock re-entry
                    # prologue).  Outer (inlined-caller) frames below
                    # still interpret to their returns as usual.
                    handled, value = self.dispatch(frame_state, locals_,
                                                   stack)
                    if handled:
                        result = value
                        has_result = True
                        continue
                pc = frame_state.bci  # re-execute the guarded instruction
            else:
                # Outer frame: resume after the invoke, pushing the
                # callee's result.
                invoke_insn = method.code[frame_state.bci]
                if invoke_insn.op not in INVOKES:
                    raise DeoptError(
                        f"outer state bci {frame_state.bci} of "
                        f"{method.qualified_name} is not an invoke")
                callee = self.program.resolve_method(
                    invoke_insn.operand.class_name,
                    invoke_insn.operand.method_name)
                if callee.return_type != "void":
                    if not has_result:
                        raise DeoptError("missing callee result")
                    stack.append(result)
                pc = frame_state.bci + 1
            try:
                result = self.interpreter.execute_frame(
                    method, locals_, stack, pc)
                has_result = True
            finally:
                # Method-level locks are normally released by the
                # compiled epilogue; after deopt this frame will never
                # reach it, so release here.
                for lock in reversed(locks):
                    if lock is not None:
                        self.heap.monitor_exit(lock)
        return result

    # -- rematerialization ---------------------------------------------------

    def _materialize(self, virtual: VirtualObjectNode,
                     state: FrameStateNode,
                     evaluate: Callable[[Any], Any],
                     materialized: Dict[VirtualObjectNode, Any]):
        """Recreate *virtual* on the heap (Figure 8 / Section 5.5).

        Allocate-then-fill so cyclic virtual object graphs terminate.
        """
        if virtual in materialized:
            return materialized[virtual]
        mapping = state.find_mapping(virtual)
        if mapping is None:
            raise DeoptError(f"no EscapeObjectState for {virtual} in "
                             f"frame state {state}")
        if isinstance(virtual, VirtualInstanceNode):
            obj = self.heap.new_instance(virtual.class_name)
            materialized[virtual] = obj
            for name, entry in zip(virtual.field_names, mapping.entries):
                value = self._resolve_entry(entry, state, evaluate,
                                            materialized)
                obj.fields[name] = value
        elif isinstance(virtual, VirtualArrayNode):
            obj = self.heap.new_array(virtual.elem_type, virtual.length)
            materialized[virtual] = obj
            for index, entry in enumerate(mapping.entries):
                obj.elements[index] = self._resolve_entry(
                    entry, state, evaluate, materialized)
        else:  # pragma: no cover
            raise DeoptError(f"unknown virtual node {virtual}")
        # Restore elided locks so later monitorexits stay balanced.
        for _ in range(mapping.lock_count):
            self.heap.monitor_enter(obj)
        return obj

    def _resolve_entry(self, entry, state, evaluate, materialized):
        if entry is None:
            return None
        if isinstance(entry, VirtualObjectNode):
            return self._materialize(entry, state, evaluate, materialized)
        return evaluate(entry)
