"""Simulated generational garbage collector.

Until PR 9 the cost model charged a flat ``alloc_per_byte`` for every
heap-allocated byte, so escape-analysis wins showed up only as
allocation *counts*.  This module replaces that flat charge with a
small deterministic generational collector simulation so the same wins
show up as pause-time and throughput deltas:

* Allocation is nursery bump allocation: each heap allocation adds its
  byte size to the nursery fill.  Stack allocations never reach the
  nursery — that is the whole point of the escape tiers.
* When the nursery fills past its capacity a *minor collection* runs.
  A fixed fraction of the bytes allocated since the previous collection
  is assumed live (``1 / survivor_divisor``) and is copied to a
  survivor space.  Survivors are re-copied on each subsequent minor
  collection until they have survived ``tenure_age`` collections, at
  which point they are *promoted* to the (untracked) old generation.
* Each minor collection costs ``pause_base + copy_per_byte * copied``
  simulated cycles.  Pauses accumulate in :class:`GCStats` and the VM
  folds them into ``ExecutionStats.cycles`` the same way interpreter
  steps are folded in.

Everything is integer arithmetic so the accounting is bit-identical
across the graph-interpreter, plan and codegen execution backends: all
three allocate through the single shared :class:`repro.bytecode.heap.Heap`,
which is where the per-allocation hook lives.

The simulation is intentionally coarse — it models *pressure*, not a
real object graph.  It does not trace references and never frees
simulated objects; it exists so that "allocations/iter" translates into
pause cycles with a plausible generational shape (fewer allocated bytes
=> fewer minor collections => fewer copied bytes => less pause time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class GCStats:
    """Cumulative collector counters (monotone over a VM's lifetime)."""

    minor_collections: int = 0
    pause_cycles: int = 0
    promoted_bytes: int = 0
    copied_bytes: int = 0
    allocated_bytes: int = 0

    def copy(self) -> "GCStats":
        return GCStats(
            minor_collections=self.minor_collections,
            pause_cycles=self.pause_cycles,
            promoted_bytes=self.promoted_bytes,
            copied_bytes=self.copied_bytes,
            allocated_bytes=self.allocated_bytes,
        )

    def delta(self, earlier: "GCStats") -> "GCStats":
        return GCStats(
            minor_collections=self.minor_collections - earlier.minor_collections,
            pause_cycles=self.pause_cycles - earlier.pause_cycles,
            promoted_bytes=self.promoted_bytes - earlier.promoted_bytes,
            copied_bytes=self.copied_bytes - earlier.copied_bytes,
            allocated_bytes=self.allocated_bytes - earlier.allocated_bytes,
        )


# Kept in sync with the gc_* fields on ``repro.runtime.costmodel.CostModel``;
# duplicated here so a bare ``GCSim()`` (e.g. a standalone Interpreter's
# private heap) behaves exactly like one built from the default cost model.
DEFAULT_NURSERY_BYTES = 16 * 1024
DEFAULT_SURVIVOR_DIVISOR = 8
DEFAULT_TENURE_AGE = 3
DEFAULT_PAUSE_BASE = 400
DEFAULT_COPY_PER_BYTE = 2


class GCSim:
    """Deterministic nursery/survivor/promotion simulation.

    ``on_allocate(size)`` is the single entry point, called by
    ``Heap.new_instance`` / ``Heap.new_array`` for heap-allocated
    objects.  It returns the pause cycles incurred by any minor
    collections the allocation triggered (0 almost always).
    """

    def __init__(
        self,
        nursery_bytes: int = DEFAULT_NURSERY_BYTES,
        survivor_divisor: int = DEFAULT_SURVIVOR_DIVISOR,
        tenure_age: int = DEFAULT_TENURE_AGE,
        pause_base: int = DEFAULT_PAUSE_BASE,
        copy_per_byte: int = DEFAULT_COPY_PER_BYTE,
    ) -> None:
        if nursery_bytes <= 0:
            raise ValueError("nursery_bytes must be positive")
        if survivor_divisor <= 0:
            raise ValueError("survivor_divisor must be positive")
        if tenure_age <= 0:
            raise ValueError("tenure_age must be positive")
        self.nursery_bytes = int(nursery_bytes)
        self.survivor_divisor = int(survivor_divisor)
        self.tenure_age = int(tenure_age)
        self.pause_base = int(pause_base)
        self.copy_per_byte = int(copy_per_byte)
        self.stats = GCStats()
        # Bytes bump-allocated into the nursery since the last minor
        # collection.
        self.nursery_used = 0
        # ``survivors[i]`` holds the live bytes that have survived
        # ``i + 1`` minor collections and still await tenuring.
        self.survivors: List[int] = []
        # Observability hook: called as
        # ``on_collection(minor_index, pause_cycles, promoted_bytes)``
        # after every minor collection.  The VM routes this to
        # ``VMListener.on_gc``.
        self.on_collection: Optional[Callable[[int, int, int], None]] = None

    @classmethod
    def from_cost_model(cls, cost_model) -> "GCSim":
        return cls(
            nursery_bytes=cost_model.gc_nursery_bytes,
            survivor_divisor=cost_model.gc_survivor_divisor,
            tenure_age=cost_model.gc_tenure_age,
            pause_base=cost_model.gc_pause_base,
            copy_per_byte=cost_model.gc_copy_per_byte,
        )

    def on_allocate(self, size: int) -> int:
        """Record a heap allocation of ``size`` bytes; run any minor
        collections it triggers and return their total pause cycles."""
        size = int(size)
        if size < 0:
            size = 0
        self.stats.allocated_bytes += size
        self.nursery_used += size
        pause = 0
        while self.nursery_used > self.nursery_bytes:
            # An allocation larger than the whole nursery drains in
            # several back-to-back collections; ``-=`` (rather than
            # ``= 0``) keeps the loop terminating and the collection
            # count proportional to the allocated volume.
            self.nursery_used -= self.nursery_bytes
            pause += self._minor_collection(self.nursery_bytes)
        return pause

    def collect_remaining(self) -> int:
        """Force a final minor collection of whatever is in the nursery.

        Benchmark harnesses call this between warm-up and measurement to
        normalize collector state (the simulated analog of a pre-run
        ``System.gc()``): cumulative stats stay monotone, but the
        nursery and survivor spaces empty so the measured window starts
        from the same state whether warm-up was replayed or elided.
        """
        pause = 0
        if self.nursery_used > 0 or self.survivors:
            pause = self._minor_collection(self.nursery_used)
            # Tenure everything instead of keeping partial survivor
            # state around.
            leftover = sum(self.survivors)
            if leftover:
                self.stats.promoted_bytes += leftover
            self.survivors = []
            self.nursery_used = 0
        return pause

    def _minor_collection(self, collected_bytes: int) -> int:
        live = collected_bytes // self.survivor_divisor
        # Everything already in the survivor space is re-copied; the
        # oldest batch graduates to the old generation instead.
        promoted = 0
        if len(self.survivors) >= self.tenure_age:
            promoted = self.survivors.pop(0)
        copied = live + sum(self.survivors)
        self.survivors.append(live)
        pause = self.pause_base + self.copy_per_byte * copied
        self.stats.minor_collections += 1
        self.stats.pause_cycles += pause
        self.stats.promoted_bytes += promoted
        self.stats.copied_bytes += copied
        if self.on_collection is not None:
            self.on_collection(self.stats.minor_collections, pause, promoted)
        return pause
