"""Threaded-code execution plans: optimized IR lowered to closures.

:class:`~repro.runtime.graph_interpreter.GraphInterpreter` re-discovers
the graph's structure on every executed node: a ~20-arm ``isinstance``
ladder per control step, a dict-keyed environment, phi lists
re-materialized at every merge, and per-node costs recomputed on every
visit.  This module performs that discovery *once per compilation*
instead — the step from a switch-dispatched interpreter to
template-compiled threaded code that real VMs (and Graal itself) embody.

An :class:`ExecutionPlan` lowers a graph into:

- a linearized array of fixed nodes with integer instruction pointers,
  so dispatch is ``handlers[ip](slots)`` with no type tests;
- a **dense slot environment**: every value the graph interpreter would
  keep in its ``Dict[Node, Any]`` gets a list index at plan-build time
  (parameters, phis and value-producing fixed nodes);
- **pre-resolved phi moves**: for each End/LoopEnd the (input-expression,
  target-slot) pairs are computed once, preserving parallel-move order
  (all inputs are read before any phi slot is written);
- **pre-flattened floating expressions**: each operand tree is compiled
  to a closure tree, so the recursive ``_evaluate`` disappears from the
  hot path while keeping its exact memoization semantics;
- **pre-folded costs**: ``node_cost(node) * icache_multiplier`` is a
  per-handler constant computed at build time.

The lowering is *observationally identical* to the graph interpreter:
checksums, heap statistics, monitor operations, deoptimization counts
and — because charges are applied to the shared cycle accumulator in the
same order with the same values — bit-identical simulated cycles.  Guard
failures hand the :class:`~repro.runtime.deopt.Deoptimizer` a
slot-indexed evaluator, so FrameState rematerialization (Section 5.5 of
the paper) is unchanged.

A plan is built from static information only (graph + program + cost
model) and later *bound* to one VM's runtime objects (heap, stats,
invoke callback, deoptimizer), producing a :class:`BoundPlan` whose
handler closures capture everything they need.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..bytecode.classfile import Program
from ..bytecode.heap import Heap
from ..bytecode.interpreter import wrap_int
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (ARITHMETIC_EVAL, COMPARE_EVAL, ArrayLengthNode,
                        BeginNode, BinaryArithmeticNode, ConditionalNode,
                        ConstantNode, DeoptimizeNode, EndNode,
                        FixedGuardNode, IfNode, InstanceOfNode,
                        IntCompareNode, InvokeNode, IsNullNode,
                        LoadFieldNode, LoadIndexedNode, LoadStaticNode,
                        LoopBeginNode, LoopEndNode, LoopExitNode,
                        MergeNode, MonitorEnterNode, MonitorExitNode,
                        NegNode, NewArrayNode, NewInstanceNode,
                        ParameterNode, PhiNode, RefEqualsNode, ReturnNode,
                        StartNode, StoreFieldNode, StoreIndexedNode,
                        StoreStaticNode)
from .costmodel import CostModel, ExecutionStats
from .deopt import Deoptimizer
from .graph_interpreter import MAX_CONTROL_STEPS, GraphExecutionError


class PlanError(Exception):
    """The graph cannot be lowered to a plan (unknown node kind or a
    structural problem).  The VM falls back to the graph interpreter."""


class _Unset:
    """Sentinel for an unwritten slot (``None`` is a legal null value)."""

    __slots__ = ()

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()

#: Slot 0 of every activation holds the method result.
_RESULT_SLOT = 0

#: Node kinds that simply fall through to ``next`` at zero cost.
_PASSTHROUGH = (StartNode, BeginNode, LoopExitNode, MergeNode)

#: Floating node kinds evaluated on demand (everything else that can
#: appear as an operand must already live in a slot).
_INTERIOR = (BinaryArithmeticNode, IntCompareNode, NegNode,
             ConditionalNode)


def _raise_unset(node: Node):
    raise GraphExecutionError(
        f"cannot evaluate {node!r} (not in environment)")


def _expr_children(node: Node) -> Tuple[Node, ...]:
    if isinstance(node, (BinaryArithmeticNode, IntCompareNode)):
        return (node.x, node.y)
    if isinstance(node, NegNode):
        return (node.value,)
    return (node.condition, node.true_value, node.false_value)


class ExecutionPlan:
    """The static lowering of one graph: linearization + validation.

    Built by the compiler as part of its
    :class:`~repro.jit.compiler.CompilationResult`; runtime-independent
    (no heap, no stats) so it can be built and inspected without a VM.
    """

    def __init__(self, graph: Graph, program: Program,
                 cost_model: CostModel):
        self.graph = graph
        self.program = program
        self.cost_model = cost_model
        #: The i-cache pressure factor, folded once (the graph does not
        #: change after compilation).
        self.multiplier = cost_model.icache_multiplier(graph.node_count())
        if graph.start is None:
            raise PlanError("graph has no start node")
        self.nodes: List[Node] = self._linearize(graph)
        self.ip_of: Dict[Node, int] = {
            node: ip for ip, node in enumerate(self.nodes)}
        self._validate()

    # -- static analysis ---------------------------------------------------

    @staticmethod
    def _linearize(graph: Graph) -> List[Node]:
        """All reachable fixed nodes in deterministic DFS order."""
        order: List[Node] = []
        seen: Set[Node] = set()
        stack: List[Node] = [graph.start]
        while stack:
            node = stack.pop()
            if node is None or node in seen:
                continue
            seen.add(node)
            order.append(node)
            for successor in node.successors():
                stack.append(successor)
            if isinstance(node, EndNode):
                merge = node.merge()
                if merge is None:
                    raise PlanError(f"{node} feeds no merge")
                stack.append(merge)
            elif isinstance(node, LoopEndNode):
                if node.loop_begin is None:
                    raise PlanError(f"{node} has no loop begin")
                stack.append(node.loop_begin)
        return order

    def _validate(self):
        supported = _PASSTHROUGH + (
            EndNode, LoopEndNode, IfNode, FixedGuardNode, ReturnNode,
            DeoptimizeNode, NewInstanceNode, NewArrayNode, LoadFieldNode,
            StoreFieldNode, LoadStaticNode, StoreStaticNode,
            LoadIndexedNode, StoreIndexedNode, ArrayLengthNode,
            RefEqualsNode, IsNullNode, InstanceOfNode,
            MonitorEnterNode, MonitorExitNode, InvokeNode)
        for node in self.nodes:
            if not isinstance(node, supported):
                raise PlanError(f"cannot lower {node!r} to a plan")
            if isinstance(node, _FIXED_WITH_NEXT_REQUIRED) and \
                    node.next is None:
                raise PlanError(f"{node} has no next")

    # -- serialization -----------------------------------------------------

    def payload(self) -> List[int]:
        """The plan's pre-lowering table: the linearized instruction
        order as graph node ids.  Everything else about a plan is
        derived from (graph, cost model), so this list is all the
        compilation cache needs to persist; closures are re-linked per
        VM at :meth:`bind` time as usual."""
        return [node.id for node in self.nodes]

    @classmethod
    def from_payload(cls, graph: Graph, program: Program,
                     cost_model: CostModel,
                     order: List[int]) -> "ExecutionPlan":
        """Rebuild a plan from a cached graph and a persisted
        linearization order, skipping the DFS."""
        plan = cls.__new__(cls)
        plan.graph = graph
        plan.program = program
        plan.cost_model = cost_model
        plan.multiplier = cost_model.icache_multiplier(graph.node_count())
        if graph.start is None:
            raise PlanError("graph has no start node")
        try:
            plan.nodes = [graph._nodes[node_id] for node_id in order]
        except KeyError as missing:
            raise PlanError(f"stale plan order: no node {missing}")
        if not plan.nodes or plan.nodes[0] is not graph.start:
            raise PlanError("stale plan order: start mismatch")
        plan.ip_of = {node: ip for ip, node in enumerate(plan.nodes)}
        plan._validate()
        return plan

    # -- binding -----------------------------------------------------------

    def bind(self, heap: Heap, stats: ExecutionStats,
             invoke_callback: Callable[[str, Any, List[Any]], Any],
             deoptimizer: Optional[Deoptimizer] = None,
             collect_histogram: bool = False) -> "BoundPlan":
        """Link the plan against one VM's runtime objects."""
        return _PlanBinder(self, heap, stats, invoke_callback,
                           deoptimizer, collect_histogram).build()


_FIXED_WITH_NEXT_REQUIRED = _PASSTHROUGH + (
    NewInstanceNode, NewArrayNode, LoadFieldNode, StoreFieldNode,
    LoadStaticNode, StoreStaticNode, LoadIndexedNode, StoreIndexedNode,
    ArrayLengthNode, RefEqualsNode, IsNullNode, InstanceOfNode,
    MonitorEnterNode, MonitorExitNode, InvokeNode, FixedGuardNode)


class BoundPlan:
    """A plan linked to one VM: ready-to-run threaded code."""

    __slots__ = ("handlers", "entry_ip", "param_moves", "slot_count",
                 "stats", "plan")

    def __init__(self, plan: ExecutionPlan, handlers: List[Callable],
                 entry_ip: int, param_moves: List[Tuple[int, int]],
                 slot_count: int, stats: ExecutionStats):
        self.plan = plan
        self.handlers = handlers
        self.entry_ip = entry_ip
        self.param_moves = param_moves
        self.slot_count = slot_count
        self.stats = stats

    def execute(self, args: List[Any]) -> Any:
        """Run the compiled method with *args*; returns its result."""
        slots = [_UNSET] * self.slot_count
        for slot, index in self.param_moves:
            slots[slot] = args[index]
        stats = self.stats
        stats.compiled_invocations += 1
        handlers = self.handlers
        ip = self.entry_ip
        steps = 0
        while ip >= 0:
            steps += 1
            if steps > MAX_CONTROL_STEPS:
                raise GraphExecutionError("control step budget exceeded")
            ip = handlers[ip](slots)
        return slots[_RESULT_SLOT]


class _PlanBinder:
    """Builds the handler closures for one (plan, VM) pair."""

    def __init__(self, plan: ExecutionPlan, heap: Heap,
                 stats: ExecutionStats, invoke_callback, deoptimizer,
                 collect_histogram: bool):
        self.plan = plan
        self.heap = heap
        self.stats = stats
        self.invoke_callback = invoke_callback
        self.deoptimizer = deoptimizer
        self.collect_histogram = collect_histogram
        #: node -> dense slot index (slot 0 is the result).
        self.slot_of: Dict[Node, int] = {}
        self._slot_count = 1
        self._phi_tuples: Dict[MergeNode, Tuple[PhiNode, ...]] = {}
        self._eval_node = self._make_eval_node()
        self._run_deopt = self._make_run_deopt()

    # -- slots -------------------------------------------------------------

    def _slot_for(self, node: Node) -> int:
        slot = self.slot_of.get(node)
        if slot is None:
            slot = self._slot_count
            self._slot_count += 1
            self.slot_of[node] = slot
        return slot

    # -- expression compilation -------------------------------------------

    def _is_leaf(self, node: Node) -> bool:
        return (node.is_fixed or isinstance(node, (ParameterNode,
                                                   PhiNode)))

    def _find_shared(self, root: Node) -> Set[Node]:
        """Interior nodes referenced more than once below *root* — the
        ones the interpreter's per-evaluation memo would deduplicate."""
        counts: Dict[Node, int] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            if not isinstance(node, _INTERIOR):
                continue
            seen = counts.get(node, 0) + 1
            counts[node] = seen
            if seen == 1:
                stack.extend(_expr_children(node))
        return {node for node, count in counts.items() if count > 1}

    def _compile_value(self, root: Node) -> Callable[[List[Any]], Any]:
        """A ``closure(slots) -> value`` equivalent to one top-level
        ``GraphInterpreter._evaluate(root, env)`` call (fresh memo)."""
        if isinstance(root, ConstantNode):
            value = root.value
            return lambda slots: value
        if self._is_leaf(root):
            slot = self._slot_for(root)

            def read(slots, _slot=slot, _node=root):
                value = slots[_slot]
                if value is _UNSET:
                    raise GraphExecutionError(
                        f"cannot evaluate {_node!r} (not in environment)")
                return value

            return read
        shared = self._find_shared(root)
        if shared:
            inner = self._compile_expr(root, shared)
            return lambda slots, _inner=inner: _inner(slots, {})
        # No shared subexpressions: the memo can never hit, so compile
        # single-argument closures (one less indirection on the hot path;
        # cost-charging order is unchanged).
        return self._compile_expr_nomemo(root)

    def _operand_nomemo(self, node: Node):
        """Classify an operand for closure fusion: ``("const", value)``,
        ``("slot", index)`` or ``("closure", fn)``."""
        if isinstance(node, ConstantNode):
            return "const", node.value
        if self._is_leaf(node):
            return "slot", self._slot_for(node)
        return "closure", self._compile_expr_nomemo(node)

    def _compile_expr_nomemo(self, node: Node):
        """Like :meth:`_compile_expr` but for trees without shared
        interior nodes: ``closure(slots) -> value``."""
        if isinstance(node, ConstantNode):
            value = node.value
            return lambda slots: value
        if self._is_leaf(node):
            slot = self._slot_for(node)

            def read(slots, _slot=slot, _node=node):
                value = slots[_slot]
                if value is _UNSET:
                    raise GraphExecutionError(
                        f"cannot evaluate {_node!r} (not in environment)")
                return value

            return read
        stats = self.stats
        if isinstance(node, (BinaryArithmeticNode, IntCompareNode)):
            table = (ARITHMETIC_EVAL
                     if isinstance(node, BinaryArithmeticNode)
                     else COMPARE_EVAL)
            op = table[node.op]
            cost = self.plan.cost_model.node_cost(node)
            # Fuse slot/constant operands into the closure — saves a
            # closure call per operand on the hottest expression shape.
            mx, px = self._operand_nomemo(node.x)
            my, py = self._operand_nomemo(node.y)
            if mx == "slot" and my == "slot":
                def evaluate(slots, _op=op, _sx=px, _sy=py, _cost=cost,
                             _stats=stats, _nx=node.x, _ny=node.y):
                    a = slots[_sx]
                    if a is _UNSET:
                        _raise_unset(_nx)
                    b = slots[_sy]
                    if b is _UNSET:
                        _raise_unset(_ny)
                    value = _op(a, b)
                    _stats.cycles += _cost
                    return value

                return evaluate
            if mx == "slot" and my == "const":
                def evaluate(slots, _op=op, _sx=px, _b=py, _cost=cost,
                             _stats=stats, _nx=node.x):
                    a = slots[_sx]
                    if a is _UNSET:
                        _raise_unset(_nx)
                    value = _op(a, _b)
                    _stats.cycles += _cost
                    return value

                return evaluate
            if mx == "const" and my == "slot":
                def evaluate(slots, _op=op, _a=px, _sy=py, _cost=cost,
                             _stats=stats, _ny=node.y):
                    b = slots[_sy]
                    if b is _UNSET:
                        _raise_unset(_ny)
                    value = _op(_a, b)
                    _stats.cycles += _cost
                    return value

                return evaluate
            x = px if mx == "closure" else self._compile_expr_nomemo(
                node.x)
            y = py if my == "closure" else self._compile_expr_nomemo(
                node.y)

            def evaluate(slots, _op=op, _x=x, _y=y, _cost=cost,
                         _stats=stats):
                value = _op(_x(slots), _y(slots))
                _stats.cycles += _cost
                return value

            return evaluate
        if isinstance(node, NegNode):
            operand = self._compile_expr_nomemo(node.value)
            cost = self.plan.cost_model.node_cost(node)

            def evaluate(slots, _operand=operand, _cost=cost,
                         _stats=stats):
                value = wrap_int(-_operand(slots))
                _stats.cycles += _cost
                return value

            return evaluate
        if isinstance(node, ConditionalNode):
            condition = self._compile_expr_nomemo(node.condition)
            true_value = self._compile_expr_nomemo(node.true_value)
            false_value = self._compile_expr_nomemo(node.false_value)
            cost = self.plan.cost_model.node_cost(node)

            def evaluate(slots, _condition=condition, _true=true_value,
                         _false=false_value, _cost=cost, _stats=stats):
                value = (_true(slots) if _condition(slots)
                         else _false(slots))
                _stats.cycles += _cost
                return value

            return evaluate

        def evaluate(slots, _node=node):
            raise GraphExecutionError(
                f"cannot evaluate {_node!r} (not in environment)")

        return evaluate

    def _compile_expr(self, node: Node, shared: Set[Node],
                      compiled: Dict[Node, Callable] = None):
        """A ``closure(slots, memo) -> value`` for one expression node,
        charging costs in the interpreter's (post-order) order.

        *compiled* caches the closure built for each shared node: a
        shared node's closure is memo-checked at runtime anyway, so
        every reference can reuse one closure object.  Without this the
        compile-time walk re-expands shared subtrees once per
        reference — exponential on chains like
        ``acc = f(acc, acc); acc = f(acc, acc); ...``."""
        if compiled is None:
            compiled = {}
        cached = compiled.get(node)
        if cached is not None:
            return cached
        if isinstance(node, ConstantNode):
            value = node.value
            return lambda slots, memo: value
        if self._is_leaf(node):
            slot = self._slot_for(node)

            def read(slots, memo, _slot=slot, _node=node):
                value = slots[_slot]
                if value is _UNSET:
                    raise GraphExecutionError(
                        f"cannot evaluate {_node!r} (not in environment)")
                return value

            return read
        stats = self.stats
        if isinstance(node, (BinaryArithmeticNode, IntCompareNode)):
            table = (ARITHMETIC_EVAL
                     if isinstance(node, BinaryArithmeticNode)
                     else COMPARE_EVAL)
            op = table[node.op]
            x = self._compile_expr(node.x, shared, compiled)
            y = self._compile_expr(node.y, shared, compiled)
            cost = self.plan.cost_model.node_cost(node)

            def evaluate(slots, memo, _op=op, _x=x, _y=y, _cost=cost,
                         _stats=stats):
                value = _op(_x(slots, memo), _y(slots, memo))
                _stats.cycles += _cost
                return value

        elif isinstance(node, NegNode):
            operand = self._compile_expr(node.value, shared, compiled)
            cost = self.plan.cost_model.node_cost(node)

            def evaluate(slots, memo, _operand=operand, _cost=cost,
                         _stats=stats):
                value = wrap_int(-_operand(slots, memo))
                _stats.cycles += _cost
                return value

        elif isinstance(node, ConditionalNode):
            condition = self._compile_expr(node.condition, shared,
                                           compiled)
            true_value = self._compile_expr(node.true_value, shared,
                                            compiled)
            false_value = self._compile_expr(node.false_value, shared,
                                             compiled)
            cost = self.plan.cost_model.node_cost(node)

            def evaluate(slots, memo, _condition=condition,
                         _true=true_value, _false=false_value, _cost=cost,
                         _stats=stats):
                value = (_true(slots, memo) if _condition(slots, memo)
                         else _false(slots, memo))
                _stats.cycles += _cost
                return value

        else:
            def evaluate(slots, memo, _node=node):
                raise GraphExecutionError(
                    f"cannot evaluate {_node!r} (not in environment)")

            return evaluate
        if node in shared:
            def memoized(slots, memo, _node=node, _evaluate=evaluate):
                value = memo.get(_node, _UNSET)
                if value is not _UNSET:
                    return value
                value = _evaluate(slots, memo)
                memo[_node] = value
                return value

            compiled[node] = memoized
            return memoized
        return evaluate

    # -- deoptimization ----------------------------------------------------

    def _make_eval_node(self):
        """The slot-indexed equivalent of ``GraphInterpreter._evaluate``
        used during deoptimization (one shared memo per deopt)."""
        slot_of = self.slot_of
        stats = self.stats
        node_cost = self.plan.cost_model.node_cost

        def eval_node(node, slots, memo):
            slot = slot_of.get(node)
            if slot is not None:
                value = slots[slot]
                if value is not _UNSET:
                    return value
            if isinstance(node, ConstantNode):
                return node.value
            if node in memo:
                return memo[node]
            if isinstance(node, BinaryArithmeticNode):
                value = node.evaluate(eval_node(node.x, slots, memo),
                                      eval_node(node.y, slots, memo))
            elif isinstance(node, IntCompareNode):
                value = node.evaluate(eval_node(node.x, slots, memo),
                                      eval_node(node.y, slots, memo))
            elif isinstance(node, NegNode):
                value = wrap_int(-eval_node(node.value, slots, memo))
            elif isinstance(node, ConditionalNode):
                condition = eval_node(node.condition, slots, memo)
                value = eval_node(
                    node.true_value if condition else node.false_value,
                    slots, memo)
            else:
                raise GraphExecutionError(
                    f"cannot evaluate {node!r} (not in environment)")
            memo[node] = value
            stats.cycles += node_cost(node)
            return value

        return eval_node

    def _make_run_deopt(self):
        stats = self.stats
        deopt_cost = self.plan.cost_model.deopt
        deoptimizer = self.deoptimizer
        eval_node = self._eval_node

        def run_deopt(state, reason, slots):
            if deoptimizer is None:
                raise GraphExecutionError(
                    f"deoptimization ({reason}) with no deoptimizer "
                    f"attached")
            stats.deopts += 1
            stats.cycles += deopt_cost
            memo: Dict[Node, Any] = {}

            def evaluate(node):
                return eval_node(node, slots, memo)

            return deoptimizer.deoptimize(state, evaluate)

        return run_deopt

    # -- handler construction ----------------------------------------------

    def build(self) -> BoundPlan:
        plan = self.plan
        param_moves = [(self._slot_for(param), param.index)
                       for param in plan.graph.parameters]
        handlers: List[Callable] = [None] * len(plan.nodes)
        for ip, node in enumerate(plan.nodes):
            handler = self._build_handler(node)
            if self.collect_histogram:
                handler = self._with_histogram(handler, node)
            handlers[ip] = handler
        return BoundPlan(plan, handlers, plan.ip_of[plan.graph.start],
                         param_moves, self._slot_count, self.stats)

    def _with_histogram(self, handler, node):
        histogram = self.stats.node_kind_executions
        kind = type(node).__name__

        def counted(slots, _handler=handler, _kind=kind,
                    _histogram=histogram):
            _histogram[_kind] = _histogram.get(_kind, 0) + 1
            return _handler(slots)

        return counted

    def _phis_of(self, merge: MergeNode) -> Tuple[PhiNode, ...]:
        phis = self._phi_tuples.get(merge)
        if phis is None:
            phis = tuple(merge.phis())
            self._phi_tuples[merge] = phis
        return phis

    def _fixed_cost(self, node: Node) -> float:
        """``node_cost * icache_multiplier``, folded once per node."""
        return self.plan.cost_model.node_cost(node) * self.plan.multiplier

    def _build_handler(self, node: Node) -> Callable:
        stats = self.stats
        heap = self.heap
        program = self.plan.program
        ip_of = self.plan.ip_of
        cost = self._fixed_cost(node)

        if isinstance(node, _PASSTHROUGH):
            next_ip = ip_of[node.next]

            def handler(slots, _next=next_ip, _stats=stats):
                _stats.node_executions += 1
                return _next

            return handler

        if isinstance(node, (EndNode, LoopEndNode)):
            if isinstance(node, LoopEndNode):
                merge = node.loop_begin
            else:
                merge = node.merge()
            merge_ip = ip_of[merge]
            index = merge.end_index(node)
            moves = tuple(
                (self._compile_value(phi.values[index]),
                 self._slot_for(phi))
                for phi in self._phis_of(merge))
            if not moves:
                def handler(slots, _next=merge_ip, _stats=stats):
                    _stats.node_executions += 1
                    return _next

            elif len(moves) == 1:
                value_of, slot = moves[0]

                def handler(slots, _value_of=value_of, _slot=slot,
                            _next=merge_ip, _stats=stats):
                    _stats.node_executions += 1
                    slots[_slot] = _value_of(slots)
                    return _next

            else:
                def handler(slots, _moves=moves, _next=merge_ip,
                            _stats=stats):
                    _stats.node_executions += 1
                    # Parallel move: read every input before writing any
                    # phi slot (loop phis may feed each other).
                    values = [value_of(slots) for value_of, __ in _moves]
                    for (__, slot), value in zip(_moves, values):
                        slots[slot] = value
                    return _next

            return handler

        if isinstance(node, IfNode):
            condition = self._compile_value(node.condition)
            true_ip = ip_of[node.true_successor]
            false_ip = ip_of[node.false_successor]

            def handler(slots, _condition=condition, _true=true_ip,
                        _false=false_ip, _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                return _true if _condition(slots) else _false

            return handler

        if isinstance(node, FixedGuardNode):
            condition = self._compile_value(node.condition)
            next_ip = ip_of[node.next]
            state = node.state
            reason = node.reason
            negated = node.negated
            run_deopt = self._run_deopt

            def handler(slots, _condition=condition, _negated=negated,
                        _state=state, _reason=reason, _next=next_ip,
                        _cost=cost, _stats=stats, _run_deopt=run_deopt):
                _stats.node_executions += 1
                _stats.cycles += _cost
                if bool(_condition(slots)) == _negated:
                    slots[_RESULT_SLOT] = _run_deopt(_state, _reason,
                                                     slots)
                    return -1
                return _next

            return handler

        if isinstance(node, ReturnNode):
            if node.value is None:
                def handler(slots, _stats=stats):
                    _stats.node_executions += 1
                    slots[_RESULT_SLOT] = None
                    return -1

            else:
                value_of = self._compile_value(node.value)

                def handler(slots, _value_of=value_of, _stats=stats):
                    _stats.node_executions += 1
                    slots[_RESULT_SLOT] = _value_of(slots)
                    return -1

            return handler

        if isinstance(node, DeoptimizeNode):
            state = node.state
            reason = node.reason
            run_deopt = self._run_deopt

            def handler(slots, _state=state, _reason=reason, _cost=cost,
                        _stats=stats, _run_deopt=run_deopt):
                _stats.node_executions += 1
                _stats.cycles += _cost
                slots[_RESULT_SLOT] = _run_deopt(_state, _reason, slots)
                return -1

            return handler

        if isinstance(node, NewInstanceNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            class_name = node.class_name
            on_stack = getattr(node, "stack_allocated", False)
            size = program.instance_size(class_name)
            cost_model = self.plan.cost_model
            bytes_cost = (cost_model.stack_allocation_bytes_cost(size)
                          if on_stack
                          else cost_model.allocation_bytes_cost(size))
            new_instance = heap.new_instance

            def handler(slots, _new=new_instance, _cn=class_name,
                        _on_stack=on_stack, _slot=slot, _next=next_ip,
                        _cost=cost, _bytes=bytes_cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                obj = _new(_cn, _on_stack)
                _stats.cycles += _bytes
                slots[_slot] = obj
                return _next

            return handler

        if isinstance(node, NewArrayNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            elem_type = node.elem_type
            on_stack = getattr(node, "stack_allocated", False)
            length_of = self._compile_value(node.length)
            cost_model = self.plan.cost_model
            bytes_cost = (cost_model.stack_allocation_bytes_cost
                          if on_stack
                          else cost_model.allocation_bytes_cost)
            array_size = program.array_size
            new_array = heap.new_array

            def handler(slots, _length_of=length_of, _new=new_array,
                        _et=elem_type, _on_stack=on_stack, _slot=slot,
                        _next=next_ip, _cost=cost, _bytes=bytes_cost,
                        _size=array_size, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                length = _length_of(slots)
                arr = _new(_et, length, _on_stack)
                _stats.cycles += _bytes(_size(length))
                slots[_slot] = arr
                return _next

            return handler

        if isinstance(node, LoadFieldNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            object_of = self._compile_value(node.object)
            field_name = node.field.field_name
            get_field = heap.get_field

            def handler(slots, _object_of=object_of, _get=get_field,
                        _field=field_name, _slot=slot, _next=next_ip,
                        _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                slots[_slot] = _get(_object_of(slots), _field)
                return _next

            return handler

        if isinstance(node, StoreFieldNode):
            next_ip = ip_of[node.next]
            object_of = self._compile_value(node.object)
            value_of = self._compile_value(node.value)
            field_name = node.field.field_name
            put_field = heap.put_field

            def handler(slots, _object_of=object_of, _value_of=value_of,
                        _put=put_field, _field=field_name, _next=next_ip,
                        _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                obj = _object_of(slots)
                value = _value_of(slots)
                _put(obj, _field, value)
                return _next

            return handler

        if isinstance(node, LoadStaticNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            class_name = node.field.class_name
            field_name = node.field.field_name
            get_static = program.get_static

            def handler(slots, _get=get_static, _cn=class_name,
                        _field=field_name, _slot=slot, _next=next_ip,
                        _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                slots[_slot] = _get(_cn, _field)
                return _next

            return handler

        if isinstance(node, StoreStaticNode):
            next_ip = ip_of[node.next]
            value_of = self._compile_value(node.value)
            class_name = node.field.class_name
            field_name = node.field.field_name
            set_static = program.set_static

            def handler(slots, _value_of=value_of, _set=set_static,
                        _cn=class_name, _field=field_name, _next=next_ip,
                        _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                _set(_cn, _field, _value_of(slots))
                return _next

            return handler

        if isinstance(node, LoadIndexedNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            array_of = self._compile_value(node.array)
            index_of = self._compile_value(node.index)
            array_load = heap.array_load

            def handler(slots, _array_of=array_of, _index_of=index_of,
                        _load=array_load, _slot=slot, _next=next_ip,
                        _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                arr = _array_of(slots)
                index = _index_of(slots)
                slots[_slot] = _load(arr, index)
                return _next

            return handler

        if isinstance(node, StoreIndexedNode):
            next_ip = ip_of[node.next]
            array_of = self._compile_value(node.array)
            index_of = self._compile_value(node.index)
            value_of = self._compile_value(node.value)
            array_store = heap.array_store

            def handler(slots, _array_of=array_of, _index_of=index_of,
                        _value_of=value_of, _store=array_store,
                        _next=next_ip, _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                arr = _array_of(slots)
                index = _index_of(slots)
                value = _value_of(slots)
                _store(arr, index, value)
                return _next

            return handler

        if isinstance(node, ArrayLengthNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            array_of = self._compile_value(node.array)
            array_length = heap.array_length

            def handler(slots, _array_of=array_of, _length=array_length,
                        _slot=slot, _next=next_ip, _cost=cost,
                        _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                slots[_slot] = _length(_array_of(slots))
                return _next

            return handler

        if isinstance(node, RefEqualsNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            x_of = self._compile_value(node.x)
            y_of = self._compile_value(node.y)

            def handler(slots, _x_of=x_of, _y_of=y_of, _slot=slot,
                        _next=next_ip, _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                a = _x_of(slots)
                b = _y_of(slots)
                slots[_slot] = 1 if a is b else 0
                return _next

            return handler

        if isinstance(node, IsNullNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            value_of = self._compile_value(node.value)

            def handler(slots, _value_of=value_of, _slot=slot,
                        _next=next_ip, _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                slots[_slot] = 1 if _value_of(slots) is None else 0
                return _next

            return handler

        if isinstance(node, InstanceOfNode):
            next_ip = ip_of[node.next]
            slot = self._slot_for(node)
            value_of = self._compile_value(node.value)
            class_name = node.class_name
            instance_of = heap.instance_of

            def handler(slots, _value_of=value_of, _test=instance_of,
                        _cn=class_name, _slot=slot, _next=next_ip,
                        _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                slots[_slot] = _test(_value_of(slots), _cn)
                return _next

            return handler

        if isinstance(node, MonitorEnterNode):
            next_ip = ip_of[node.next]
            object_of = self._compile_value(node.object)
            monitor_enter = heap.monitor_enter

            def handler(slots, _object_of=object_of,
                        _enter=monitor_enter, _next=next_ip, _cost=cost,
                        _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                _enter(_object_of(slots))
                return _next

            return handler

        if isinstance(node, MonitorExitNode):
            next_ip = ip_of[node.next]
            object_of = self._compile_value(node.object)
            monitor_exit = heap.monitor_exit

            def handler(slots, _object_of=object_of, _exit=monitor_exit,
                        _next=next_ip, _cost=cost, _stats=stats):
                _stats.node_executions += 1
                _stats.cycles += _cost
                _exit(_object_of(slots))
                return _next

            return handler

        if isinstance(node, InvokeNode):
            next_ip = ip_of[node.next]
            argument_closures = tuple(self._compile_value(argument)
                                      for argument in node.arguments)
            kind = node.kind
            target = node.target
            invoke = self.invoke_callback
            if node.has_value:
                slot = self._slot_for(node)

                def handler(slots, _arguments=argument_closures,
                            _invoke=invoke, _kind=kind, _target=target,
                            _slot=slot, _next=next_ip, _cost=cost,
                            _stats=stats):
                    _stats.node_executions += 1
                    _stats.cycles += _cost
                    values = [argument_of(slots)
                              for argument_of in _arguments]
                    slots[_slot] = _invoke(_kind, _target, values)
                    return _next

            else:
                def handler(slots, _arguments=argument_closures,
                            _invoke=invoke, _kind=kind, _target=target,
                            _next=next_ip, _cost=cost, _stats=stats):
                    _stats.node_executions += 1
                    _stats.cycles += _cost
                    values = [argument_of(slots)
                              for argument_of in _arguments]
                    _invoke(_kind, _target, values)
                    return _next

            return handler

        raise PlanError(f"unexecutable node {node!r}")  # pragma: no cover
