"""Execution engines and the simulated-machine cost model."""

from .costmodel import DEFAULT_COST_MODEL, CostModel, ExecutionStats
from .deopt import DeoptError, Deoptimizer
from .graph_interpreter import GraphExecutionError, GraphInterpreter
from .plan import BoundPlan, ExecutionPlan, PlanError

__all__ = ["DEFAULT_COST_MODEL", "CostModel", "ExecutionStats",
           "DeoptError", "Deoptimizer", "GraphExecutionError",
           "GraphInterpreter", "BoundPlan", "ExecutionPlan",
           "PlanError"]
